"""Benchmark S7 — the end-to-end SLO plane under chaos.

Regenerates the slo-serving table: one Poisson trace served under the
chaos scenarios in three modes — no-slo (PR-8 resilience only), deadline
(end-to-end budgets: queue retirement, clipped retry ladders, EDF
batching) and deadline+hedge (speculative re-sends to a sibling replica
stack).  The experiment itself raises when any cell drops or duplicates
a request, lets an expired request burn a remote compute slot, when a
fault-free baseline retries/expires/hedges, when hedging fails to
strictly improve the in-window chaos p99 on the link-chaos scenarios,
when deadlines fail to strictly improve the worker-crash tail and hit
rate, or when two fresh seeded runs disagree byte-for-byte — so a
recorded table is already evidence; the assertions below re-state the
acceptance bars explicitly on the rows.

Everything runs on the simulated backend, so the rows are deterministic
on any machine (the wall-clock counterpart is exercised by
``repro.experiments slo-bench --wallclock-smoke`` and tests/test_slo.py).
"""

from __future__ import annotations

from repro.experiments.parallel_serving import available_cpu_count
from repro.experiments.slo_serving import run_slo_serving


def test_bench_slo_serving(benchmark, scale, record_result):
    result = benchmark.pedantic(run_slo_serving, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    rows = {(row["mode"], row["scenario"]): row for row in result.rows}
    modes = ("no-slo", "deadline", "deadline+hedge")
    scenarios = ("none", "flaky-uplink", "cloud-partition", "worker-crash")
    assert set(rows) == {(m, s) for m in modes for s in scenarios}

    # Exactly-once everywhere: every cell answered the full trace.
    served = result.metadata["num_requests"]
    assert all(row["served"] == served for row in rows.values())

    # Fault-free baselines never touch the SLO recovery machinery.
    for mode in modes:
        baseline = rows[(mode, "none")]
        assert baseline["retries"] == 0
        assert baseline["degraded_pct"] == 0.0
        assert baseline["expired_pct"] == 0.0
        assert baseline["hedges"] == 0
        assert baseline["hit_pct"] == 100.0

    # Without budgets nothing is ever flagged as exceeded.
    assert all(rows[("no-slo", s)]["expired_pct"] == 0.0 for s in scenarios)

    # Hedging strictly improves the in-window link-chaos tail at equal
    # answer count, and the wins are real (copies sent, races won, bytes
    # honestly charged).
    for scenario in ("flaky-uplink", "cloud-partition"):
        plain = rows[("deadline", scenario)]
        hedged = rows[("deadline+hedge", scenario)]
        assert hedged["chaos_p99_ms"] < plain["chaos_p99_ms"]
        assert hedged["hedges"] > 0
        assert hedged["hedge_wins"] > 0
        assert hedged["hedge_kb"] > 0.0

    # Deadline propagation caps the worker-crash blackout tail: expired
    # requests are retired early, protecting the not-yet-expired backlog.
    unbounded = rows[("no-slo", "worker-crash")]
    bounded = rows[("deadline", "worker-crash")]
    assert bounded["chaos_p99_ms"] < unbounded["chaos_p99_ms"]
    assert bounded["hit_pct"] > unbounded["hit_pct"]
    assert bounded["expired_pct"] > 0.0

    # The capped tail sits near the budget, far under the blackout length.
    slo_ms = 1e3 * result.metadata["slo_s"]
    assert bounded["p99_ms"] <= 1.5 * slo_ms

    assert result.metadata["cpu_count"] == available_cpu_count()
