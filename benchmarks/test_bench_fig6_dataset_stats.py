"""Benchmark E1 — regenerate Figure 6 (class distribution per device)."""

from __future__ import annotations

from repro.datasets import CLASS_NAMES
from repro.experiments import run_dataset_stats


def test_bench_fig6_dataset_stats(benchmark, scale, record_result):
    result = benchmark.pedantic(run_dataset_stats, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    assert len(result.rows) == scale.num_devices
    for row in result.rows:
        assert row["total"] == scale.train_samples
        assert all(row[name] >= 0 for name in CLASS_NAMES)
    # The visibility imbalance of Fig. 6: the best-placed device sees more
    # objects than the worst-placed one.
    not_present = result.column("not-present")
    assert min(not_present) < max(not_present)
