"""Benchmark S3 — compiled inference fast path vs the eager forward.

Measures :mod:`repro.compile` plans (BatchNorm folding, conv/activation
fusion, pre-packed binarized weights, reused buffer arena) against the eager
autograd forward across serving-relevant batch sizes and the three compiled
precision modes, and enforces the headline bars:

* **>= 3x speedup on the reference configuration** (batch size 1 —
  single-sample serving latency, typically ~4-6x; the margin follows the
  same shared-runner slack convention as the serving-throughput bench)
  with byte-identical exit routing and float32-level logit agreement;
* **>= 1.3x fp32 over fp64 at the batch-1 kernel reference config** (the
  experiment raises on a miss) — measured on a conv stack wide enough
  that kernel work, not per-op dispatch, dominates batch-1 wall time.
"""

from __future__ import annotations

from repro.experiments.compiled_forward import (
    FP32_REFERENCE_FLOOR,
    run_compiled_forward,
)


def test_bench_compiled_forward(benchmark, scale, record_result):
    result = benchmark.pedantic(
        run_compiled_forward, args=(scale,), rounds=1, iterations=1
    )
    record_result(result)

    # The equivalence guarantees: exact modes (float64, bitpacked) route
    # byte-identically to eager (the experiment raises otherwise); the
    # tolerance-mode float32 rows record their measured stream agreement and
    # their grid-pooled >=99.9% floor is enforced by verify_compiled inside
    # the experiment.
    for row in result.rows:
        if row["precision"] in ("float64", "bitpacked"):
            assert row["routing_identical"] == "yes", row
            assert row["routing_agreement"] == 1.0, row
    assert result.metadata["max_abs_logit_diff"] < 1e-6
    assert result.metadata["max_abs_logit_diff_float64"] < 1e-6
    assert result.metadata["max_abs_logit_diff_bitpacked"] < 1e-6

    compiled_rows = [row for row in result.rows if row["path"] == "compiled"]
    assert compiled_rows, "no compiled rows produced"
    exact_rows = [row for row in compiled_rows if row["precision"] == "float64"]
    assert exact_rows, "no exact-mode compiled rows produced"

    # Headline claim: >= 3x on the reference configuration (typically ~4-6x;
    # the slack absorbs wall-clock noise on shared runners, as in PR 2).
    reference = result.metadata["reference_batch_size"]
    reference_speedup = result.metadata["reference_speedup"]
    assert reference_speedup >= 3.0, (
        f"compiled speedup {reference_speedup:.2f}x at batch {reference} < 3.0x"
    )

    # The exact compiled path must never be slower, at any batch size
    # (typical worst case ~1.4x at the largest, BLAS-bound batch).  The
    # reduced-precision rows are measured and recorded but carry their own
    # bar: fp32 must clear FP32_REFERENCE_FLOOR at the kernel reference
    # config (asserted inside the experiment), while bitpacked is a
    # verified-exactness mode whose numpy-level kernels are honestly
    # reported even where OpenBLAS dgemm outruns them.
    for row in exact_rows:
        assert row["speedup_vs_eager"] >= 1.1, (
            f"compiled slower than eager at batch {row['batch_size']}: "
            f"{row['speedup_vs_eager']:.2f}x"
        )

    assert result.metadata["fp32_reference_speedup"] >= FP32_REFERENCE_FLOOR
