"""Benchmark S3 — compiled inference fast path vs the eager forward.

Measures :mod:`repro.compile` plans (BatchNorm folding, conv/activation
fusion, pre-packed binarized weights, reused buffer arena) against the eager
autograd forward across serving-relevant batch sizes, and enforces the
headline bar: **>= 3x speedup on the reference configuration** (batch size
1 — single-sample serving latency, typically ~4-6x; the margin follows the
same shared-runner slack convention as the serving-throughput bench) with
byte-identical exit routing and float32-level logit agreement.
"""

from __future__ import annotations

from repro.experiments.compiled_forward import run_compiled_forward


def test_bench_compiled_forward(benchmark, scale, record_result):
    result = benchmark.pedantic(
        run_compiled_forward, args=(scale,), rounds=1, iterations=1
    )
    record_result(result)

    # The equivalence guarantee: same routing everywhere, logits allclose at
    # fp32 tolerance (the experiment itself raises on routing divergence).
    assert all(value == "yes" for value in result.column("routing_identical"))
    assert result.metadata["max_abs_logit_diff"] < 1e-6

    compiled_rows = [row for row in result.rows if row["path"] == "compiled"]
    assert compiled_rows, "no compiled rows produced"

    # Headline claim: >= 3x on the reference configuration (typically ~4-6x;
    # the slack absorbs wall-clock noise on shared runners, as in PR 2).
    reference = result.metadata["reference_batch_size"]
    reference_speedup = result.metadata["reference_speedup"]
    assert reference_speedup >= 3.0, (
        f"compiled speedup {reference_speedup:.2f}x at batch {reference} < 3.0x"
    )

    # The compiled path must never be slower, at any batch size (typical
    # worst case ~1.4x at the largest, BLAS-bound batch).
    for row in compiled_rows:
        assert row["speedup_vs_eager"] >= 1.1, (
            f"compiled slower than eager at batch {row['batch_size']}: "
            f"{row['speedup_vs_eager']:.2f}x"
        )
