"""Benchmark E7 — regenerate the Section IV-H communication-reduction result."""

from __future__ import annotations

from repro.experiments import run_communication_reduction


def test_bench_sec4h_communication_reduction(benchmark, scale, record_result):
    result = benchmark.pedantic(
        run_communication_reduction, args=(scale,), rounds=1, iterations=1
    )
    record_result(result)

    rows = {row["system"]: row for row in result.rows}
    ddnn = rows["ddnn"]
    baseline = rows["cloud_offload_raw"]

    # The raw-offload baseline ships the whole 32x32 RGB image.
    assert baseline["bytes_per_sample"] == 3072.0
    # Even in the worst case (nothing exits locally) the DDNN transmits at
    # most 4*|C| + f*o/8 bytes, far below the raw image; the paper's headline
    # is an over-20x reduction at its operating point.
    assert ddnn["bytes_per_sample"] < 3072.0 / 10.0
    assert ddnn["reduction_factor"] > 10.0
    assert 0.0 <= ddnn["overall_accuracy_pct"] <= 100.0
