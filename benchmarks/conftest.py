"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  The scale is
selected with the ``REPRO_SCALE`` environment variable (``ci`` by default,
``paper`` for the full-size runs) — see ``repro.experiments.runner``.

Every benchmark writes the regenerated table to ``benchmarks/results/`` so
the numbers referenced by EXPERIMENTS.md can be re-inspected after a run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ExperimentResult, default_scale

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale():
    """The experiment scale shared by every benchmark in the session."""
    return default_scale()


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Write an ExperimentResult to disk and echo it to stdout."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        text = result.to_text()
        path = results_dir / f"{result.name}.txt"
        path.write_text(text + "\n")
        print("\n" + text)
        return result

    return _record
