"""Benchmark E3 — regenerate Table II / Figure 7 (exit-threshold sweep)."""

from __future__ import annotations

import numpy as np

from repro.experiments import PAPER_TABLE2_THRESHOLDS, run_threshold_sweep


def test_bench_table2_fig7_threshold_sweep(benchmark, scale, record_result):
    result = benchmark.pedantic(run_threshold_sweep, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    assert [row["threshold"] for row in result.rows] == list(PAPER_TABLE2_THRESHOLDS)

    exits = np.array(result.column("local_exit_pct"))
    communication = np.array(result.column("communication_bytes"))
    accuracy = np.array(result.column("overall_accuracy_pct"))

    # Local exit rate grows monotonically with the threshold and communication
    # shrinks monotonically (the paper's Table II trend).
    assert (np.diff(exits) >= -1e-9).all()
    assert (np.diff(communication) <= 1e-9).all()
    assert exits[-1] == 100.0

    # Eq. 1 extremes for the evaluation architecture: 4*|C| bytes when all
    # samples exit locally; 4*|C| + f*o/8 when none do.
    expected_floor = 4 * 3
    expected_ceiling = expected_floor + scale.device_filters * 256 / 8
    assert communication[-1] == expected_floor
    assert communication[0] <= expected_ceiling + 1e-9
    assert ((0 <= accuracy) & (accuracy <= 100)).all()
