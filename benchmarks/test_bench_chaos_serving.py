"""Benchmark S6 — the serving fabric under runtime fault injection.

Regenerates the chaos-serving table: one Poisson trace served under
none / flaky-uplink / cloud-partition / worker-crash, with offload
deadlines, retry backoff, circuit breaking and failover to local exits.
The experiment itself raises when any scenario drops or duplicates a
request, when the fault-free baseline degrades anything, when a
link-chaos p95 escapes the retry policy's worst-case recovery bound, or
when two fresh seeded runs disagree byte-for-byte — so a recorded table
is already evidence; the assertions below re-state the acceptance bars
explicitly on the rows.

Everything runs on the simulated backend, so the rows are deterministic
on any machine (cpu_count is recorded for parity with the wall-clock
studies, not because the numbers depend on it).
"""

from __future__ import annotations

from repro.experiments.chaos_serving import run_chaos_serving
from repro.experiments.parallel_serving import available_cpu_count


def test_bench_chaos_serving(benchmark, scale, record_result):
    result = benchmark.pedantic(run_chaos_serving, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    rows = {row["scenario"]: row for row in result.rows}
    assert set(rows) == {"none", "flaky-uplink", "cloud-partition", "worker-crash"}

    # Zero dropped / duplicated: every scenario answered the full trace.
    served = result.metadata["num_requests"]
    assert all(row["served"] == served for row in rows.values())

    # The fault-free baseline never touches the recovery machinery.
    assert rows["none"]["degraded_pct"] == 0.0
    assert rows["none"]["retries"] == 0

    # The partition actually forces failovers to local exits, and the
    # flaky uplink actually exercises the retry ladder.
    assert rows["cloud-partition"]["degraded_pct"] > 0.0
    assert rows["cloud-partition"]["failovers"] > 0
    assert rows["flaky-uplink"]["retries"] > 0

    # Worker crashes darken compute, not links: latency bulges while the
    # backlog drains, but nothing degrades to a local exit.
    assert rows["worker-crash"]["degraded_pct"] == 0.0
    assert rows["worker-crash"]["p95_ms"] >= rows["none"]["p95_ms"]

    # Graceful degradation is bounded: every link-chaos p95 stays within
    # the no-chaos p95 plus the retry policy's worst-case recovery delay.
    bound_ms = 1e3 * (result.metadata["worst_case_recovery_s"]) + rows["none"]["p95_ms"]
    assert rows["flaky-uplink"]["p95_ms"] <= bound_ms + 50.0
    assert rows["cloud-partition"]["p95_ms"] <= bound_ms + 50.0

    assert result.metadata["cpu_count"] == available_cpu_count()
