"""Benchmark E6 — regenerate Figure 10 (fault tolerance under device failure)."""

from __future__ import annotations

import numpy as np

from repro.core import StagedInferenceEngine
from repro.experiments import (
    get_dataset,
    get_trained_ddnn,
    run_fault_tolerance,
    run_multi_device_failures,
)


def test_bench_fig10_fault_tolerance(benchmark, scale, record_result):
    result = benchmark.pedantic(run_fault_tolerance, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    assert [row["failed_device"] for row in result.rows] == list(range(1, scale.num_devices + 1))

    overall = np.array(result.column("overall_accuracy_pct"))
    cloud = np.array(result.column("cloud_accuracy_pct"))

    # Baseline (no failure) accuracy of the same trained model.
    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)
    healthy = StagedInferenceEngine(model, 0.8).run(test_set)
    healthy_overall = 100.0 * healthy.overall_accuracy(test_set.labels)

    # Losing any single device keeps the system well above chance and within a
    # modest margin of the healthy system (the paper reports a <= 3% drop; we
    # allow a wider band at reduced training scale).
    assert (overall > 100.0 / 3.0).all()
    assert overall.min() >= healthy_overall - 25.0
    assert ((0 <= cloud) & (cloud <= 100)).all()


def test_bench_multi_device_failures(benchmark, scale, record_result):
    result = benchmark.pedantic(
        run_multi_device_failures, args=(scale,), kwargs={"max_failures": 3}, rounds=1, iterations=1
    )
    record_result(result)
    overall = np.array(result.column("overall_accuracy_pct"))
    assert len(result.rows) == 4  # 0..3 failures
    # Degradation is graceful: accuracy never collapses to chance with up to
    # half of the devices lost.
    assert (overall[:3] > 100.0 / 3.0).all()
