"""Benchmark S4 — wall-clock parallel serving on real thread-pool workers.

Regenerates the parallel-serving table: the thread backend's routing must
match the deterministic simulated backend decision-for-decision at every
worker count (the experiment itself raises on any mismatch), and wall-clock
throughput is recorded for 1/2/4 workers on both the single-node server and
the tier fabric.

The scaling acceptance bar is gated on the CPUs actually available to the
process, mirroring the serving-throughput benchmark's relaxed-bar policy for
shared runners: with fewer than 2 usable cores, threads can only add
contention, so the bar degrades to a sanity floor (no pathological
slowdown); the full >=1.8x 1->4-worker floor applies only when at least 4
cores are visible.
"""

from __future__ import annotations

from repro.experiments.parallel_serving import available_cpu_count, run_parallel_serving


def test_bench_parallel_serving(benchmark, scale, record_result):
    result = benchmark.pedantic(
        run_parallel_serving, args=(scale,), rounds=1, iterations=1
    )
    record_result(result)

    # Equivalence rows: one simulated reference plus one thread row per
    # worker count, all cross-checked inside the experiment (it raises on a
    # decision mismatch, so reaching this point already proves equivalence).
    equivalence = [row for row in result.rows if row["sweep"] == "equivalence"]
    assert equivalence[0]["backend"] == "simulated"
    assert equivalence[0]["routing_match"] == "ref"
    thread_rows = equivalence[1:]
    assert thread_rows, "expected at least one thread-backend equivalence row"
    assert all(row["backend"] == "thread" for row in thread_rows)
    assert all(row["routing_match"] == "yes" for row in thread_rows)

    # Scaling rows: every sweep starts from its own 1.00x baseline.
    for sweep in ("server", "fabric"):
        rows = [row for row in result.rows if row["sweep"] == sweep]
        assert rows, f"missing {sweep} scaling rows"
        assert rows[0]["speedup_x"] == 1.0
        speedups = [row["speedup_x"] for row in rows]
        cores = available_cpu_count()
        if cores >= 4:
            # Real parallel hardware: 4 threads of GIL-releasing compiled
            # forwards must deliver >= 1.8x the single-worker throughput.
            assert max(speedups) >= 1.8, (
                f"{sweep}: best speedup {max(speedups):.2f}x < 1.8x "
                f"with {cores} cores"
            )
        else:
            # Shared/serialised runner (this box reports few usable cores):
            # threads cannot beat one worker, but they must not collapse —
            # the pool/locking overhead stays within ~3x of sequential.
            assert min(speedups) >= 1.0 / 3.0, (
                f"{sweep}: speedup collapsed to {min(speedups):.2f}x "
                f"on a {cores}-core runner"
            )

    assert result.metadata["cpu_count"] == available_cpu_count()
