"""Benchmark — the forward-once oracle sweep must beat per-threshold eager re-runs.

The seed evaluation loops re-forwarded the dataset once per grid point
(8 eager forwards for Table II, 21 for the Figure 9 calibration).  The
:class:`~repro.core.oracle.ExitOracle` answers the same grids from one
compiled forward; this benchmark records the measured speedup and enforces
the >=10x bar on the 8-point Table II grid (the hardest case — larger grids
amortize the single forward even further).
"""

from __future__ import annotations

from repro.experiments import REFERENCE_GRID, run_sweep_fastpath

#: Minimum speedup of the oracle sweep over the 8-forward eager loop.  One
#: compiled forward replaces 8 eager forwards, so the bar holds as long as
#: the compiled forward is not ~above 80% of an eager forward's cost; the
#: measured margin is far larger.
MIN_REFERENCE_SPEEDUP = 10.0


def test_bench_threshold_sweep_fastpath(benchmark, scale, record_result):
    # Best-of-5 timing per path: both sides keep their fastest round, so a
    # single noisy round on a loaded runner cannot sink the speedup ratio.
    result = benchmark.pedantic(
        run_sweep_fastpath, args=(scale,), kwargs={"timing_rounds": 5}, rounds=1, iterations=1
    )
    record_result(result)

    by_grid = {row["grid"]: row for row in result.rows}
    assert REFERENCE_GRID in by_grid

    # Every grid: the oracle path runs exactly one forward and must win.
    for row in result.rows:
        assert row["speedup"] > 1.0, f"oracle sweep slower than eager loop on {row['grid']}"
        assert row["eager_forwards"] == row["points"]

    reference = by_grid[REFERENCE_GRID]
    assert reference["speedup"] >= MIN_REFERENCE_SPEEDUP, (
        f"Table II sweep speedup {reference['speedup']:.1f}x below the "
        f"{MIN_REFERENCE_SPEEDUP:.0f}x bar"
    )
    assert result.metadata["reference_speedup"] == reference["speedup"]
