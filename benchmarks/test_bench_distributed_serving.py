"""Benchmark S3 — distributed serving fabric: p95 / offload vs fabric knobs.

Runs the tier-aware fabric study (open-loop Poisson arrivals, simulated
time, real model predictions) and checks the distributed-serving contract:

* exit decisions are worker-count-invariant: every worker-sweep row reports
  the same offload fraction and accuracy, only the latency moves;
* adding workers never worsens the tail, and going from a saturated single
  worker to two cuts p95 measurably;
* shrinking link bandwidth adds transfer delay for offloaded requests
  without changing what is offloaded;
* adaptive shedding (raising the local-exit threshold under queue pressure)
  cuts both the offload fraction and the tail latency of the saturated
  single-worker row at a bounded accuracy cost.

Everything is simulated-time deterministic — no wall-clock assertions.
"""

from __future__ import annotations

from repro.experiments.distributed_serving import run_distributed_serving


def test_bench_distributed_serving(benchmark, scale, record_result):
    result = benchmark.pedantic(
        run_distributed_serving, args=(scale,), rounds=1, iterations=1
    )
    record_result(result)
    rows = result.rows

    worker_rows = sorted(
        (row for row in rows if row["sweep"] == "workers"), key=lambda r: r["workers"]
    )
    assert len(worker_rows) >= 2

    # Worker-count invariance: same decisions, hence identical offload
    # fraction and accuracy across the sweep.
    for row in worker_rows[1:]:
        assert row["offload_pct"] == worker_rows[0]["offload_pct"]
        assert row["accuracy_pct"] == worker_rows[0]["accuracy_pct"]

    # More workers never worsen the tail; the first doubling visibly helps
    # (the single worker is saturated at offered_x > 1).
    p95s = [row["p95_ms"] for row in worker_rows]
    assert all(b <= a * 1.001 for a, b in zip(p95s, p95s[1:])), p95s
    assert p95s[1] < 0.9 * p95s[0], f"2 workers should beat 1 under overload: {p95s}"

    # Bandwidth: scaled-down links slow offloaded requests but route the
    # same samples (offload fraction pinned to the matched workers=2 row).
    two_worker = next(row for row in worker_rows if row["workers"] == 2)
    for row in rows:
        if row["sweep"] != "bandwidth":
            continue
        assert row["offload_pct"] == two_worker["offload_pct"]
        assert row["p50_ms"] >= two_worker["p50_ms"]

    # Threshold moves the offload fraction (the paper's knob, end to end).
    threshold_rows = [row for row in rows if row["sweep"] == "threshold"]
    offloads = {row["threshold"]: row["offload_pct"] for row in threshold_rows}
    offloads[two_worker["threshold"]] = two_worker["offload_pct"]
    ordered = [offloads[key] for key in sorted(offloads)]
    assert ordered == sorted(ordered, reverse=True), (
        "offload fraction should fall as the local threshold rises: "
        f"{offloads}"
    )

    # Adaptive shedding vs the matched saturated single-worker row: less
    # offload, better tail, bounded accuracy cost.
    baseline = worker_rows[0]
    adaptive = next(row for row in rows if row["sweep"] == "adaptive")
    assert adaptive["relaxed_pct"] > 0.0
    assert adaptive["offload_pct"] < baseline["offload_pct"]
    assert adaptive["p95_ms"] < baseline["p95_ms"]
    assert adaptive["accuracy_pct"] >= baseline["accuracy_pct"] - 10.0
