"""Benchmark S1 — online serving throughput: dynamic batching vs sequential.

Serves the MVMC test traffic through :class:`~repro.serving.server.DDNNServer`
in sequential (batch-size-1) mode and with dynamic micro-batching, and
records the measured throughput ratio.  The acceptance bar: micro-batching
must deliver at least a 2.5x throughput win over request-at-a-time serving
(typically ~3x, but this is a wall-clock measurement — the bar leaves
headroom for noisy shared CI runners) while producing bit-identical
predictions.
"""

from __future__ import annotations

from repro.experiments.serving_benchmark import run_serving_throughput


def test_bench_serving_throughput(benchmark, scale, record_result):
    result = benchmark.pedantic(
        run_serving_throughput, args=(scale,), kwargs={"repeats": 3}, rounds=1, iterations=1
    )
    record_result(result)

    modes = result.column("mode")
    assert modes[0] == "sequential"
    speedups = result.column("speedup_vs_sequential")
    assert speedups[0] == 1.0

    # Batching must not change a single answer (the experiment itself raises
    # if predictions diverge); accuracy is therefore identical across modes.
    accuracies = result.column("accuracy_pct")
    assert len(set(round(a, 9) for a in accuracies)) == 1

    # The headline claim: dynamic micro-batching >= 2.5x sequential throughput
    # (typically ~3x; the margin absorbs wall-clock noise on shared runners).
    assert max(speedups) >= 2.5, f"best speedup {max(speedups):.2f}x < 2.5x"

    # Larger windows should not serve fewer requests.
    requests = result.column("requests")
    assert len(set(requests)) == 1
