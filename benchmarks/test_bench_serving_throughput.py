"""Benchmark S1 — online serving throughput: dynamic batching vs sequential.

Serves the MVMC test traffic through :class:`~repro.serving.server.DDNNServer`
in sequential (batch-size-1) mode and with dynamic micro-batching, on both
the eager and the compiled forward path, and records the measured throughput
ratios.  Acceptance bars: micro-batching must deliver at least a 2.5x
throughput win over request-at-a-time serving on the eager path (typically
~3x; wall-clock measurement, headroom for noisy shared CI runners), the
compiled path must lift the best end-to-end throughput, and every
mode/path combination must produce bit-identical predictions.
"""

from __future__ import annotations

from repro.experiments.serving_benchmark import run_serving_throughput


def test_bench_serving_throughput(benchmark, scale, record_result):
    result = benchmark.pedantic(
        run_serving_throughput, args=(scale,), kwargs={"repeats": 3}, rounds=1, iterations=1
    )
    record_result(result)

    modes = result.column("mode")
    assert modes[0] == "sequential"
    speedups = result.column("speedup_vs_sequential")
    assert speedups[0] == 1.0

    # Neither batching nor the compiled path may change a single answer (the
    # experiment itself raises if predictions diverge); accuracy is therefore
    # identical across every mode/path row.
    accuracies = result.column("accuracy_pct")
    assert len(set(round(a, 9) for a in accuracies)) == 1

    # The headline claim: dynamic micro-batching >= 2.5x sequential throughput
    # on the eager path (typically ~3x; the margin absorbs wall-clock noise
    # on shared runners).
    eager_speedups = [
        row["speedup_vs_sequential"] for row in result.rows if row["path"] == "eager"
    ]
    assert max(eager_speedups) >= 2.5, f"best speedup {max(eager_speedups):.2f}x < 2.5x"

    # The compiled fast path must lift the best end-to-end serving throughput
    # (typically ~1.5-2x; modest bar for shared runners).
    assert result.metadata["compiled_vs_eager_best"] >= 1.15, (
        f"compiled best throughput only "
        f"{result.metadata['compiled_vs_eager_best']:.2f}x the eager best"
    )

    # Larger windows should not serve fewer requests.
    requests = result.column("requests")
    assert len(set(requests)) == 1
