"""Benchmark E4 — regenerate Figure 8 (accuracy vs number of end devices)."""

from __future__ import annotations

import time

import numpy as np

from repro.experiments import ExperimentResult, run_scaling_devices
from repro.hierarchy.telemetry import SampleTrace, Telemetry


def test_bench_fig8_scaling_devices(benchmark, scale, record_result):
    result = benchmark.pedantic(run_scaling_devices, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    assert [row["num_devices"] for row in result.rows] == list(range(1, scale.num_devices + 1))

    individual = np.array(result.column("individual_accuracy_pct"))
    cloud = np.array(result.column("cloud_accuracy_pct"))
    local = np.array(result.column("local_accuracy_pct"))
    overall = np.array(result.column("overall_accuracy_pct"))

    # Devices are added worst-to-best individual accuracy (the Figure 8 ordering).
    assert (np.diff(individual) >= -1e-9).all()

    # Fusing all devices should beat the best single device — the headline
    # sensor-fusion claim of Figure 8.  The paper's margin is over 20 points
    # after 100 epochs; the reduced CI-scale joint model underfits, so the
    # check allows a tolerance while still requiring the fused system to land
    # in the same band as the best camera rather than at the individual mean.
    fused_best = max(cloud[-1], local[-1], overall[-1])
    assert fused_best >= individual.max() - 15.0
    assert fused_best >= individual.mean()

    # More devices should help: the six-device system beats the single-device
    # system at its best exit.
    assert max(cloud[-1], local[-1]) >= max(cloud[0], local[0]) - 1e-9


def test_bench_fig8_telemetry_record_batch(record_result):
    """Measure the saving of batch-recording telemetry over per-sample records.

    The hierarchy runtime used to build one ``SampleTrace`` per sample in a
    Python loop after every run; ``Telemetry.record_batch`` now ingests the
    whole run's arrays at once.  This microbenchmark records the speedup at
    a traffic volume matching a paper-scale fig8 sweep.
    """
    num_samples = 50_000
    rng = np.random.default_rng(0)
    predictions = rng.integers(0, 3, num_samples)
    targets = rng.integers(0, 3, num_samples)
    exit_names = ["local" if flag else "cloud" for flag in rng.random(num_samples) < 0.6]
    latencies = rng.random(num_samples)
    transferred = rng.random(num_samples) * 100.0
    entropies = rng.random(num_samples)
    indices = np.arange(num_samples)

    started = time.perf_counter()
    loop_telemetry = Telemetry()
    for index in range(num_samples):
        loop_telemetry.record(
            SampleTrace(
                sample_index=index,
                prediction=int(predictions[index]),
                exit_name=exit_names[index],
                latency_s=float(latencies[index]),
                bytes_transferred=float(transferred[index]),
                entropy=float(entropies[index]),
                correct=bool(predictions[index] == targets[index]),
            )
        )
    loop_seconds = time.perf_counter() - started

    started = time.perf_counter()
    batch_telemetry = Telemetry()
    batch_telemetry.record_batch(
        sample_indices=indices,
        predictions=predictions,
        exit_names=exit_names,
        latencies_s=latencies,
        bytes_transferred=transferred,
        entropies=entropies,
        correct=predictions == targets,
    )
    batch_seconds = time.perf_counter() - started

    assert len(loop_telemetry) == len(batch_telemetry) == num_samples
    loop_summary = loop_telemetry.summary()
    batch_summary = batch_telemetry.summary()
    assert batch_summary.accuracy == loop_summary.accuracy
    assert batch_summary.exit_fractions == loop_summary.exit_fractions
    assert batch_summary.total_bytes == loop_summary.total_bytes

    speedup = loop_seconds / batch_seconds
    result = ExperimentResult(
        name="fig8_telemetry_record_batch",
        paper_reference="Figure 8 (runtime telemetry)",
        columns=["method", "samples", "seconds", "speedup"],
        metadata={"num_samples": num_samples},
    )
    result.add_row(method="per-sample record", samples=num_samples, seconds=loop_seconds, speedup=1.0)
    result.add_row(method="record_batch", samples=num_samples, seconds=batch_seconds, speedup=speedup)
    record_result(result)

    assert speedup > 2.0, f"record_batch only {speedup:.2f}x faster than the per-sample loop"
