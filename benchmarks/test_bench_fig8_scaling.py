"""Benchmark E4 — regenerate Figure 8 (accuracy vs number of end devices)."""

from __future__ import annotations

import numpy as np

from repro.experiments import run_scaling_devices


def test_bench_fig8_scaling_devices(benchmark, scale, record_result):
    result = benchmark.pedantic(run_scaling_devices, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    assert [row["num_devices"] for row in result.rows] == list(range(1, scale.num_devices + 1))

    individual = np.array(result.column("individual_accuracy_pct"))
    cloud = np.array(result.column("cloud_accuracy_pct"))
    local = np.array(result.column("local_accuracy_pct"))
    overall = np.array(result.column("overall_accuracy_pct"))

    # Devices are added worst-to-best individual accuracy (the Figure 8 ordering).
    assert (np.diff(individual) >= -1e-9).all()

    # Fusing all devices should beat the best single device — the headline
    # sensor-fusion claim of Figure 8.  The paper's margin is over 20 points
    # after 100 epochs; the reduced CI-scale joint model underfits, so the
    # check allows a tolerance while still requiring the fused system to land
    # in the same band as the best camera rather than at the individual mean.
    fused_best = max(cloud[-1], local[-1], overall[-1])
    assert fused_best >= individual.max() - 15.0
    assert fused_best >= individual.mean()

    # More devices should help: the six-device system beats the single-device
    # system at its best exit.
    assert max(cloud[-1], local[-1]) >= max(cloud[0], local[0]) - 1e-9
