"""Benchmark E5 — regenerate Figure 9 (accuracy vs communication / device size)."""

from __future__ import annotations

import numpy as np

from repro.experiments import DEFAULT_FILTER_SWEEP, run_cloud_offloading


def test_bench_fig9_cloud_offloading(benchmark, scale, record_result):
    result = benchmark.pedantic(run_cloud_offloading, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    assert [row["device_filters"] for row in result.rows] == list(DEFAULT_FILTER_SWEEP)

    communication = np.array(result.column("communication_bytes"))
    memory = np.array(result.column("device_memory_bytes"))
    overall = np.array(result.column("overall_accuracy_pct"))
    local = np.array(result.column("local_accuracy_pct"))
    cloud = np.array(result.column("cloud_accuracy_pct"))

    # Every device configuration fits in the paper's 2 KB budget.
    assert (memory < 2048).all()
    # More filters -> more bytes forwarded to the cloud (at a fixed exit rate)
    # and a larger device memory footprint.
    assert (np.diff(memory) > 0).all()
    # Offloading the non-confident samples must not hurt: the staged (overall)
    # accuracy tracks the better of the two exits to within a few points —
    # Fig. 9's observation that cloud offloading improves on the local-only
    # system.  (At paper scale the cloud exit strictly dominates; at reduced
    # CI scale we assert the weaker, robust form of the trend.)
    assert (overall >= np.minimum(local, cloud) - 5.0).all()
    assert overall.mean() >= local.mean() - 10.0
    assert ((0 <= overall) & (overall <= 100)).all()
    assert (overall > 100.0 / 3.0).all()
    assert (communication > 0).all()
