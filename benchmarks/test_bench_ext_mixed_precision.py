"""Benchmark E9b — extension: mixed-precision cloud (paper Section VI)."""

from __future__ import annotations

from repro.experiments import run_mixed_precision


def test_bench_ext_mixed_precision(benchmark, scale, record_result):
    result = benchmark.pedantic(run_mixed_precision, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    rows = {row["cloud_precision"]: row for row in result.rows}
    assert set(rows) == {"binary", "float"}
    for row in rows.values():
        assert 0.0 <= row["cloud_accuracy_pct"] <= 100.0
        # Kernel-side cross-check: the bitpacked compiled mode reproduces
        # the fp64 logits bit for bit, and the fp32 mode honors its
        # grid-pooled routing-agreement guarantee on both trained models.
        assert row["bitpacked_identical"] == "yes"
        assert row["fp32_routing_agreement"] >= 0.999
        # fp32 staged accuracy can only drift where routing disagrees.
        assert abs(row["fp32_overall_accuracy_pct"] - row["overall_accuracy_pct"]) <= 1.0
    # A floating-point cloud should not be (much) worse than a binary cloud —
    # it strictly generalises the binary hypothesis class.
    assert rows["float"]["cloud_accuracy_pct"] >= rows["binary"]["cloud_accuracy_pct"] - 15.0
