"""Benchmark E9b — extension: mixed-precision cloud (paper Section VI)."""

from __future__ import annotations

from repro.experiments import run_mixed_precision


def test_bench_ext_mixed_precision(benchmark, scale, record_result):
    result = benchmark.pedantic(run_mixed_precision, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    rows = {row["cloud_precision"]: row for row in result.rows}
    assert set(rows) == {"binary", "float"}
    for row in rows.values():
        assert 0.0 <= row["cloud_accuracy_pct"] <= 100.0
    # A floating-point cloud should not be (much) worse than a binary cloud —
    # it strictly generalises the binary hypothesis class.
    assert rows["float"]["cloud_accuracy_pct"] >= rows["binary"]["cloud_accuracy_pct"] - 15.0
