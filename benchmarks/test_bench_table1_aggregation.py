"""Benchmark E2 — regenerate Table I (accuracy of aggregation schemes)."""

from __future__ import annotations

import numpy as np

from repro.experiments import PAPER_TABLE1_ORDER, run_aggregation_table


def test_bench_table1_aggregation(benchmark, scale, record_result):
    result = benchmark.pedantic(run_aggregation_table, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    assert [row["scheme"] for row in result.rows] == list(PAPER_TABLE1_ORDER)
    local = np.array(result.column("local_accuracy_pct"))
    cloud = np.array(result.column("cloud_accuracy_pct"))
    assert ((0 <= local) & (local <= 100)).all()
    assert ((0 <= cloud) & (cloud <= 100)).all()

    # Robust shape check from the paper's Table I discussion: concatenation is
    # the right cloud aggregator (it "maintains the most information for NN
    # layer processing in the cloud") while max pooling the cloud feature maps
    # performs poorly.  Averaged over local schemes, *-CC must beat *-MP in
    # the cloud column at any training scale.  (The paper's stronger claim —
    # MP-CC best overall — emerges at the full 100-epoch paper scale; at ci
    # scale the CC local aggregator's trainable projection converges faster,
    # see EXPERIMENTS.md.)
    by_scheme = {row["scheme"]: row for row in result.rows}
    cc_cloud = np.mean([by_scheme[s]["cloud_accuracy_pct"] for s in ("MP-CC", "AP-CC", "CC-CC")])
    mp_cloud = np.mean([by_scheme[s]["cloud_accuracy_pct"] for s in ("MP-MP", "AP-MP", "CC-MP")])
    assert cc_cloud > mp_cloud
    # Every scheme must train to something meaningfully above the 33% chance level
    # at at least one exit.
    assert (np.maximum(local, cloud) > 45.0).all()
