"""Benchmark E9a — extension: device/edge/cloud topologies (Fig. 2 (d)-(f))."""

from __future__ import annotations

import numpy as np

from repro.experiments import run_edge_hierarchy


def test_bench_ext_edge_hierarchy(benchmark, scale, record_result):
    result = benchmark.pedantic(run_edge_hierarchy, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    assert len(result.rows) == 3
    # The two edge topologies actually expose an edge exit.
    edge_rows = result.rows[1:]
    for row in edge_rows:
        assert not np.isnan(row["edge_accuracy_pct"])
        assert 0.0 <= row["edge_accuracy_pct"] <= 100.0
    # The baseline (c) topology has no edge exit.
    assert np.isnan(result.rows[0]["edge_accuracy_pct"])
    overall = np.array(result.column("overall_accuracy_pct"))
    assert ((0 <= overall) & (overall <= 100)).all()
