"""Benchmark S5 — the elastic tier plane under a diurnal load ramp.

Regenerates the elastic-serving table: static-min / static-peak / elastic
provisioning against an identical sinusoidal arrival stream, plus the
mid-run repartition study.  The experiment itself raises when the elastic
p95 exceeds the equal-peak-budget static p95 or when post-handoff routing
diverges from a freshly-built fabric at the new boundary, so a recorded
table is already evidence; the assertions below re-state the acceptance
bars explicitly on the rows.

Everything runs on the simulated backend, so the rows are deterministic on
any machine (cpu_count is recorded for parity with the wall-clock studies,
not because the numbers depend on it).
"""

from __future__ import annotations

from repro.experiments.elastic_serving import run_elastic_serving
from repro.experiments.parallel_serving import available_cpu_count


def test_bench_elastic_serving(benchmark, scale, record_result):
    result = benchmark.pedantic(
        run_elastic_serving, args=(scale,), rounds=1, iterations=1
    )
    record_result(result)

    diurnal = {row["config"]: row for row in result.rows if row["sweep"] == "diurnal"}
    assert set(diurnal) == {"static-min", "static-peak", "elastic"}

    # The under-provisioned static config must visibly suffer at the crest
    # (that is the regime elasticity exists for) ...
    assert diurnal["static-min"]["p95_ms"] > diurnal["static-peak"]["p95_ms"]
    # ... and the elastic config must match the fully-provisioned tail:
    # elastic p95 <= static p95 at equal peak worker budget.
    assert diurnal["elastic"]["p95_ms"] <= diurnal["static-peak"]["p95_ms"]
    # The autoscaler actually moved: it reached the peak budget and scaled
    # in both directions over the cycle.
    assert diurnal["elastic"]["peak_workers"] == result.metadata["peak_worker_budget"]
    assert result.metadata["elastic_trajectory"], "expected scale events"

    # Repartition row: queued requests crossed the boundary move with exact
    # accounting and byte-identical post-handoff routing (the run raises
    # otherwise, so the detail string is a faithful record).
    repartition = [row for row in result.rows if row["sweep"] == "repartition"]
    assert len(repartition) == 1
    detail = repartition[0]["detail"]
    assert "match=yes" in detail
    assert "dropped=0" in detail
    assert "duplicated=0" in detail
    assert result.metadata["repartition"]["post_handoff_requests"] > 0

    assert result.metadata["cpu_count"] == available_cpu_count()
