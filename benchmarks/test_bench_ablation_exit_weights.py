"""Benchmark E8 — exit-loss weight ablation (paper Section IV-A discussion)."""

from __future__ import annotations

import numpy as np

from repro.experiments import run_weight_ablation


def test_bench_ablation_exit_weights(benchmark, scale, record_result):
    result = benchmark.pedantic(run_weight_ablation, args=(scale,), rounds=1, iterations=1)
    record_result(result)

    assert [row["weighting"] for row in result.rows] == ["equal", "local-heavy", "cloud-heavy"]
    overall = np.array(result.column("overall_accuracy_pct"))
    # The paper reports the solution is not sensitive to the exit weights: all
    # three settings land in a broad common band (no collapse to chance).
    assert (overall > 100.0 / 3.0).all()
    assert overall.max() - overall.min() < 40.0
