"""Benchmark S2 — tail latency under open-loop overload, per admission policy.

Drives the DDNN server with a seeded Poisson arrival process on a simulated
clock (deterministic latencies, real model predictions) and checks the
overload-safety contract:

* the unbounded FIFO baseline's p95 latency grows with run length once the
  offered load exceeds capacity — the queue simply keeps deepening;
* a bounded queue with *any* admission policy (reject / drop-oldest /
  shed-to-local-exit) keeps p95 finite and inside the analytic bound implied
  by the queue capacity, paying with an explicit reject/drop/shed rate.
"""

from __future__ import annotations

from repro.experiments.overload_study import run_overload_study


def test_bench_overload_tail_latency(benchmark, scale, record_result):
    result = benchmark.pedantic(
        run_overload_study, args=(scale,), rounds=1, iterations=1
    )
    record_result(result)

    rows = result.rows
    bounded = [row for row in rows if row["policy"] != "unbounded"]
    assert bounded, "no bounded-policy rows produced"

    # Every bounded policy, at every offered load (including >= 2x capacity),
    # keeps p95 inside the configured capacity-implied bound.
    for row in bounded:
        assert row["p95_ms"] <= row["p95_bound_ms"], (
            f"{row['policy']} at {row['offered_x']}x: p95 {row['p95_ms']:.1f}ms "
            f"exceeds bound {row['p95_bound_ms']:.1f}ms"
        )

    # Each policy actually engages under overload: the 2x surplus shows up
    # as the policy's own signal (reject vs drop vs shed rate).
    overloaded = {row["policy"]: row for row in bounded if row["offered_x"] == 2.0}
    assert overloaded["reject"]["reject_pct"] > 10.0
    assert overloaded["drop-oldest"]["drop_pct"] > 10.0
    assert overloaded["shed-local"]["shed_pct"] > 10.0
    # Admission only sheds load it cannot serve: below capacity nothing engages.
    for row in bounded:
        if row["offered_x"] <= 0.5:
            assert row["reject_pct"] + row["drop_pct"] + row["shed_pct"] < 5.0

    # Divergence: the unbounded baseline at 2x capacity re-run with growing
    # run lengths (same arrival seed) — p95 must grow with run length, and
    # roughly linearly (the backlog deepens at the surplus rate).
    # The growth sweep is appended last, one row per growth length.
    growth = sorted(
        rows[-len(result.metadata["growth_lengths"]) :],
        key=lambda row: row["requests"],
    )
    assert all(row["policy"] == "unbounded" and row["offered_x"] == 2.0 for row in growth)
    assert len(growth) >= 3
    p95s = [row["p95_ms"] for row in growth]
    assert p95s == sorted(p95s), f"unbounded p95 not monotone in run length: {p95s}"
    assert p95s[-1] > 2.0 * p95s[0], (
        f"unbounded p95 should diverge with run length, got {p95s}"
    )
    # ... and the bounded policies all beat the unbounded tail at 2x load.
    unbounded_2x = [
        row
        for row in rows
        if row["policy"] == "unbounded"
        and row["offered_x"] == 2.0
        and row["requests"] == result.metadata["num_requests"]
    ][0]
    for policy, row in overloaded.items():
        assert row["p95_ms"] < unbounded_2x["p95_ms"], (
            f"{policy} p95 {row['p95_ms']:.1f}ms not better than "
            f"unbounded {unbounded_2x['p95_ms']:.1f}ms"
        )
