"""``repro.nn`` — a self-contained NumPy deep-learning substrate.

The DDNN reproduction does not depend on an external deep-learning framework.
This package provides everything the paper's models need: a reverse-mode
autodiff tensor, dense and convolutional layers, binary (BNN/eBNN) layers and
fused blocks, losses, optimisers and data utilities.
"""

from . import functional
from .binary import BinaryActivation, BinaryConv2d, BinaryLinear, binarize, binary_memory_bytes
from .blocks import ConvPBlock, FCBlock, block_memory_bytes
from .data import ArrayDataset, DataLoader, train_test_split
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .losses import joint_exit_loss, softmax_cross_entropy
from .metrics import accuracy, confusion_matrix, per_class_accuracy
from .optim import SGD, Adam, Optimizer
from .serialization import load_module, load_state, save_module, save_state
from .tensor import Tensor, concatenate, is_grad_enabled, maximum, no_grad, stack

__all__ = [
    "functional",
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concatenate",
    "stack",
    "maximum",
    "Parameter",
    "Module",
    "Sequential",
    "Identity",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
    "BinaryLinear",
    "BinaryConv2d",
    "BinaryActivation",
    "binarize",
    "binary_memory_bytes",
    "FCBlock",
    "ConvPBlock",
    "block_memory_bytes",
    "softmax_cross_entropy",
    "joint_exit_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "ArrayDataset",
    "DataLoader",
    "train_test_split",
    "accuracy",
    "confusion_matrix",
    "per_class_accuracy",
    "save_state",
    "load_state",
    "save_module",
    "load_module",
]
