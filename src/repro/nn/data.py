"""Minimal dataset / data-loader utilities for the NumPy substrate."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

__all__ = ["ArrayDataset", "DataLoader", "train_test_split"]


class ArrayDataset:
    """A dataset backed by one or more aligned NumPy arrays.

    All arrays must share the same first (sample) dimension.  Indexing
    returns a tuple with one entry per array.
    """

    def __init__(self, *arrays: np.ndarray) -> None:
        if not arrays:
            raise ValueError("ArrayDataset requires at least one array")
        lengths = {len(array) for array in arrays}
        if len(lengths) != 1:
            raise ValueError(f"arrays have mismatched lengths: {sorted(lengths)}")
        self.arrays: Tuple[np.ndarray, ...] = tuple(np.asarray(a) for a in arrays)

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, ...]:
        return tuple(array[index] for array in self.arrays)


class DataLoader:
    """Iterate over a dataset in (optionally shuffled) mini-batches."""

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng if rng is not None else np.random.default_rng()

    def __len__(self) -> int:
        full, remainder = divmod(len(self.dataset), self.batch_size)
        if remainder and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[Tuple[np.ndarray, ...]]:
        indices = np.arange(len(self.dataset))
        if self.shuffle:
            self.rng.shuffle(indices)
        for start in range(0, len(indices), self.batch_size):
            batch_indices = indices[start : start + self.batch_size]
            if self.drop_last and len(batch_indices) < self.batch_size:
                break
            yield self.dataset[batch_indices]


def train_test_split(
    arrays: Sequence[np.ndarray],
    test_fraction: float = 0.2,
    seed: Optional[int] = None,
    stratify: Optional[np.ndarray] = None,
) -> Tuple[Tuple[np.ndarray, ...], Tuple[np.ndarray, ...]]:
    """Split aligned arrays into train and test subsets.

    Parameters
    ----------
    arrays:
        Sequence of aligned arrays (same first dimension).
    test_fraction:
        Fraction of samples placed in the test split.
    seed:
        Seed for the shuffling generator.
    stratify:
        Optional label array; when given, each class contributes
        proportionally to the test split.

    Returns
    -------
    (train_arrays, test_arrays):
        Two tuples with the same number of entries as ``arrays``.
    """
    if not arrays:
        raise ValueError("train_test_split requires at least one array")
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    length = len(arrays[0])
    rng = np.random.default_rng(seed)

    if stratify is None:
        indices = rng.permutation(length)
        split = int(round(length * (1.0 - test_fraction)))
        train_idx, test_idx = indices[:split], indices[split:]
    else:
        stratify = np.asarray(stratify)
        train_parts, test_parts = [], []
        for value in np.unique(stratify):
            class_indices = np.flatnonzero(stratify == value)
            class_indices = rng.permutation(class_indices)
            split = int(round(len(class_indices) * (1.0 - test_fraction)))
            train_parts.append(class_indices[:split])
            test_parts.append(class_indices[split:])
        train_idx = rng.permutation(np.concatenate(train_parts))
        test_idx = rng.permutation(np.concatenate(test_parts))

    train = tuple(np.asarray(a)[train_idx] for a in arrays)
    test = tuple(np.asarray(a)[test_idx] for a in arrays)
    return train, test
