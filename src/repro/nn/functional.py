"""Structured neural-network operations built on :class:`repro.nn.tensor.Tensor`.

This module implements the convolution, pooling and classification primitives
used by the DDNN reproduction.  Convolutions use an im2col formulation which
is the standard way to obtain reasonable performance from a pure-NumPy
implementation while keeping the backward pass straightforward.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor

__all__ = [
    "sliding_windows",
    "im2col",
    "col2im",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "log_softmax",
    "softmax",
    "softmax_cross_entropy",
    "conv_output_size",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    return (size + 2 * padding - kernel) // stride + 1


def sliding_windows(
    padded: np.ndarray, kernel_h: int, kernel_w: int, stride: int
) -> np.ndarray:
    """Zero-copy strided view of all kernel positions over a padded input.

    Returns a read-only view of shape ``(N, C, out_h, out_w, kernel_h,
    kernel_w)`` where ``windows[n, c, oy, ox]`` is the receptive field of
    output position ``(oy, ox)``.  Shared by the eager conv/pool ops and the
    compiled inference plans (:mod:`repro.compile`); the strided view
    replaces the former Python loop over kernel positions.
    """
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kernel_h, kernel_w), axis=(2, 3))
    return windows[:, :, ::stride, ::stride]


def im2col(
    images: np.ndarray,
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> Tuple[np.ndarray, int, int]:
    """Rearrange image patches into columns.

    Parameters
    ----------
    images:
        Input of shape ``(N, C, H, W)``.
    kernel_h, kernel_w, stride, padding:
        Convolution geometry.

    Returns
    -------
    columns:
        Array of shape ``(N, C * kernel_h * kernel_w, out_h * out_w)``.
    out_h, out_w:
        Spatial output dimensions.
    """
    batch, channels, height, width = images.shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)

    padded = np.pad(
        images,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
    )
    windows = sliding_windows(padded, kernel_h, kernel_w, stride)
    # (N, C, out_h, out_w, kh, kw) -> (N, C, kh, kw, out_h, out_w); the
    # reshape materialises the copy in one vectorised pass.
    cols = windows.transpose(0, 1, 4, 5, 2, 3)
    columns = cols.reshape(batch, channels * kernel_h * kernel_w, out_h * out_w)
    return columns, out_h, out_w


def col2im(
    columns: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel_h: int,
    kernel_w: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Inverse of :func:`im2col` (scatter-add of overlapping patches).

    Unlike the forward gathers (which became loop-free strided-view copies,
    see :func:`sliding_windows`), the scatter deliberately keeps a
    ``kernel_h * kernel_w`` loop: windows overlap in the output, and each
    iteration is one fully vectorised strided ``+=`` over a collision-free
    block.  A loop-free per-position-planes-then-sum formulation was
    measured 2-10x slower here with a ``k^2``-fold transient allocation.
    """
    batch, channels, height, width = input_shape
    out_h = conv_output_size(height, kernel_h, stride, padding)
    out_w = conv_output_size(width, kernel_w, stride, padding)

    cols = columns.reshape(batch, channels, kernel_h, kernel_w, out_h, out_w)
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding),
        dtype=columns.dtype,
    )
    for ky in range(kernel_h):
        y_max = ky + stride * out_h
        for kx in range(kernel_w):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


def conv2d(
    inputs: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution.

    Parameters
    ----------
    inputs:
        Tensor of shape ``(N, C_in, H, W)``.
    weight:
        Tensor of shape ``(C_out, C_in, kH, kW)``.
    bias:
        Optional tensor of shape ``(C_out,)``.
    """
    batch, _, _, _ = inputs.shape
    out_channels, in_channels, kernel_h, kernel_w = weight.shape
    if inputs.shape[1] != in_channels:
        raise ValueError(
            f"conv2d channel mismatch: input has {inputs.shape[1]} channels, "
            f"weight expects {in_channels}"
        )

    columns, out_h, out_w = im2col(inputs.data, kernel_h, kernel_w, stride, padding)
    weight_matrix = weight.data.reshape(out_channels, -1)
    # (N, C_out, out_h * out_w); matmul broadcasts over the batch dimension
    # and dispatches to BLAS, which is substantially faster than einsum here.
    out = np.matmul(weight_matrix, columns)
    if bias is not None:
        out = out + bias.data.reshape(1, out_channels, 1)
    out = out.reshape(batch, out_channels, out_h, out_w)

    input_shape = inputs.shape
    parents = [inputs, weight] if bias is None else [inputs, weight, bias]

    def backward(grad: np.ndarray) -> None:
        grad_out = np.asarray(grad).reshape(batch, out_channels, out_h * out_w)
        if weight.requires_grad:
            grad_weight = np.matmul(grad_out, columns.transpose(0, 2, 1)).sum(axis=0)
            weight._accumulate_grad(grad_weight.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate_grad(grad_out.sum(axis=(0, 2)))
        if inputs.requires_grad:
            grad_columns = np.matmul(weight_matrix.T, grad_out)
            grad_input = col2im(grad_columns, input_shape, kernel_h, kernel_w, stride, padding)
            inputs._accumulate_grad(grad_input)

    return Tensor._make_from_op(out, parents, backward)


def max_pool2d(
    inputs: Tensor,
    kernel_size: int,
    stride: Optional[int] = None,
    padding: int = 0,
) -> Tensor:
    """2-D max pooling over ``(N, C, H, W)`` inputs.

    Padded positions are filled with ``-inf`` so they never win the maximum.
    """
    stride = stride if stride is not None else kernel_size
    batch, channels, height, width = inputs.shape
    out_h = conv_output_size(height, kernel_size, stride, padding)
    out_w = conv_output_size(width, kernel_size, stride, padding)

    padded = np.pad(
        inputs.data,
        ((0, 0), (0, 0), (padding, padding), (padding, padding)),
        mode="constant",
        constant_values=-np.inf,
    )
    # (N, C, out_h, out_w, k, k) strided view -> flatten the window axis
    # (row-major (ky, kx), matching argmax's divmod decode below).
    windows = sliding_windows(padded, kernel_size, kernel_size, stride).reshape(
        batch, channels, out_h, out_w, kernel_size * kernel_size
    )

    argmax = windows.argmax(axis=-1)
    out = np.take_along_axis(windows, argmax[..., None], axis=-1)[..., 0]

    padded_shape = padded.shape

    def backward(grad: np.ndarray) -> None:
        if not inputs.requires_grad:
            return
        grad_arr = np.asarray(grad)
        grad_padded = np.zeros(padded_shape, dtype=grad_arr.dtype)
        ky, kx = np.divmod(argmax, kernel_size)
        n_idx, c_idx, oy_idx, ox_idx = np.indices(argmax.shape)
        h_idx = oy_idx * stride + ky
        w_idx = ox_idx * stride + kx
        np.add.at(grad_padded, (n_idx, c_idx, h_idx, w_idx), grad_arr)
        if padding:
            grad_input = grad_padded[:, :, padding:-padding, padding:-padding]
        else:
            grad_input = grad_padded
        inputs._accumulate_grad(grad_input)

    return Tensor._make_from_op(out, (inputs,), backward)


def avg_pool2d(
    inputs: Tensor,
    kernel_size: int,
    stride: Optional[int] = None,
    padding: int = 0,
) -> Tensor:
    """2-D average pooling over ``(N, C, H, W)`` inputs.

    Padded positions count toward the divisor (``count_include_pad`` style),
    matching the simple pooling used in the eBNN blocks.
    """
    stride = stride if stride is not None else kernel_size
    batch, channels, height, width = inputs.shape
    out_h = conv_output_size(height, kernel_size, stride, padding)
    out_w = conv_output_size(width, kernel_size, stride, padding)

    columns, _, _ = im2col(
        inputs.data.reshape(batch * channels, 1, height, width),
        kernel_size,
        kernel_size,
        stride,
        padding,
    )
    # columns: (N*C, k*k, out_h*out_w)
    out = columns.mean(axis=1).reshape(batch, channels, out_h, out_w)
    window = kernel_size * kernel_size

    def backward(grad: np.ndarray) -> None:
        if not inputs.requires_grad:
            return
        grad_arr = np.asarray(grad).reshape(batch * channels, 1, out_h * out_w)
        grad_columns = np.broadcast_to(grad_arr / window, (batch * channels, window, out_h * out_w))
        grad_input = col2im(
            np.ascontiguousarray(grad_columns),
            (batch * channels, 1, height, width),
            kernel_size,
            kernel_size,
            stride,
            padding,
        )
        inputs._accumulate_grad(grad_input.reshape(batch, channels, height, width))

    return Tensor._make_from_op(out, (inputs,), backward)


def log_softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable ``log(softmax(x))`` along ``axis``."""
    shifted_max = logits.data.max(axis=axis, keepdims=True)
    shifted = logits - Tensor(shifted_max)
    log_sum = shifted.exp().sum(axis=axis, keepdims=True).log()
    return shifted - log_sum


def softmax(logits: Tensor, axis: int = -1) -> Tensor:
    """Softmax probabilities along ``axis``."""
    return log_softmax(logits, axis=axis).exp()


def softmax_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    class_weights: Optional[np.ndarray] = None,
    normalize_by_classes: bool = False,
) -> Tensor:
    """Softmax cross-entropy loss, averaged over the batch.

    Parameters
    ----------
    logits:
        Tensor of shape ``(N, num_classes)``.
    targets:
        Integer class labels of shape ``(N,)``.
    class_weights:
        Optional per-class weights applied to each sample's loss.
    normalize_by_classes:
        If ``True``, additionally divide by ``num_classes`` — the ``1/|C|``
        factor that appears in the paper's loss formulation.  It only scales
        the objective and does not change the optimum.
    """
    targets = np.asarray(targets, dtype=np.int64)
    batch, num_classes = logits.shape
    if targets.shape != (batch,):
        raise ValueError(f"targets must have shape ({batch},), got {targets.shape}")

    one_hot = np.zeros((batch, num_classes), dtype=logits.data.dtype)
    one_hot[np.arange(batch), targets] = 1.0
    if class_weights is not None:
        sample_weights = np.asarray(class_weights, dtype=logits.data.dtype)[targets]
        one_hot = one_hot * sample_weights[:, None]

    log_probs = log_softmax(logits, axis=-1)
    negative_ll = -(Tensor(one_hot) * log_probs).sum(axis=-1)
    loss = negative_ll.mean()
    if normalize_by_classes:
        loss = loss * (1.0 / num_classes)
    return loss
