"""Classification metrics used across the evaluation harness."""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["accuracy", "confusion_matrix", "per_class_accuracy"]


def accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Fraction of predictions matching the targets.

    ``predictions`` may be class indices of shape ``(N,)`` or logits /
    probabilities of shape ``(N, num_classes)``.
    """
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"prediction shape {predictions.shape} does not match target shape {targets.shape}"
        )
    if predictions.size == 0:
        return 0.0
    return float(np.mean(predictions == targets))


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Confusion matrix with rows = true class, columns = predicted class."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    if predictions.ndim == 2:
        predictions = predictions.argmax(axis=1)
    if num_classes is None:
        num_classes = int(max(predictions.max(initial=0), targets.max(initial=0))) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (targets.astype(int), predictions.astype(int)), 1)
    return matrix


def per_class_accuracy(predictions: np.ndarray, targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Accuracy computed independently for each class (NaN for absent classes)."""
    matrix = confusion_matrix(predictions, targets, num_classes=num_classes)
    totals = matrix.sum(axis=1).astype(float)
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)
