"""Neural-network layer library built on the autodiff :class:`~repro.nn.tensor.Tensor`.

The layer API intentionally mirrors the familiar ``Module`` / ``forward``
pattern so that the DDNN model code reads like conventional deep-learning
code while remaining a self-contained NumPy implementation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from . import functional as F
from . import init
from .tensor import Tensor

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Identity",
    "Linear",
    "Conv2d",
    "MaxPool2d",
    "AvgPool2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Flatten",
]


class Parameter(Tensor):
    """A trainable tensor (always requires gradients)."""

    def __init__(self, data, name: Optional[str] = None) -> None:
        super().__init__(data, requires_grad=True, name=name)


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward`.  Parameters and sub-modules that are
    assigned as attributes are registered automatically and show up in
    :meth:`parameters`, :meth:`named_parameters` and :meth:`state_dict`.
    """

    def __init__(self) -> None:
        self._parameters: "OrderedDict[str, Parameter]" = OrderedDict()
        self._buffers: "OrderedDict[str, np.ndarray]" = OrderedDict()
        self._modules: "OrderedDict[str, Module]" = OrderedDict()
        self.training: bool = True

    # -- attribute registration ---------------------------------------- #
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array that is part of the module state."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place (keeps state_dict consistent)."""
        self._buffers[name] = np.asarray(value, dtype=np.float64)
        object.__setattr__(self, name, self._buffers[name])

    # -- forward -------------------------------------------------------- #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- traversal ------------------------------------------------------ #
    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_parameters(child_prefix)

    def parameters(self) -> List[Parameter]:
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        for name, buffer in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buffer
        for name, module in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from module.named_buffers(child_prefix)

    # -- train / eval ---------------------------------------------------- #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    # -- state ------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Return a flat mapping of parameter and buffer names to arrays."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buffer in self.named_buffers():
            state[name] = np.asarray(buffer).copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = []
        for name, param in params.items():
            if name not in state:
                missing.append(name)
                continue
            value = np.asarray(state[name])
            if value.shape != param.data.shape:
                raise ValueError(
                    f"shape mismatch for parameter '{name}': "
                    f"expected {param.data.shape}, got {value.shape}"
                )
            param.data = value.astype(param.data.dtype).copy()
        if missing:
            raise KeyError(f"state_dict is missing parameters: {missing}")
        for prefix, module in self.named_modules():
            for buffer_name in list(module._buffers):
                full = f"{prefix}.{buffer_name}" if prefix else buffer_name
                if full in state:
                    module._set_buffer(buffer_name, np.asarray(state[full]))

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(param.size for param in self.parameters())


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self._layers: List[Module] = []
        for index, module in enumerate(modules):
            setattr(self, f"layer{index}", module)
            self._layers.append(module)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self._layers:
            output = layer(output)
        return output

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, index: int) -> Module:
        return self._layers[index]


class Identity(Module):
    """Pass-through layer (useful as an optional component placeholder)."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs


class Linear(Module):
    """Fully connected layer ``y = x W^T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        weight = init.glorot_uniform(
            (out_features, in_features), fan_in=in_features, fan_out=out_features, rng=rng
        )
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs.matmul(self.weight.transpose())
        if self.bias is not None:
            output = output + self.bias
        return output


class Conv2d(Module):
    """2-D convolution layer over ``(N, C, H, W)`` inputs."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        weight = init.he_normal(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in=fan_in, rng=rng
        )
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(np.zeros(out_channels), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        return F.conv2d(inputs, self.weight, self.bias, stride=self.stride, padding=self.padding)


class MaxPool2d(Module):
    """2-D max pooling."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, inputs: Tensor) -> Tensor:
        return F.max_pool2d(inputs, self.kernel_size, self.stride, self.padding)


class AvgPool2d(Module):
    """2-D average pooling."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding

    def forward(self, inputs: Tensor) -> Tensor:
        return F.avg_pool2d(inputs, self.kernel_size, self.stride, self.padding)


class _BatchNorm(Module):
    """Shared implementation for 1-D and 2-D batch normalisation."""

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(np.ones(num_features), name="gamma")
        self.beta = Parameter(np.zeros(num_features), name="beta")
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))

    def _normalize(self, inputs: Tensor, reduce_axes: Tuple[int, ...], shape: Tuple[int, ...]) -> Tensor:
        if self.training:
            mean = inputs.data.mean(axis=reduce_axes)
            var = inputs.data.var(axis=reduce_axes)
            self._set_buffer(
                "running_mean",
                (1 - self.momentum) * self.running_mean + self.momentum * mean,
            )
            self._set_buffer(
                "running_var",
                (1 - self.momentum) * self.running_var + self.momentum * var,
            )
            mean_t = inputs.mean(axis=reduce_axes, keepdims=True)
            centered = inputs - mean_t
            var_t = (centered * centered).mean(axis=reduce_axes, keepdims=True)
            normalized = centered / ((var_t + self.eps) ** 0.5)
        else:
            mean = self.running_mean.reshape(shape)
            var = self.running_var.reshape(shape)
            normalized = (inputs - Tensor(mean)) / Tensor(np.sqrt(var + self.eps))
        gamma = self.gamma.reshape(*shape)
        beta = self.beta.reshape(*shape)
        return normalized * gamma + beta


class BatchNorm1d(_BatchNorm):
    """Batch normalisation over ``(N, F)`` inputs."""

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 2:
            raise ValueError(f"BatchNorm1d expects (N, F) input, got shape {inputs.shape}")
        return self._normalize(inputs, reduce_axes=(0,), shape=(1, self.num_features))


class BatchNorm2d(_BatchNorm):
    """Batch normalisation over ``(N, C, H, W)`` inputs (per channel)."""

    def forward(self, inputs: Tensor) -> Tensor:
        if inputs.ndim != 4:
            raise ValueError(f"BatchNorm2d expects (N, C, H, W) input, got shape {inputs.shape}")
        return self._normalize(inputs, reduce_axes=(0, 2, 3), shape=(1, self.num_features, 1, 1))


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class Flatten(Module):
    """Flatten all dimensions after the batch dimension."""

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.flatten(start_dim=1)
