"""Weight initialisation helpers for the ``repro.nn`` substrate."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["glorot_uniform", "he_normal", "default_rng"]


def default_rng(seed: Optional[int] = None) -> np.random.Generator:
    """Return a NumPy random generator, seeded if ``seed`` is given."""
    return np.random.default_rng(seed)


def glorot_uniform(
    shape: Tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialisation."""
    rng = rng if rng is not None else default_rng()
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def he_normal(
    shape: Tuple[int, ...],
    fan_in: int,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """He/Kaiming normal initialisation suited to ReLU-like nonlinearities."""
    rng = rng if rng is not None else default_rng()
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)
