"""Reverse-mode automatic differentiation on NumPy arrays.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` deep-learning substrate.  A ``Tensor`` wraps a ``numpy.ndarray``
and records the operations applied to it so that gradients can be computed
with a single call to :meth:`Tensor.backward`.

The design mirrors the small, explicit style of micrograd-like engines but
operates on whole arrays: every primitive operation builds a node in a
directed acyclic graph and stores a closure that propagates the upstream
gradient to its parents.  Broadcasting is handled by summing gradients back
to the original operand shapes.

Only the primitives required by the DDNN reproduction are implemented here;
convolution, pooling and other structured operations live in
:mod:`repro.nn.functional` and register themselves through the same
mechanism (:meth:`Tensor._make_from_op`).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]


class _GradMode:
    """Process-wide switch used by :func:`no_grad` to disable graph recording."""

    enabled: bool = True


class no_grad:
    """Context manager that disables gradient tracking.

    Useful during inference and evaluation where building the autodiff graph
    would only waste memory.

    Example
    -------
    >>> with no_grad():
    ...     logits = model(x)
    """

    def __enter__(self) -> "no_grad":
        self._previous = _GradMode.enabled
        _GradMode.enabled = False
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        _GradMode.enabled = self._previous


def is_grad_enabled() -> bool:
    """Return ``True`` if operations are currently recorded for autodiff."""
    return _GradMode.enabled


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over broadcast dimensions so it matches ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were 1 in the original shape.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike, dtype=np.float64) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """A NumPy-backed array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  It is converted to ``float64`` by default,
        which keeps numerical gradient checks tight.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        name: Optional[str] = None,
    ) -> None:
        self.data: np.ndarray = _as_array(data)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Optional[Callable[[np.ndarray], None]] = None
        self._parents: Tuple["Tensor", ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    # ------------------------------------------------------------------ #
    # Graph construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _make_from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Create a result tensor for an operation.

        ``backward`` receives the upstream gradient and is responsible for
        calling :meth:`_accumulate_grad` on each parent that requires it.
        """
        requires_grad = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires_grad)
        if requires_grad:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate_grad(self, grad: np.ndarray) -> None:
        grad = _unbroadcast(np.asarray(grad, dtype=self.data.dtype), self.data.shape)
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate through the graph rooted at this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient.  Defaults to ``1`` which is only valid for
            scalar tensors (e.g. a loss value).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar tensors")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        topo: List[Tensor] = []
        visited = set()

        def build(node: "Tensor") -> None:
            if id(node) in visited:
                return
            visited.add(id(node))
            for parent in node._parents:
                build(parent)
            topo.append(node)

        build(self)
        self._accumulate_grad(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        data = self.data + other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad)
            if other_t.requires_grad:
                other_t._accumulate_grad(grad)

        return Tensor._make_from_op(data, (self, other_t), backward)

    def __radd__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(other)

    def __neg__(self) -> "Tensor":
        data = -self.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(-grad)

        return Tensor._make_from_op(data, (self,), backward)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self.__add__(_ensure_tensor(other).__neg__())

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other).__sub__(self)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        data = self.data * other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * other_t.data)
            if other_t.requires_grad:
                other_t._accumulate_grad(grad * self.data)

        return Tensor._make_from_op(data, (self, other_t), backward)

    def __rmul__(self, other: ArrayLike) -> "Tensor":
        return self.__mul__(other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        data = self.data / other_t.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad / other_t.data)
            if other_t.requires_grad:
                other_t._accumulate_grad(-grad * self.data / (other_t.data ** 2))

        return Tensor._make_from_op(data, (self, other_t), backward)

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return _ensure_tensor(other).__truediv__(self)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make_from_op(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise math
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * data)

        return Tensor._make_from_op(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad / self.data)

        return Tensor._make_from_op(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self.__pow__(0.5)

    def clip(self, low: float, high: float) -> "Tensor":
        """Clamp values; gradient is passed through only inside the range."""
        data = np.clip(self.data, low, high)
        inside = (self.data >= low) & (self.data <= high)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * inside)

        return Tensor._make_from_op(data, (self,), backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        data = self.data * mask

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * mask)

        return Tensor._make_from_op(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * data * (1.0 - data))

        return Tensor._make_from_op(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * (1.0 - data ** 2))

        return Tensor._make_from_op(data, (self,), backward)

    def sign_ste(self, clip_value: float = 1.0) -> "Tensor":
        """Binarize to {-1, +1} with a straight-through estimator.

        Forward: ``sign(x)`` mapping zero to ``+1``.  Backward: the gradient
        passes through unchanged where ``|x| <= clip_value`` and is zeroed
        elsewhere, following the BinaryConnect / BNN training recipe.
        """
        data = np.where(self.data >= 0, 1.0, -1.0)
        mask = np.abs(self.data) <= clip_value

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(grad * mask)

        return Tensor._make_from_op(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad_arr = np.asarray(grad)
            if axis is None:
                expanded = np.broadcast_to(grad_arr, self.data.shape)
            else:
                if not keepdims:
                    grad_arr = np.expand_dims(grad_arr, axis=axis)
                expanded = np.broadcast_to(grad_arr, self.data.shape)
            self._accumulate_grad(expanded)

        return Tensor._make_from_op(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        """Maximum along ``axis``; gradient flows to the arg-max entries only.

        Ties are broken by splitting the gradient equally among the maxima,
        which keeps the numerical gradient check well behaved.
        """
        data = self.data.max(axis=axis, keepdims=True)
        mask = (self.data == data).astype(self.data.dtype)
        mask = mask / mask.sum(axis=axis, keepdims=True)
        out_data = data if keepdims else np.squeeze(data, axis=axis)

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            grad_arr = np.asarray(grad)
            if not keepdims:
                grad_arr = np.expand_dims(grad_arr, axis=axis)
            self._accumulate_grad(grad_arr * mask)

        return Tensor._make_from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)
        original_shape = self.data.shape

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(np.asarray(grad).reshape(original_shape))

        return Tensor._make_from_op(data, (self,), backward)

    def transpose(self, *axes: int) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.data.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate_grad(np.asarray(grad).transpose(inverse))

        return Tensor._make_from_op(data, (self,), backward)

    def flatten(self, start_dim: int = 1) -> "Tensor":
        """Flatten all dimensions from ``start_dim`` onward."""
        leading = self.data.shape[:start_dim]
        return self.reshape(*leading, -1)

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            if not self.requires_grad:
                return
            full = np.zeros_like(self.data)
            np.add.at(full, index, np.asarray(grad))
            self._accumulate_grad(full)

        return Tensor._make_from_op(data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: ArrayLike) -> "Tensor":
        other_t = _ensure_tensor(other)
        data = self.data @ other_t.data

        def backward(grad: np.ndarray) -> None:
            grad_arr = np.asarray(grad)
            if self.requires_grad:
                self._accumulate_grad(grad_arr @ other_t.data.T)
            if other_t.requires_grad:
                other_t._accumulate_grad(self.data.T @ grad_arr)

        return Tensor._make_from_op(data, (self, other_t), backward)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.zeros(shape), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape: int, requires_grad: bool = False) -> "Tensor":
        return Tensor(np.ones(shape), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape: int, requires_grad: bool = False, rng: Optional[np.random.Generator] = None) -> "Tensor":
        generator = rng if rng is not None else np.random.default_rng()
        return Tensor(generator.standard_normal(shape), requires_grad=requires_grad)


def _ensure_tensor(value: ArrayLike) -> Tensor:
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


def concatenate(tensors: Iterable[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensor_list = [_ensure_tensor(t) for t in tensors]
    if not tensor_list:
        raise ValueError("concatenate() requires at least one tensor")
    data = np.concatenate([t.data for t in tensor_list], axis=axis)
    sizes = [t.data.shape[axis] for t in tensor_list]
    offsets = np.cumsum([0] + sizes)

    def backward(grad: np.ndarray) -> None:
        grad_arr = np.asarray(grad)
        for tensor, start, stop in zip(tensor_list, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                slicer = [slice(None)] * grad_arr.ndim
                slicer[axis] = slice(int(start), int(stop))
                tensor._accumulate_grad(grad_arr[tuple(slicer)])

    return Tensor._make_from_op(data, tensor_list, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensor_list = [_ensure_tensor(t) for t in tensors]
    if not tensor_list:
        raise ValueError("stack() requires at least one tensor")
    data = np.stack([t.data for t in tensor_list], axis=axis)

    def backward(grad: np.ndarray) -> None:
        grad_arr = np.asarray(grad)
        for index, tensor in enumerate(tensor_list):
            if tensor.requires_grad:
                tensor._accumulate_grad(np.take(grad_arr, index, axis=axis))

    return Tensor._make_from_op(data, tensor_list, backward)


def maximum(tensors: Sequence[Tensor]) -> Tensor:
    """Elementwise maximum over a sequence of same-shaped tensors.

    Gradient flows to the (first-listed in case of exact ties, split equally)
    tensors that attain the maximum, mirroring max-pooling aggregation.
    """
    tensor_list = [_ensure_tensor(t) for t in tensors]
    if not tensor_list:
        raise ValueError("maximum() requires at least one tensor")
    stacked = np.stack([t.data for t in tensor_list], axis=0)
    data = stacked.max(axis=0)
    mask = (stacked == data[None, ...]).astype(stacked.dtype)
    mask = mask / mask.sum(axis=0, keepdims=True)

    def backward(grad: np.ndarray) -> None:
        grad_arr = np.asarray(grad)
        for index, tensor in enumerate(tensor_list):
            if tensor.requires_grad:
                tensor._accumulate_grad(grad_arr * mask[index])

    return Tensor._make_from_op(data, tensor_list, backward)
