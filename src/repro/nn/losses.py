"""Loss functions, including the multi-exit joint loss used to train DDNNs."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from . import functional as F
from .tensor import Tensor

__all__ = ["softmax_cross_entropy", "joint_exit_loss"]


def softmax_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    class_weights: Optional[np.ndarray] = None,
    normalize_by_classes: bool = False,
) -> Tensor:
    """Softmax cross-entropy loss averaged over the batch.

    Thin re-export of :func:`repro.nn.functional.softmax_cross_entropy` so
    that model code can import every loss from one place.
    """
    return F.softmax_cross_entropy(
        logits,
        targets,
        class_weights=class_weights,
        normalize_by_classes=normalize_by_classes,
    )


def joint_exit_loss(
    exit_logits: Sequence[Tensor],
    targets: np.ndarray,
    exit_weights: Optional[Sequence[float]] = None,
    class_weights: Optional[np.ndarray] = None,
) -> Tensor:
    """Weighted sum of per-exit softmax cross-entropy losses (paper Sec. III-C).

    Parameters
    ----------
    exit_logits:
        Logits produced at each exit point, ordered from the earliest exit
        (local) to the last exit (cloud).
    targets:
        Integer class labels of shape ``(N,)``.
    exit_weights:
        Weight ``w_n`` for each exit.  Defaults to equal weights, as used for
        the experimental results of the paper.
    class_weights:
        Optional per-class weights forwarded to each exit loss.
    """
    if not exit_logits:
        raise ValueError("joint_exit_loss requires at least one exit")
    if exit_weights is None:
        exit_weights = [1.0] * len(exit_logits)
    if len(exit_weights) != len(exit_logits):
        raise ValueError(
            f"got {len(exit_weights)} exit weights for {len(exit_logits)} exits"
        )

    total: Optional[Tensor] = None
    for logits, weight in zip(exit_logits, exit_weights):
        loss = softmax_cross_entropy(logits, targets, class_weights=class_weights) * float(weight)
        total = loss if total is None else total + loss
    return total
