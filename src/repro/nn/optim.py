"""Gradient-based optimisers for the ``repro.nn`` substrate."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from .layers import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base class: holds a parameter list and implements ``zero_grad``."""

    def __init__(self, parameters: Iterable[Parameter]) -> None:
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity = self._velocity.get(id(param))
                if velocity is None:
                    velocity = np.zeros_like(param.data)
                velocity = self.momentum * velocity - self.lr * grad
                self._velocity[id(param)] = velocity
                param.data = param.data + velocity
            else:
                param.data = param.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba).

    Defaults match the hyper-parameters used throughout the paper:
    ``lr=0.001``, ``betas=(0.9, 0.999)``, ``eps=1e-8``.
    """

    def __init__(
        self,
        parameters: Iterable[Parameter],
        lr: float = 0.001,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        clip_weights: Optional[float] = None,
    ) -> None:
        super().__init__(parameters)
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.clip_weights = clip_weights
        self._step_count = 0
        self._first_moment: Dict[int, np.ndarray] = {}
        self._second_moment: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        self._step_count += 1
        bias_correction1 = 1.0 - self.beta1 ** self._step_count
        bias_correction2 = 1.0 - self.beta2 ** self._step_count
        for param in self.parameters:
            if param.grad is None:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            key = id(param)
            first = self._first_moment.get(key)
            second = self._second_moment.get(key)
            if first is None:
                first = np.zeros_like(param.data)
                second = np.zeros_like(param.data)
            first = self.beta1 * first + (1.0 - self.beta1) * grad
            second = self.beta2 * second + (1.0 - self.beta2) * grad * grad
            self._first_moment[key] = first
            self._second_moment[key] = second
            corrected_first = first / bias_correction1
            corrected_second = second / bias_correction2
            update = self.lr * corrected_first / (np.sqrt(corrected_second) + self.eps)
            param.data = param.data - update
            if self.clip_weights is not None:
                param.data = np.clip(param.data, -self.clip_weights, self.clip_weights)
