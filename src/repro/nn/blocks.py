"""Fused binary blocks used by the DDNN evaluation architecture (paper Fig. 3).

Two block types are defined, exactly as in the paper and in the eBNN work it
builds on:

* **FC block** — a (binary) fully connected layer with ``n`` nodes, batch
  normalisation and binary activation.
* **ConvP block** — a (binary) convolution with ``f`` filters (3x3 kernel,
  stride 1, padding 1), a 3x3 max pooling with stride 2 and padding 1, batch
  normalisation and binary activation.

Both blocks also come in float variants (used for the cloud section in the
mixed-precision extension experiment) selected by ``binary=False``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .binary import BinaryActivation, BinaryConv2d, BinaryLinear, binary_memory_bytes
from .layers import BatchNorm1d, BatchNorm2d, Conv2d, Linear, MaxPool2d, Module, ReLU
from .tensor import Tensor

__all__ = ["FCBlock", "ConvPBlock", "block_memory_bytes"]


class FCBlock(Module):
    """Fused binary fully-connected block: linear -> batch norm -> binary activation.

    Parameters
    ----------
    in_features, out_features:
        Layer dimensions.
    binary:
        Use binary weights and binary activation (default) or a float linear
        layer with ReLU, for the mixed-precision cloud variant.
    final:
        If ``True`` the block produces raw (float) pre-activation outputs,
        which is what exit layers need to feed a softmax classifier.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        binary: bool = True,
        final: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.binary = binary
        self.final = final
        if binary:
            self.linear = BinaryLinear(in_features, out_features, rng=rng)
        else:
            self.linear = Linear(in_features, out_features, rng=rng)
        self.batch_norm = BatchNorm1d(out_features)
        self.activation = BinaryActivation() if binary else ReLU()

    def forward(self, inputs: Tensor) -> Tensor:
        output = self.linear(inputs)
        output = self.batch_norm(output)
        if self.final:
            return output
        return self.activation(output)

    def memory_bytes(self) -> float:
        """Deployment footprint of the block in bytes."""
        return block_memory_bytes(self)


class ConvPBlock(Module):
    """Fused binary convolution-pool block (paper Fig. 3).

    Convolution: 3x3 kernel, stride 1, padding 1 with ``out_channels`` filters.
    Pooling: 3x3 max pool, stride 2, padding 1 (halves the spatial size).
    Followed by batch normalisation and binary activation.
    """

    CONV_KERNEL = 3
    CONV_STRIDE = 1
    CONV_PADDING = 1
    POOL_KERNEL = 3
    POOL_STRIDE = 2
    POOL_PADDING = 1

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        binary: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.binary = binary
        if binary:
            self.conv = BinaryConv2d(
                in_channels,
                out_channels,
                kernel_size=self.CONV_KERNEL,
                stride=self.CONV_STRIDE,
                padding=self.CONV_PADDING,
                rng=rng,
            )
        else:
            self.conv = Conv2d(
                in_channels,
                out_channels,
                kernel_size=self.CONV_KERNEL,
                stride=self.CONV_STRIDE,
                padding=self.CONV_PADDING,
                rng=rng,
            )
        self.pool = MaxPool2d(self.POOL_KERNEL, stride=self.POOL_STRIDE, padding=self.POOL_PADDING)
        self.batch_norm = BatchNorm2d(out_channels)
        self.activation = BinaryActivation() if binary else ReLU()

    def forward(self, inputs: Tensor) -> Tensor:
        output = self.conv(inputs)
        output = self.pool(output)
        output = self.batch_norm(output)
        return self.activation(output)

    def output_spatial_size(self, input_size: int) -> int:
        """Spatial size after the conv (same-size) and the stride-2 pooling."""
        from .functional import conv_output_size

        after_conv = conv_output_size(input_size, self.CONV_KERNEL, self.CONV_STRIDE, self.CONV_PADDING)
        return conv_output_size(after_conv, self.POOL_KERNEL, self.POOL_STRIDE, self.POOL_PADDING)

    def memory_bytes(self) -> float:
        """Deployment footprint of the block in bytes."""
        return block_memory_bytes(self)


def block_memory_bytes(block: Module, float_bytes: int = 4) -> float:
    """Deployment size of a block in bytes.

    Binary weights are counted at one bit each; all other parameters
    (biases, batch-norm scale/shift) and batch-norm running statistics are
    counted at ``float_bytes`` bytes each.
    """
    total = 0.0
    for module in block.modules():
        if isinstance(module, (BinaryLinear, BinaryConv2d)):
            bias_count = 0 if module.bias is None else module.bias.size
            total += binary_memory_bytes(module.weight.size, bias_count=bias_count, float_bytes=float_bytes)
        elif isinstance(module, (Linear, Conv2d)):
            count = module.weight.size + (0 if module.bias is None else module.bias.size)
            total += count * float_bytes
        elif isinstance(module, (BatchNorm1d, BatchNorm2d)):
            count = module.gamma.size + module.beta.size
            count += module.running_mean.size + module.running_var.size
            total += count * float_bytes
    return total
