"""Binary neural-network layers (BNN / BinaryConnect style).

The DDNN paper runs the device-resident sections of the network with binary
weights and binary activations so that they fit in a few kilobytes of memory.
This module provides:

* :func:`binarize` — deterministic sign binarisation with a straight-through
  estimator (STE) so the layers remain trainable end-to-end,
* :class:`BinaryLinear` and :class:`BinaryConv2d` — layers whose real-valued
  latent weights are binarised to ``{-1, +1}`` in the forward pass,
* :class:`BinaryActivation` — the sign nonlinearity used by the fused eBNN
  blocks,
* memory accounting helpers used to validate the paper's "< 2 KB per end
  device" claim.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from . import init
from .layers import Module, Parameter
from .tensor import Tensor

__all__ = [
    "binarize",
    "BinaryActivation",
    "BinaryLinear",
    "BinaryConv2d",
    "binary_memory_bytes",
]


def binarize(tensor: Tensor, clip_value: float = 1.0) -> Tensor:
    """Binarise a tensor to ``{-1, +1}`` with a straight-through estimator."""
    return tensor.sign_ste(clip_value=clip_value)


class BinaryActivation(Module):
    """Sign activation with straight-through gradient (the eBNN nonlinearity)."""

    def __init__(self, clip_value: float = 1.0) -> None:
        super().__init__()
        self.clip_value = clip_value

    def forward(self, inputs: Tensor) -> Tensor:
        return binarize(inputs, clip_value=self.clip_value)


class BinaryLinear(Module):
    """Fully connected layer with binary ``{-1, +1}`` weights.

    Real-valued latent weights are kept for the optimiser; the forward pass
    binarises them, and gradients flow back through the straight-through
    estimator.  A real-valued bias is retained (its storage cost is small and
    it is absorbed by batch normalisation in the fused blocks).
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        weight = init.glorot_uniform(
            (out_features, in_features), fan_in=in_features, fan_out=out_features, rng=rng
        )
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        binary_weight = binarize(self.weight)
        output = inputs.matmul(binary_weight.transpose())
        if self.bias is not None:
            output = output + self.bias
        return output

    def memory_bytes(self) -> float:
        """Deployment size of the binarised layer in bytes (1 bit / weight)."""
        return binary_memory_bytes(self.weight.size, bias_count=0 if self.bias is None else self.bias.size)


class BinaryConv2d(Module):
    """2-D convolution with binary ``{-1, +1}`` weights."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int = 3,
        stride: int = 1,
        padding: int = 1,
        bias: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        fan_in = in_channels * kernel_size * kernel_size
        weight = init.he_normal(
            (out_channels, in_channels, kernel_size, kernel_size), fan_in=fan_in, rng=rng
        )
        self.weight = Parameter(weight, name="weight")
        self.bias = Parameter(np.zeros(out_channels), name="bias") if bias else None

    def forward(self, inputs: Tensor) -> Tensor:
        binary_weight = binarize(self.weight)
        return F.conv2d(inputs, binary_weight, self.bias, stride=self.stride, padding=self.padding)

    def memory_bytes(self) -> float:
        """Deployment size of the binarised layer in bytes (1 bit / weight)."""
        return binary_memory_bytes(self.weight.size, bias_count=0 if self.bias is None else self.bias.size)


def binary_memory_bytes(binary_weight_count: int, bias_count: int = 0, float_bytes: int = 4) -> float:
    """Bytes needed to store a binarised layer on an end device.

    Binary weights cost one bit each; any real-valued parameters (biases,
    batch-norm scale/shift) cost ``float_bytes`` each.
    """
    return binary_weight_count / 8.0 + bias_count * float_bytes
