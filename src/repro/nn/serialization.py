"""Save and load module state to ``.npz`` archives."""

from __future__ import annotations

import os
from typing import Dict, Union

import numpy as np

from .layers import Module

__all__ = ["save_state", "load_state", "save_module", "load_module"]

PathLike = Union[str, "os.PathLike[str]"]


def save_state(state: Dict[str, np.ndarray], path: PathLike) -> None:
    """Write a flat state dictionary to ``path`` (``.npz`` format)."""
    np.savez(path, **{key: np.asarray(value) for key, value in state.items()})


def load_state(path: PathLike) -> Dict[str, np.ndarray]:
    """Read a state dictionary previously written by :func:`save_state`."""
    with np.load(path, allow_pickle=False) as archive:
        return {key: archive[key] for key in archive.files}


def save_module(module: Module, path: PathLike) -> None:
    """Serialise a module's parameters and buffers."""
    save_state(module.state_dict(), path)


def load_module(module: Module, path: PathLike) -> Module:
    """Restore a module's parameters and buffers in place and return it."""
    module.load_state_dict(load_state(path))
    return module
