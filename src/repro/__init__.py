"""Reproduction of *Distributed Deep Neural Networks over the Cloud, the Edge
and End Devices* (Teerapittayanon, McDanel, Kung — ICDCS 2017).

Subpackages
-----------
``repro.nn``
    A self-contained NumPy deep-learning substrate (autodiff, binary NN
    layers, fused eBNN blocks, Adam, data utilities).
``repro.datasets``
    Synthetic multi-view multi-camera dataset matching the paper's evaluation
    data in structure and statistics.
``repro.core``
    The DDNN framework: multi-exit model, aggregation schemes, joint
    training, entropy-threshold inference and the communication cost model.
``repro.hierarchy``
    A distributed computing hierarchy simulator (devices, edge, cloud,
    network links, fault injection) used to run partitioned DDNN inference.
``repro.baselines``
    Individual per-device models and the cloud-only raw-offload baseline.
``repro.experiments``
    One module per table/figure of the paper's evaluation section.
"""

from . import core, datasets, nn

__version__ = "1.0.0"

__all__ = ["nn", "datasets", "core", "__version__"]
