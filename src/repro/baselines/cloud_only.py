"""Cloud-only baseline: offload raw sensor data and run the whole DNN remotely.

This is configuration (a) of the paper's Figure 2 and the communication
baseline of Section IV-H: every device transmits its raw 32x32 RGB view
(3072 bytes) to the cloud, where a conventional (non-distributed) DNN fuses
the views and classifies.  The DDNN reproduction implements it with the same
building blocks as the DDNN itself so accuracy comparisons are apples to
apples: per-device ConvP feature extractors, concatenation fusion and a cloud
stack — but trained and evaluated with a single (cloud) exit and with the
communication cost of raw-input offloading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.communication import raw_offload_bytes
from ..core.config import DDNNConfig, DDNNTopology, TrainingConfig
from ..core.ddnn import DDNN, build_ddnn
from ..core.training import DDNNTrainer
from ..datasets.mvmc import MVMCDataset
from ..nn.metrics import accuracy
from ..nn.tensor import no_grad

__all__ = ["CloudOnlyBaseline", "train_cloud_only_baseline"]


@dataclass
class CloudOnlyResult:
    """Accuracy and communication of the cloud-only baseline."""

    accuracy: float
    bytes_per_device_per_sample: float


class CloudOnlyBaseline:
    """A standard DNN in the cloud fed with raw offloaded sensor input."""

    def __init__(
        self,
        num_devices: int = 6,
        num_classes: int = 3,
        input_channels: int = 3,
        input_size: int = 32,
        device_filters: int = 4,
        cloud_filters: int = 16,
        cloud_conv_blocks: int = 2,
        cloud_hidden_units: int = 64,
        seed: int = 0,
    ) -> None:
        config = DDNNConfig(
            num_devices=num_devices,
            num_classes=num_classes,
            input_channels=input_channels,
            input_size=input_size,
            device_filters=device_filters,
            cloud_filters=cloud_filters,
            cloud_conv_blocks=cloud_conv_blocks,
            cloud_hidden_units=cloud_hidden_units,
            cloud_aggregation="CC",
            topology=DDNNTopology.from_name("cloud_only"),
            seed=seed,
        )
        self.model: DDNN = build_ddnn(config)
        self.config = config

    def fit(self, train_set: MVMCDataset, config: Optional[TrainingConfig] = None) -> "CloudOnlyBaseline":
        """Train the cloud DNN end-to-end (single exit)."""
        trainer = DDNNTrainer(self.model, config)
        trainer.fit(train_set)
        return self

    def predict(self, dataset: MVMCDataset, batch_size: int = 64) -> np.ndarray:
        """Predictions of the cloud exit for every sample."""
        self.model.eval()
        predictions = []
        with no_grad():
            for start in range(0, len(dataset), batch_size):
                output = self.model(dataset.images[start : start + batch_size])
                predictions.append(output.final_logits.data.argmax(axis=1))
        return np.concatenate(predictions)

    def evaluate(self, dataset: MVMCDataset) -> CloudOnlyResult:
        """Accuracy plus the per-device raw-offload communication cost."""
        predictions = self.predict(dataset)
        return CloudOnlyResult(
            accuracy=accuracy(predictions, dataset.labels),
            bytes_per_device_per_sample=self.bytes_per_device_per_sample(),
        )

    def bytes_per_device_per_sample(self) -> float:
        """Raw input size each device ships to the cloud for every sample."""
        return raw_offload_bytes(self.config.input_channels, self.config.input_size)


def train_cloud_only_baseline(
    train_set: MVMCDataset,
    training: Optional[TrainingConfig] = None,
    **architecture_overrides,
) -> CloudOnlyBaseline:
    """Convenience constructor: build and train the cloud-only baseline."""
    baseline = CloudOnlyBaseline(
        num_devices=train_set.num_devices,
        num_classes=train_set.num_classes,
        input_channels=train_set.image_shape[0],
        input_size=train_set.image_shape[1],
        **architecture_overrides,
    )
    baseline.fit(train_set, training)
    return baseline
