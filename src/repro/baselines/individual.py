"""Individual per-device baseline models (paper Section III-F / IV-E).

"Individual accuracy" in the paper is the accuracy of an NN model trained
*separately* for a single end device, consisting of a ConvP block followed by
an FC block (the same blocks a DDNN device branch uses), classifying all of
that device's samples without any help from the local or cloud exits.

These baselines quantify what a device could do on its own and are the
reference the DDNN's fused local/cloud accuracies are compared against in
Figures 8 and 10.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.config import TrainingConfig
from ..datasets.mvmc import MVMCDataset
from ..nn.blocks import ConvPBlock, FCBlock
from ..nn.layers import Module
from ..nn.losses import softmax_cross_entropy
from ..nn.metrics import accuracy
from ..nn.optim import Adam
from ..nn.tensor import Tensor, no_grad

__all__ = ["IndividualDeviceModel", "train_individual_model", "individual_accuracies"]


class IndividualDeviceModel(Module):
    """A standalone single-device classifier: ConvP block + FC block."""

    def __init__(
        self,
        in_channels: int = 3,
        filters: int = 4,
        input_size: int = 32,
        num_classes: int = 3,
        binary: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__()
        rng = np.random.default_rng(seed)
        self.features = ConvPBlock(in_channels, filters, binary=binary, rng=rng)
        self.output_size = self.features.output_spatial_size(input_size)
        self.classifier = FCBlock(
            filters * self.output_size**2, num_classes, binary=binary, final=True, rng=rng
        )
        self.num_classes = num_classes

    def forward(self, inputs: Tensor) -> Tensor:
        return self.classifier(self.features(inputs).flatten(start_dim=1))

    def predict(self, views: np.ndarray, batch_size: int = 128) -> np.ndarray:
        """Predicted class indices for a batch of views."""
        self.eval()
        predictions = []
        with no_grad():
            for start in range(0, len(views), batch_size):
                logits = self(Tensor(views[start : start + batch_size]))
                predictions.append(logits.data.argmax(axis=1))
        return np.concatenate(predictions) if predictions else np.zeros(0, dtype=np.int64)


def train_individual_model(
    dataset: MVMCDataset,
    device_index: int,
    filters: int = 4,
    config: Optional[TrainingConfig] = None,
    binary: bool = True,
) -> IndividualDeviceModel:
    """Train a standalone model for one device.

    Following the paper, only samples in which the object is present in that
    device's frame carry that device's class label; blank frames (label -1)
    are excluded from this device's training set.
    """
    config = config if config is not None else TrainingConfig(epochs=50)
    views = dataset.device_views(device_index)
    labels = dataset.device_labels[:, device_index]
    present = labels >= 0
    views, labels = views[present], labels[present]
    if len(views) == 0:
        raise ValueError(f"device {device_index} has no training samples with the object present")

    model = IndividualDeviceModel(
        in_channels=dataset.image_shape[0],
        filters=filters,
        input_size=dataset.image_shape[1],
        num_classes=dataset.num_classes,
        binary=binary,
        seed=config.seed + device_index,
    )
    optimizer = Adam(model.parameters(), lr=config.learning_rate, betas=(config.beta1, config.beta2), eps=config.eps)
    rng = np.random.default_rng(config.seed + device_index)

    model.train()
    for _ in range(config.epochs):
        order = rng.permutation(len(views))
        for start in range(0, len(order), config.batch_size):
            batch = order[start : start + config.batch_size]
            logits = model(Tensor(views[batch]))
            loss = softmax_cross_entropy(logits, labels[batch])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
    return model


def individual_accuracies(
    train_set: MVMCDataset,
    test_set: MVMCDataset,
    filters: int = 4,
    config: Optional[TrainingConfig] = None,
    binary: bool = True,
    device_indices: Optional[List[int]] = None,
) -> Dict[int, float]:
    """Individual accuracy of each device, evaluated on the full test set.

    Note that evaluation uses *all* test samples (including ones where the
    object is not visible to the device), which is exactly why badly placed
    devices have low individual accuracy in the paper's Figure 8.
    """
    device_indices = (
        list(range(train_set.num_devices)) if device_indices is None else list(device_indices)
    )
    results: Dict[int, float] = {}
    for device_index in device_indices:
        model = train_individual_model(
            train_set, device_index, filters=filters, config=config, binary=binary
        )
        predictions = model.predict(test_set.device_views(device_index))
        results[device_index] = accuracy(predictions, test_set.labels)
    return results
