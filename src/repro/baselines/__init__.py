"""Baseline systems the paper compares DDNN against."""

from .cloud_only import CloudOnlyBaseline, train_cloud_only_baseline
from .individual import IndividualDeviceModel, individual_accuracies, train_individual_model

__all__ = [
    "IndividualDeviceModel",
    "train_individual_model",
    "individual_accuracies",
    "CloudOnlyBaseline",
    "train_cloud_only_baseline",
]
