"""Input transforms applied before feeding images to the DDNN."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = ["normalize", "denormalize", "random_flip", "add_gaussian_noise", "Standardizer"]


def normalize(images: np.ndarray, mean: float = 0.5, std: float = 0.5) -> np.ndarray:
    """Shift/scale images from [0, 1] into roughly [-1, 1]."""
    return (np.asarray(images, dtype=np.float64) - mean) / std


def denormalize(images: np.ndarray, mean: float = 0.5, std: float = 0.5) -> np.ndarray:
    """Inverse of :func:`normalize`."""
    return np.asarray(images, dtype=np.float64) * std + mean


def random_flip(
    images: np.ndarray, rng: np.random.Generator, probability: float = 0.5
) -> np.ndarray:
    """Randomly mirror each sample horizontally (per-sample decision).

    ``images`` may have shape ``(N, C, H, W)`` or ``(N, D, C, H, W)``; the
    flip is applied consistently across all device views of a sample so the
    multi-view geometry stays coherent.
    """
    images = np.asarray(images)
    flip_mask = rng.random(len(images)) < probability
    output = images.copy()
    output[flip_mask] = output[flip_mask][..., ::-1]
    return output


def add_gaussian_noise(
    images: np.ndarray, rng: np.random.Generator, std: float = 0.02
) -> np.ndarray:
    """Add small Gaussian noise (simple train-time augmentation)."""
    images = np.asarray(images, dtype=np.float64)
    return images + rng.normal(0.0, std, size=images.shape)


class Standardizer:
    """Per-channel standardisation fit on the training set.

    This is the classic substitute for dataset-wide mean/std normalisation;
    fitting on train data and applying to test data avoids leakage.
    """

    def __init__(self) -> None:
        self.mean: Optional[np.ndarray] = None
        self.std: Optional[np.ndarray] = None

    def fit(self, images: np.ndarray) -> "Standardizer":
        images = np.asarray(images, dtype=np.float64)
        channel_axis = images.ndim - 3
        reduce_axes = tuple(i for i in range(images.ndim) if i != channel_axis)
        self.mean = images.mean(axis=reduce_axes)
        self.std = images.std(axis=reduce_axes) + 1e-8
        return self

    def transform(self, images: np.ndarray) -> np.ndarray:
        if self.mean is None or self.std is None:
            raise RuntimeError("Standardizer must be fit before transform")
        images = np.asarray(images, dtype=np.float64)
        channel_axis = images.ndim - 3
        shape = [1] * images.ndim
        shape[channel_axis] = -1
        return (images - self.mean.reshape(shape)) / self.std.reshape(shape)

    def fit_transform(self, images: np.ndarray) -> np.ndarray:
        return self.fit(images).transform(images)
