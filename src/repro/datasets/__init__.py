"""Dataset substrates for the DDNN reproduction."""

from .mvmc import (
    DEFAULT_CLASS_PROBABILITIES,
    DEFAULT_DEVICE_PROFILES,
    DeviceProfile,
    MVMCDataset,
    MVMCSample,
    class_distribution_per_device,
    generate_mvmc,
    load_mvmc_splits,
)
from .shapes import (
    CLASS_NAMES,
    CLASS_TO_INDEX,
    IMAGE_SIZE,
    NOT_PRESENT_LABEL,
    ObjectInstance,
    blank_view,
    render_view,
    sample_object,
)
from .transforms import Standardizer, add_gaussian_noise, denormalize, normalize, random_flip

__all__ = [
    "DeviceProfile",
    "DEFAULT_DEVICE_PROFILES",
    "DEFAULT_CLASS_PROBABILITIES",
    "MVMCDataset",
    "MVMCSample",
    "generate_mvmc",
    "load_mvmc_splits",
    "class_distribution_per_device",
    "CLASS_NAMES",
    "CLASS_TO_INDEX",
    "IMAGE_SIZE",
    "NOT_PRESENT_LABEL",
    "ObjectInstance",
    "sample_object",
    "render_view",
    "blank_view",
    "normalize",
    "denormalize",
    "random_flip",
    "add_gaussian_noise",
    "Standardizer",
]
