"""Synthetic multi-view multi-camera (MVMC) dataset.

The DDNN paper evaluates on a dataset of 32x32 RGB crops of three object
categories (car, bus, person) captured simultaneously by six cameras placed
at different locations, with 680 training and 171 test samples.  Each sample
is one physical object; every device contributes either a view of that object
or a blank frame (label -1) if the object is outside its field of view.

The original data is no longer available, so this module generates a
synthetic dataset with the same structure and the statistical properties the
experiments rely on (see DESIGN.md for the substitution rationale):

* per-device view angles, so devices observe genuinely different projections;
* per-device camera quality (noise / blur / exposure), so individual device
  accuracies vary widely (paper Fig. 8 reports ~40% to ~70%);
* per-device, per-class visibility probabilities, so the number of samples in
  which each device sees the object is imbalanced (paper Fig. 6);
* a class-imbalanced label distribution (cars most frequent, buses least).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .shapes import (
    CLASS_NAMES,
    IMAGE_SIZE,
    NOT_PRESENT_LABEL,
    ObjectInstance,
    blank_view,
    render_view,
    sample_object,
)

__all__ = [
    "DeviceProfile",
    "DEFAULT_DEVICE_PROFILES",
    "DEFAULT_CLASS_PROBABILITIES",
    "MVMCSample",
    "MVMCDataset",
    "generate_mvmc",
    "load_mvmc_splits",
    "class_distribution_per_device",
]

#: Class prior used when sampling objects: cars are most common, buses least,
#: mirroring the imbalance visible in the paper's Figure 6.
DEFAULT_CLASS_PROBABILITIES = (0.45, 0.15, 0.40)  # car, bus, person


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of one end device (camera).

    Attributes
    ----------
    name:
        Human-readable device name.
    view_angle:
        Camera azimuth in radians.
    noise_level, blur, brightness:
        Camera-quality parameters passed to the renderer.  Worse values lower
        the device's individual accuracy.
    visibility:
        Per-class probability that an object of that class appears in this
        camera's frame.  When the object is not visible the device receives a
        blank frame and the per-device label -1.
    """

    name: str
    view_angle: float
    noise_level: float
    blur: float
    brightness: float
    visibility: Tuple[float, float, float]


def _default_profiles() -> Tuple[DeviceProfile, ...]:
    """Six devices with a wide spread of quality and visibility.

    Devices are ordered roughly from worst to best viewing conditions so the
    scaling experiment (Fig. 8) has a meaningful worst-to-best ordering to
    discover.
    """
    return (
        DeviceProfile("camera-1", view_angle=np.deg2rad(0), noise_level=0.16, blur=1.0,
                      brightness=0.70, visibility=(0.55, 0.60, 0.50)),
        DeviceProfile("camera-2", view_angle=np.deg2rad(60), noise_level=0.20, blur=1.0,
                      brightness=0.65, visibility=(0.45, 0.55, 0.45)),
        DeviceProfile("camera-3", view_angle=np.deg2rad(120), noise_level=0.12, blur=1.0,
                      brightness=0.85, visibility=(0.65, 0.70, 0.60)),
        DeviceProfile("camera-4", view_angle=np.deg2rad(180), noise_level=0.09, blur=0.0,
                      brightness=0.95, visibility=(0.75, 0.80, 0.70)),
        DeviceProfile("camera-5", view_angle=np.deg2rad(240), noise_level=0.07, blur=0.0,
                      brightness=1.00, visibility=(0.85, 0.85, 0.80)),
        DeviceProfile("camera-6", view_angle=np.deg2rad(300), noise_level=0.05, blur=0.0,
                      brightness=1.05, visibility=(0.95, 0.95, 0.90)),
    )


DEFAULT_DEVICE_PROFILES: Tuple[DeviceProfile, ...] = _default_profiles()


@dataclass
class MVMCSample:
    """One multi-view sample: all device views of a single physical object."""

    views: np.ndarray  # (num_devices, 3, H, W)
    label: int  # ground-truth class of the object
    device_labels: np.ndarray  # (num_devices,), class label or -1 if not present
    instance: Optional[ObjectInstance] = None

    @property
    def present(self) -> np.ndarray:
        """Boolean mask of devices in which the object is visible."""
        return self.device_labels != NOT_PRESENT_LABEL


class MVMCDataset:
    """In-memory multi-view multi-camera dataset.

    Attributes
    ----------
    images:
        Array of shape ``(N, num_devices, 3, H, W)`` with values in [0, 1].
    labels:
        Ground-truth class per sample, shape ``(N,)``.
    device_labels:
        Per-device labels, shape ``(N, num_devices)``; -1 marks frames in
        which the object is not present (blank frames).
    profiles:
        The device profiles used to generate the data.
    """

    def __init__(
        self,
        images: np.ndarray,
        labels: np.ndarray,
        device_labels: np.ndarray,
        profiles: Sequence[DeviceProfile] = DEFAULT_DEVICE_PROFILES,
    ) -> None:
        images = np.asarray(images, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        device_labels = np.asarray(device_labels, dtype=np.int64)
        if images.ndim != 5:
            raise ValueError(f"images must have shape (N, D, C, H, W), got {images.shape}")
        if len(images) != len(labels) or len(images) != len(device_labels):
            raise ValueError("images, labels and device_labels must be aligned")
        if device_labels.shape[1] != images.shape[1]:
            raise ValueError("device_labels second dimension must equal the number of devices")
        self.images = images
        self.labels = labels
        self.device_labels = device_labels
        self.profiles = tuple(profiles)

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.images)

    def __getitem__(self, index: int) -> MVMCSample:
        return MVMCSample(
            views=self.images[index],
            label=int(self.labels[index]),
            device_labels=self.device_labels[index],
        )

    @property
    def num_devices(self) -> int:
        return self.images.shape[1]

    @property
    def num_classes(self) -> int:
        return len(CLASS_NAMES)

    @property
    def image_shape(self) -> Tuple[int, int, int]:
        return tuple(self.images.shape[2:])

    def device_views(self, device_index: int) -> np.ndarray:
        """All views captured by one device, shape ``(N, 3, H, W)``."""
        return self.images[:, device_index]

    def presence(self) -> np.ndarray:
        """Boolean presence matrix of shape ``(N, num_devices)``."""
        return self.device_labels != NOT_PRESENT_LABEL

    def subset(self, indices: np.ndarray) -> "MVMCDataset":
        """Return a new dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return MVMCDataset(
            self.images[indices],
            self.labels[indices],
            self.device_labels[indices],
            profiles=self.profiles,
        )

    def select_devices(self, device_indices: Sequence[int]) -> "MVMCDataset":
        """Return a dataset containing only the chosen devices (in order)."""
        device_indices = list(device_indices)
        return MVMCDataset(
            self.images[:, device_indices],
            self.labels,
            self.device_labels[:, device_indices],
            profiles=tuple(self.profiles[i] for i in device_indices),
        )

    def with_failed_devices(self, failed: Sequence[int]) -> "MVMCDataset":
        """Simulate device failures by blanking out the failed devices' views.

        The failed devices transmit nothing useful: their views are replaced
        by blank frames and their per-device labels by -1.  The device count
        (and hence the trained model's input structure) is unchanged, which is
        exactly the paper's fault-tolerance scenario (Fig. 10).
        """
        failed_set = set(int(i) for i in failed)
        images = self.images.copy()
        device_labels = self.device_labels.copy()
        blank = blank_view(size=self.images.shape[-1])
        for device_index in failed_set:
            images[:, device_index] = blank
            device_labels[:, device_index] = NOT_PRESENT_LABEL
        return MVMCDataset(images, self.labels, device_labels, profiles=self.profiles)


def generate_mvmc(
    num_samples: int,
    profiles: Sequence[DeviceProfile] = DEFAULT_DEVICE_PROFILES,
    class_probabilities: Sequence[float] = DEFAULT_CLASS_PROBABILITIES,
    seed: int = 0,
    image_size: int = IMAGE_SIZE,
) -> MVMCDataset:
    """Generate a synthetic multi-view multi-camera dataset.

    Every sample corresponds to one object instance rendered by each device
    whose visibility draw succeeds; at least one device always sees the
    object (otherwise the sample would carry no information at all).
    """
    if num_samples <= 0:
        raise ValueError("num_samples must be positive")
    rng = np.random.default_rng(seed)
    class_probabilities = np.asarray(class_probabilities, dtype=float)
    class_probabilities = class_probabilities / class_probabilities.sum()

    num_devices = len(profiles)
    images = np.zeros((num_samples, num_devices, 3, image_size, image_size))
    labels = np.zeros(num_samples, dtype=np.int64)
    device_labels = np.full((num_samples, num_devices), NOT_PRESENT_LABEL, dtype=np.int64)

    for sample_index in range(num_samples):
        label = int(rng.choice(len(CLASS_NAMES), p=class_probabilities))
        instance = sample_object(label, rng)
        labels[sample_index] = label

        visible = np.array(
            [rng.random() < profile.visibility[label] for profile in profiles]
        )
        if not visible.any():
            # Guarantee at least one view; pick the device most likely to see it.
            best = int(np.argmax([profile.visibility[label] for profile in profiles]))
            visible[best] = True

        for device_index, profile in enumerate(profiles):
            if visible[device_index]:
                images[sample_index, device_index] = render_view(
                    instance,
                    profile.view_angle,
                    rng,
                    noise_level=profile.noise_level,
                    blur=profile.blur,
                    brightness=profile.brightness,
                    size=image_size,
                )
                device_labels[sample_index, device_index] = label
            else:
                images[sample_index, device_index] = blank_view(
                    rng=rng, noise_level=0.01, size=image_size
                )

    return MVMCDataset(images, labels, device_labels, profiles=profiles)


def load_mvmc_splits(
    train_samples: int = 680,
    test_samples: int = 171,
    profiles: Sequence[DeviceProfile] = DEFAULT_DEVICE_PROFILES,
    seed: int = 7,
    image_size: int = IMAGE_SIZE,
) -> Tuple[MVMCDataset, MVMCDataset]:
    """Generate the canonical train/test splits (defaults: 680 / 171 samples).

    Train and test samples are drawn from the same generative process with
    disjoint random streams, mirroring the paper's single-dataset split.
    """
    combined = generate_mvmc(
        train_samples + test_samples,
        profiles=profiles,
        class_probabilities=DEFAULT_CLASS_PROBABILITIES,
        seed=seed,
        image_size=image_size,
    )
    rng = np.random.default_rng(seed + 1)
    order = rng.permutation(len(combined))
    train = combined.subset(order[:train_samples])
    test = combined.subset(order[train_samples:])
    return train, test


def class_distribution_per_device(dataset: MVMCDataset) -> Dict[str, np.ndarray]:
    """Counts of person / bus / car / not-present per device (paper Fig. 6).

    Returns a mapping from category name (including ``"not-present"``) to an
    array of counts with one entry per device.
    """
    num_devices = dataset.num_devices
    counts: Dict[str, np.ndarray] = {
        name: np.zeros(num_devices, dtype=np.int64) for name in CLASS_NAMES
    }
    counts["not-present"] = np.zeros(num_devices, dtype=np.int64)
    for device_index in range(num_devices):
        labels = dataset.device_labels[:, device_index]
        for class_index, name in enumerate(CLASS_NAMES):
            counts[name][device_index] = int(np.sum(labels == class_index))
        counts["not-present"][device_index] = int(np.sum(labels == NOT_PRESENT_LABEL))
    return counts
