"""Procedural sprite renderers for the synthetic multi-view multi-camera dataset.

The original MVMC dataset (Roig et al. multi-camera data, repackaged by the
DDNN authors) is no longer downloadable, so the reproduction generates
synthetic 32x32 RGB views with the same structure: three object categories
(car, bus, person) observed simultaneously by six cameras from different
azimuths, with per-camera visibility and image-quality differences.

Each renderer draws a crude but parameterised silhouette of its category.
What matters for the DDNN experiments is not photo-realism but that:

* views of the same sample share object parameters (colour, size, pose) so
  cross-device feature aggregation genuinely helps;
* different azimuths produce different projections (aspect ratio, visible
  parts) so per-device features differ;
* the categories are separable by a small CNN but not trivially so once
  noise, blur and occlusion are applied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

__all__ = [
    "IMAGE_SIZE",
    "CLASS_NAMES",
    "CLASS_TO_INDEX",
    "NOT_PRESENT_LABEL",
    "ObjectInstance",
    "sample_object",
    "render_view",
    "blank_view",
]

IMAGE_SIZE = 32
CLASS_NAMES = ("car", "bus", "person")
CLASS_TO_INDEX = {name: index for index, name in enumerate(CLASS_NAMES)}
#: Label used in the original dataset for "object not present in this frame".
NOT_PRESENT_LABEL = -1


@dataclass
class ObjectInstance:
    """Camera-independent description of one physical object.

    The same instance is rendered by every camera (device) that sees it, so
    all attributes here are shared across views of a sample.
    """

    label: int
    base_color: np.ndarray  # (3,) in [0, 1]
    size: float  # relative size in [0.6, 1.0]
    elongation: float  # how stretched the object is along its main axis
    orientation: float  # azimuth of the object itself, radians
    texture_seed: int

    @property
    def class_name(self) -> str:
        return CLASS_NAMES[self.label]


# Category priors: (color palette mean, size range, elongation range)
_CATEGORY_PRIORS: Dict[str, Dict[str, tuple]] = {
    "car": {
        "color_mean": (0.65, 0.15, 0.15),
        "size": (0.55, 0.75),
        "elongation": (1.6, 2.2),
    },
    "bus": {
        "color_mean": (0.85, 0.75, 0.15),
        "size": (0.85, 1.0),
        "elongation": (2.4, 3.2),
    },
    "person": {
        "color_mean": (0.2, 0.3, 0.8),
        "size": (0.45, 0.7),
        "elongation": (0.35, 0.5),
    },
}


def sample_object(label: int, rng: np.random.Generator) -> ObjectInstance:
    """Draw a random object instance of the given class."""
    name = CLASS_NAMES[label]
    priors = _CATEGORY_PRIORS[name]
    color = np.clip(np.asarray(priors["color_mean"]) + rng.normal(0.0, 0.12, size=3), 0.05, 0.95)
    size = rng.uniform(*priors["size"])
    elongation = rng.uniform(*priors["elongation"])
    orientation = rng.uniform(0.0, 2.0 * np.pi)
    return ObjectInstance(
        label=label,
        base_color=color,
        size=size,
        elongation=elongation,
        orientation=orientation,
        texture_seed=int(rng.integers(0, 2**31 - 1)),
    )


def _coordinate_grid(size: int) -> tuple:
    ys, xs = np.mgrid[0:size, 0:size]
    # Normalised coordinates in [-1, 1]
    return (ys - size / 2 + 0.5) / (size / 2), (xs - size / 2 + 0.5) / (size / 2)


def _rotate(y: np.ndarray, x: np.ndarray, angle: float) -> tuple:
    cos_a, sin_a = np.cos(angle), np.sin(angle)
    return y * cos_a - x * sin_a, y * sin_a + x * cos_a


def _background(rng: np.random.Generator, size: int) -> np.ndarray:
    """Ground/sky style gradient background with mild per-pixel noise."""
    ys, _ = _coordinate_grid(size)
    sky = np.array([0.55, 0.65, 0.75])
    ground = np.array([0.35, 0.38, 0.33])
    mix = ((ys + 1.0) / 2.0)[..., None]
    image = (1.0 - mix) * sky + mix * ground
    image = image + rng.normal(0.0, 0.02, size=(size, size, 3))
    return image


def _body_mask(
    instance: ObjectInstance, view_angle: float, size: int
) -> np.ndarray:
    """Binary mask of the object silhouette as seen from ``view_angle``."""
    ys, xs = _coordinate_grid(size)
    # Relative angle between the object's main axis and the camera.
    relative = instance.orientation - view_angle
    # Projected elongation: a long vehicle seen head-on looks short.
    projected = 1.0 + (instance.elongation - 1.0) * np.abs(np.cos(relative))
    # People are vertical regardless of azimuth.
    if instance.class_name == "person":
        height = instance.size * 0.95
        width = instance.size * max(instance.elongation, 0.3)
        body = (np.abs(ys / height) ** 2 + np.abs(xs / width) ** 2) <= 1.0
        # Head: a smaller disc above the body.
        head = ((ys + height * 0.95) ** 2 + xs**2) <= (0.18 * instance.size) ** 2
        return body | head
    # Vehicles: rotated rectangle-ish super-ellipse plus a cabin bump.
    y_r, x_r = _rotate(ys, xs, relative * 0.25)
    half_height = instance.size * 0.45
    half_width = instance.size * 0.5 * projected / 2.0
    half_width = np.clip(half_width, 0.2, 0.95)
    body = (np.abs(y_r / half_height) ** 4 + np.abs(x_r / half_width) ** 4) <= 1.0
    if instance.class_name == "car":
        cabin = (np.abs((y_r + half_height * 0.6) / (half_height * 0.5)) ** 2
                 + np.abs(x_r / (half_width * 0.55)) ** 2) <= 1.0
        return body | cabin
    # Bus: taller body, add window band handled in colouring.
    tall = (np.abs((y_r + half_height * 0.4) / (half_height * 1.1)) ** 4
            + np.abs(x_r / half_width) ** 4) <= 1.0
    return body | tall


def render_view(
    instance: ObjectInstance,
    view_angle: float,
    rng: np.random.Generator,
    noise_level: float = 0.04,
    blur: float = 0.0,
    brightness: float = 1.0,
    size: int = IMAGE_SIZE,
) -> np.ndarray:
    """Render one camera's 32x32 RGB view of an object instance.

    Parameters
    ----------
    instance:
        The shared object description.
    view_angle:
        Camera azimuth in radians.
    rng:
        Random generator for noise (per-view).
    noise_level, blur, brightness:
        Camera-quality parameters; devices with worse cameras get more noise,
        more blur and poorer exposure, which spreads their individual
        accuracies as in the paper's Figure 8.

    Returns
    -------
    Image array of shape ``(3, size, size)`` with values in ``[0, 1]``.
    """
    image = _background(rng, size)
    mask = _body_mask(instance, view_angle, size)

    texture_rng = np.random.default_rng(instance.texture_seed)
    shading = 0.85 + 0.3 * texture_rng.random((size, size, 1))
    color = instance.base_color.reshape(1, 1, 3) * shading
    image = np.where(mask[..., None], color, image)

    # Class-specific detail: windows for buses, wheels for vehicles.
    ys, xs = _coordinate_grid(size)
    if instance.class_name == "bus":
        window_band = mask & (ys < -instance.size * 0.25) & (ys > -instance.size * 0.7)
        image[window_band] = np.array([0.75, 0.85, 0.95])
    if instance.class_name in ("car", "bus"):
        wheel_y = instance.size * 0.42
        for wheel_x in (-instance.size * 0.35, instance.size * 0.35):
            wheel = ((ys - wheel_y) ** 2 + (xs - wheel_x) ** 2) <= (0.1 * instance.size) ** 2
            image[wheel & mask] = 0.05

    image = image * brightness
    if blur > 0:
        image = _box_blur(image, radius=int(round(blur)))
    image = image + rng.normal(0.0, noise_level, size=image.shape)
    image = np.clip(image, 0.0, 1.0)
    # Channels-first layout used by the NN substrate.
    return image.transpose(2, 0, 1)


def blank_view(
    rng: Optional[np.random.Generator] = None,
    noise_level: float = 0.0,
    size: int = IMAGE_SIZE,
) -> np.ndarray:
    """An all-grey frame denoting that the object is not visible to a camera.

    The paper uses blank (grey) images with label -1 for devices in which a
    given object does not appear.
    """
    image = np.full((3, size, size), 0.5)
    if noise_level > 0 and rng is not None:
        image = np.clip(image + rng.normal(0.0, noise_level, size=image.shape), 0.0, 1.0)
    return image


def _box_blur(image: np.ndarray, radius: int) -> np.ndarray:
    """Simple box blur applied independently per channel."""
    if radius <= 0:
        return image
    kernel = 2 * radius + 1
    padded = np.pad(image, ((radius, radius), (radius, radius), (0, 0)), mode="edge")
    out = np.zeros_like(image)
    for dy in range(kernel):
        for dx in range(kernel):
            out += padded[dy : dy + image.shape[0], dx : dx + image.shape[1], :]
    return out / (kernel * kernel)
