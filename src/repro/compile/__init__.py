"""``repro.compile`` — fused/folded inference plans for the exit cascade.

The eager :mod:`repro.nn` stack is built for training: every op wraps its
result in an autograd :class:`~repro.nn.tensor.Tensor` and re-allocates its
intermediates.  This package provides the dedicated *inference* path the
serving stack runs on: an ahead-of-time compiler that takes a trained model
and emits plans executing on raw ``np.ndarray``s with

* BatchNorm folded into preceding conv/linear weights (running stats),
* conv+ReLU and BatchNorm+sign fusion,
* zero-copy strided-window im2col over pre-packed (pre-binarized) weight
  matrices, and
* a per-plan buffer arena reused across batches (re-planned on shape
  change), and
* selectable compute precision (``PRECISIONS``): exact ``"float64"``
  (default), tolerance-mode ``"float32"`` (fp32 weights/buffers/GEMMs,
  cache-blocked im2col), and ``"bitpacked"`` (uint64 XNOR+popcount GEMMs on
  the ±1 binary blocks, bit-identical to float64) — each enforced by
  :func:`verify_compiled` with its own documented guarantee.

Entry points: :func:`compile_plan` for a single module stack,
:func:`compile_ddnn` for a whole multi-exit DDNN, and :func:`verify_compiled`
for the numerical-equivalence guarantee against the eager path.  The
``compile=True`` knobs on :class:`~repro.core.cascade.ExitCascade`,
:class:`~repro.core.inference.StagedInferenceEngine`,
:class:`~repro.hierarchy.runtime.HierarchyRuntime` and
:class:`~repro.serving.server.DDNNServer` route their forwards through this
package.
"""

from .cache import compiled_plan_for, invalidate_plan
from .ddnn import (
    CompiledBranch,
    CompiledDDNN,
    CompiledDDNNOutput,
    CompiledTier,
    compile_aggregator,
    compile_ddnn,
    routing_agreement,
    verify_compiled,
)
from .ops import Arena, CompileError, PRECISIONS, precision_dtype
from .plan import CompiledPlan, OpTiming, compile_plan, flatten_modules

__all__ = [
    "Arena",
    "CompileError",
    "CompiledPlan",
    "OpTiming",
    "PRECISIONS",
    "precision_dtype",
    "compile_plan",
    "flatten_modules",
    "CompiledBranch",
    "CompiledTier",
    "CompiledDDNN",
    "CompiledDDNNOutput",
    "compile_aggregator",
    "compile_ddnn",
    "compiled_plan_for",
    "invalidate_plan",
    "routing_agreement",
    "verify_compiled",
]
