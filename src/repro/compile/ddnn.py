"""Compile a whole :class:`~repro.core.ddnn.DDNN` into raw-array plans.

:func:`compile_ddnn` mirrors the eager model structurally — per-device
branches, aggregators, optional edge tier, cloud tier — but every NN section
becomes a :class:`~repro.compile.plan.CompiledPlan` and every aggregator a
plain function over ``np.ndarray``s, so a full multi-exit forward pass never
touches the autograd :class:`~repro.nn.tensor.Tensor` machinery.

The sub-plans (``device_branches``, ``edge_tiers``, ``cloud``) are exposed
individually so the hierarchy simulator can hand each node its own compiled
section, and :func:`verify_compiled` provides the numerical-equivalence
guarantee against the eager path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..core.aggregation import (
    Aggregator,
    AveragePoolAggregator,
    ConcatAggregator,
    MaxPoolAggregator,
)
from ..core.ddnn import DDNN, DeviceBranch, _UpperTier
from ..nn.layers import Flatten
from ..nn.tensor import Tensor, no_grad
from .ops import CompileError
from .plan import CompiledPlan

__all__ = [
    "CompiledAggregator",
    "CompiledBranch",
    "CompiledTier",
    "CompiledDDNNOutput",
    "CompiledDDNN",
    "compile_ddnn",
    "compile_aggregator",
    "verify_compiled",
]

ViewsLike = Union[np.ndarray, Sequence[np.ndarray], Sequence[Tensor]]

#: A compiled aggregator: list of same-shaped arrays -> fused array.
CompiledAggregator = Callable[[List[np.ndarray]], np.ndarray]


def compile_aggregator(aggregator: Aggregator) -> CompiledAggregator:
    """Compile an aggregation scheme into a plain-array function.

    Each compiled form replays the eager computation order exactly
    (stack+max for MP, sequential sum for AP, concatenate+projection for CC)
    so fused outputs are bit-identical to the eager aggregators.
    """
    if isinstance(aggregator, MaxPoolAggregator):

        def run_max(arrays: List[np.ndarray]) -> np.ndarray:
            if len(arrays) == 1:
                return arrays[0]
            return np.stack(arrays, axis=0).max(axis=0)

        return run_max

    if isinstance(aggregator, AveragePoolAggregator):

        def run_avg(arrays: List[np.ndarray]) -> np.ndarray:
            if len(arrays) == 1:
                return arrays[0]
            total = arrays[0]
            for array in arrays[1:]:
                total = total + array
            return total * (1.0 / len(arrays))

        return run_avg

    if isinstance(aggregator, ConcatAggregator):
        projection = aggregator.projection
        weight_t = None if projection is None else projection.weight.data.copy().transpose()
        bias = (
            None
            if projection is None or projection.bias is None
            else projection.bias.data.copy()
        )

        def run_concat(arrays: List[np.ndarray]) -> np.ndarray:
            combined = np.concatenate(arrays, axis=1)
            if weight_t is not None:
                combined = combined @ weight_t
                if bias is not None:
                    combined = combined + bias
            return combined

        return run_concat

    raise CompileError(f"cannot compile aggregator of type {type(aggregator).__name__}")


class CompiledBranch:
    """A device branch: compiled feature extractor + exit classifier."""

    def __init__(self, branch: DeviceBranch) -> None:
        self.features = CompiledPlan(branch.features, name="device-features")
        self.classify = CompiledPlan([Flatten(), branch.classifier], name="device-classifier")

    def __call__(self, view: np.ndarray):
        feature_map = self.features(view)
        return feature_map, self.classify(feature_map)


class CompiledTier:
    """An edge or cloud section: compiled ConvP stack + FC head."""

    def __init__(self, tier: _UpperTier, name: str = "tier") -> None:
        self.features = CompiledPlan(tier.features, name=f"{name}-features")
        head = [Flatten()]
        if tier.hidden is not None:
            head.append(tier.hidden)
        head.append(tier.classifier)
        self.head = CompiledPlan(head, name=f"{name}-head")

    def __call__(self, aggregated: np.ndarray):
        feature_map = self.features(aggregated)
        return feature_map, self.head(feature_map)


@dataclass
class CompiledDDNNOutput:
    """All exit and intermediate outputs of one compiled forward pass.

    Mirrors :class:`~repro.core.ddnn.DDNNOutput` but holds raw arrays; the
    arrays are views into plan buffers, valid until the next forward call.
    """

    exit_logits: List[np.ndarray]
    exit_names: List[str]
    device_scores: List[np.ndarray] = field(default_factory=list)
    device_features: List[np.ndarray] = field(default_factory=list)
    edge_features: List[np.ndarray] = field(default_factory=list)

    def logits_by_name(self, name: str) -> np.ndarray:
        try:
            index = self.exit_names.index(name)
        except ValueError as error:
            raise KeyError(f"no exit named '{name}' (have {self.exit_names})") from error
        return self.exit_logits[index]

    @property
    def final_logits(self) -> np.ndarray:
        return self.exit_logits[-1]


class CompiledDDNN:
    """Inference-only compiled counterpart of a trained :class:`DDNN`.

    Weights are snapshotted at compile time; recompile after (re)training.
    Plans re-build automatically when the batch shape changes and reuse
    their buffer arenas otherwise.
    """

    def __init__(self, model: DDNN) -> None:
        self.num_devices = model.config.num_devices
        self.exit_names = list(model.exit_names)
        self.has_local_exit = model.has_local_exit
        self.has_edge = model.has_edge

        self.device_branches = [CompiledBranch(branch) for branch in model.device_branches]
        self.local_aggregator: Optional[CompiledAggregator] = (
            compile_aggregator(model.local_aggregator) if model.has_local_exit else None
        )

        self.edge_aggregators: List[CompiledAggregator] = []
        self.edge_tiers: List[CompiledTier] = []
        self.edge_device_groups: List[List[int]] = []
        self.edge_exit_aggregator: Optional[CompiledAggregator] = None
        if model.has_edge:
            for aggregator, edge in zip(model._edge_aggregators, model.edge_models):
                self.edge_aggregators.append(compile_aggregator(aggregator))
                self.edge_tiers.append(CompiledTier(edge, name="edge"))
            self.edge_device_groups = [list(group) for group in model.edge_device_groups]
            self.edge_exit_aggregator = compile_aggregator(model.edge_exit_aggregator)

        self.cloud_aggregator = compile_aggregator(model.cloud_aggregator)
        self.cloud = CompiledTier(model.cloud, name="cloud")

    # -- operator timing hook ------------------------------------------- #
    def plans(self) -> List[CompiledPlan]:
        """Every :class:`CompiledPlan` in the model, in forward order."""
        found: List[CompiledPlan] = []
        for branch in self.device_branches:
            found.extend([branch.features, branch.classify])
        for tier in self.edge_tiers:
            found.extend([tier.features, tier.head])
        found.extend([self.cloud.features, self.cloud.head])
        return found

    def enable_timing(self) -> None:
        """Accumulate per-op wall time on every plan (aggregators are untimed)."""
        for plan in self.plans():
            plan.enable_timing()

    def disable_timing(self) -> None:
        for plan in self.plans():
            plan.disable_timing()

    def reset_timing(self) -> None:
        for plan in self.plans():
            plan.reset_timing()

    @property
    def total_time_s(self) -> float:
        """Total accumulated op wall time across every plan."""
        return sum(plan.total_time_s for plan in self.plans())

    def op_timings(self):
        """Per-op accumulated timings across every plan, in forward order."""
        timings = []
        for plan in self.plans():
            timings.extend(plan.op_timings())
        return timings

    # ------------------------------------------------------------------ #
    def _split_views(self, views: ViewsLike) -> List[np.ndarray]:
        if isinstance(views, (list, tuple)):
            arrays = [
                np.asarray(v.data if isinstance(v, Tensor) else v, dtype=np.float64)
                for v in views
            ]
        else:
            array = np.asarray(views, dtype=np.float64)
            if array.ndim != 5:
                raise ValueError(f"expected views of shape (N, D, C, H, W), got {array.shape}")
            arrays = [array[:, index] for index in range(array.shape[1])]
        if len(arrays) != self.num_devices:
            raise ValueError(
                f"model has {self.num_devices} devices but received "
                f"{len(arrays)} view streams"
            )
        return arrays

    def forward(self, views: ViewsLike) -> CompiledDDNNOutput:
        """Compute every exit's logits for a multi-view batch, autograd-free."""
        device_inputs = self._split_views(views)

        device_features: List[np.ndarray] = []
        device_scores: List[np.ndarray] = []
        for branch, device_input in zip(self.device_branches, device_inputs):
            feature_map, scores = branch(device_input)
            device_features.append(feature_map)
            device_scores.append(scores)

        exit_logits: List[np.ndarray] = []
        exit_names: List[str] = []

        if self.has_local_exit:
            exit_logits.append(self.local_aggregator(device_scores))
            exit_names.append("local")

        edge_features: List[np.ndarray] = []
        if self.has_edge:
            edge_scores: List[np.ndarray] = []
            for aggregator, tier, group in zip(
                self.edge_aggregators, self.edge_tiers, self.edge_device_groups
            ):
                aggregated = aggregator([device_features[i] for i in group])
                feature_map, logits = tier(aggregated)
                edge_features.append(feature_map)
                edge_scores.append(logits)
            if len(edge_scores) == 1:
                edge_logits = edge_scores[0]
            else:
                edge_logits = self.edge_exit_aggregator(edge_scores)
            exit_logits.append(edge_logits)
            exit_names.append("edge")
            cloud_sources = edge_features
        else:
            cloud_sources = device_features

        aggregated = self.cloud_aggregator(cloud_sources)
        _, cloud_logits = self.cloud(aggregated)
        exit_logits.append(cloud_logits)
        exit_names.append("cloud")

        return CompiledDDNNOutput(
            exit_logits=exit_logits,
            exit_names=exit_names,
            device_scores=device_scores,
            device_features=device_features,
            edge_features=edge_features,
        )

    __call__ = forward


def compile_ddnn(model: DDNN) -> CompiledDDNN:
    """Compile a trained DDNN into an inference-only :class:`CompiledDDNN`."""
    return CompiledDDNN(model)


def verify_compiled(
    model: DDNN,
    compiled: CompiledDDNN,
    views: np.ndarray,
    rtol: float = 1e-5,
    atol: float = 1e-6,
) -> float:
    """Assert compiled and eager exit logits agree; return the max abs diff.

    This is the numerical-equivalence guarantee behind the ``compile=True``
    knobs: per-exit logits must agree within float32-level tolerance (BN
    folding re-associates arithmetic, so bitwise equality is not expected at
    folded exits).  Raises :class:`AssertionError` on divergence.
    """
    model.eval()
    with no_grad():
        eager = model(views)
    fast = compiled(views)
    worst = 0.0
    for name, eager_logits, fast_logits in zip(
        eager.exit_names, eager.exit_logits, fast.exit_logits
    ):
        eager_data = eager_logits.data
        np.testing.assert_allclose(
            fast_logits,
            eager_data,
            rtol=rtol,
            atol=atol,
            err_msg=f"compiled '{name}' exit logits diverged from eager",
        )
        diff = float(np.max(np.abs(fast_logits - eager_data))) if eager_data.size else 0.0
        worst = max(worst, diff)
    return worst
