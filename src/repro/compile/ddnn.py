"""Compile a whole :class:`~repro.core.ddnn.DDNN` into raw-array plans.

:func:`compile_ddnn` mirrors the eager model structurally — per-device
branches, aggregators, optional edge tier, cloud tier — but every NN section
becomes a :class:`~repro.compile.plan.CompiledPlan` and every aggregator a
plain function over ``np.ndarray``s, so a full multi-exit forward pass never
touches the autograd :class:`~repro.nn.tensor.Tensor` machinery.

The sub-plans (``device_branches``, ``edge_tiers``, ``cloud``) are exposed
individually so the hierarchy simulator can hand each node its own compiled
section, and :func:`verify_compiled` provides the numerical-equivalence
guarantee against the eager path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from ..core.aggregation import (
    Aggregator,
    AveragePoolAggregator,
    ConcatAggregator,
    MaxPoolAggregator,
)
from ..core.ddnn import DDNN, DeviceBranch, _UpperTier
from ..core.exits import normalized_entropy, softmax_probabilities
from ..nn.layers import Flatten
from ..nn.tensor import Tensor, no_grad
from .ops import CompileError, PRECISIONS, precision_dtype
from .plan import CompiledPlan

__all__ = [
    "CompiledAggregator",
    "CompiledBranch",
    "CompiledTier",
    "CompiledDDNNOutput",
    "CompiledDDNN",
    "compile_ddnn",
    "compile_aggregator",
    "routing_agreement",
    "verify_compiled",
]

ViewsLike = Union[np.ndarray, Sequence[np.ndarray], Sequence[Tensor]]

#: A compiled aggregator: list of same-shaped arrays -> fused array.
CompiledAggregator = Callable[[List[np.ndarray]], np.ndarray]


def compile_aggregator(aggregator: Aggregator) -> CompiledAggregator:
    """Compile an aggregation scheme into a plain-array function.

    Each compiled form replays the eager computation order exactly
    (stack+max for MP, sequential sum for AP, concatenate+projection for CC)
    so fused outputs are bit-identical to the eager aggregators.
    """
    if isinstance(aggregator, MaxPoolAggregator):

        def run_max(arrays: List[np.ndarray]) -> np.ndarray:
            if len(arrays) == 1:
                return arrays[0]
            return np.stack(arrays, axis=0).max(axis=0)

        return run_max

    if isinstance(aggregator, AveragePoolAggregator):

        def run_avg(arrays: List[np.ndarray]) -> np.ndarray:
            if len(arrays) == 1:
                return arrays[0]
            total = arrays[0]
            for array in arrays[1:]:
                total = total + array
            return total * (1.0 / len(arrays))

        return run_avg

    if isinstance(aggregator, ConcatAggregator):
        projection = aggregator.projection
        weight_t = None if projection is None else projection.weight.data.copy().transpose()
        bias = (
            None
            if projection is None or projection.bias is None
            else projection.bias.data.copy()
        )

        def run_concat(arrays: List[np.ndarray]) -> np.ndarray:
            combined = np.concatenate(arrays, axis=1)
            if weight_t is not None:
                combined = combined @ weight_t
                if bias is not None:
                    combined = combined + bias
            return combined

        return run_concat

    raise CompileError(f"cannot compile aggregator of type {type(aggregator).__name__}")


def _aggregator_preserves_sign(aggregator: Aggregator) -> bool:
    """Whether ±1 inputs provably stay ±1 through an aggregation scheme.

    Max over ±1 values is ±1; a pure concatenation only moves values; an
    average (or a concat projection's GEMM) produces arbitrary floats.
    This is the cross-plan link of the sign-propagation chain that feeds
    ``input_signed`` into downstream tiers for the bitpacked kernels.
    """
    if isinstance(aggregator, MaxPoolAggregator):
        return True
    if isinstance(aggregator, ConcatAggregator):
        return aggregator.projection is None
    return False


class CompiledBranch:
    """A device branch: compiled feature extractor + exit classifier."""

    def __init__(self, branch: DeviceBranch, precision: str = "float64") -> None:
        self.features = CompiledPlan(
            branch.features, name="device-features", precision=precision
        )
        self.classify = CompiledPlan(
            [Flatten(), branch.classifier],
            name="device-classifier",
            precision=precision,
            input_signed=self.features.output_signed,
        )

    @property
    def output_signed(self) -> bool:
        return self.features.output_signed

    def __call__(self, view: np.ndarray):
        feature_map = self.features(view)
        return feature_map, self.classify(feature_map)


class CompiledTier:
    """An edge or cloud section: compiled ConvP stack + FC head."""

    def __init__(
        self,
        tier: _UpperTier,
        name: str = "tier",
        precision: str = "float64",
        input_signed: bool = False,
    ) -> None:
        self.features = CompiledPlan(
            tier.features,
            name=f"{name}-features",
            precision=precision,
            input_signed=input_signed,
        )
        head = [Flatten()]
        if tier.hidden is not None:
            head.append(tier.hidden)
        head.append(tier.classifier)
        self.head = CompiledPlan(
            head,
            name=f"{name}-head",
            precision=precision,
            input_signed=self.features.output_signed,
        )

    @property
    def output_signed(self) -> bool:
        return self.features.output_signed

    def __call__(self, aggregated: np.ndarray):
        feature_map = self.features(aggregated)
        return feature_map, self.head(feature_map)


@dataclass
class CompiledDDNNOutput:
    """All exit and intermediate outputs of one compiled forward pass.

    Mirrors :class:`~repro.core.ddnn.DDNNOutput` but holds raw arrays; the
    arrays are views into plan buffers, valid until the next forward call.
    """

    exit_logits: List[np.ndarray]
    exit_names: List[str]
    device_scores: List[np.ndarray] = field(default_factory=list)
    device_features: List[np.ndarray] = field(default_factory=list)
    edge_features: List[np.ndarray] = field(default_factory=list)

    def logits_by_name(self, name: str) -> np.ndarray:
        try:
            index = self.exit_names.index(name)
        except ValueError as error:
            raise KeyError(f"no exit named '{name}' (have {self.exit_names})") from error
        return self.exit_logits[index]

    @property
    def final_logits(self) -> np.ndarray:
        return self.exit_logits[-1]


class CompiledDDNN:
    """Inference-only compiled counterpart of a trained :class:`DDNN`.

    Weights are snapshotted at compile time; recompile after (re)training.
    Plans re-build automatically when the batch shape changes and reuse
    their buffer arenas otherwise.
    """

    def __init__(self, model: DDNN, precision: str = "float64") -> None:
        if precision not in PRECISIONS:
            raise ValueError(
                f"unknown precision {precision!r}; expected one of {PRECISIONS}"
            )
        self.precision = precision
        self.dtype = precision_dtype(precision)
        self.num_devices = model.config.num_devices
        self.exit_names = list(model.exit_names)
        self.has_local_exit = model.has_local_exit
        self.has_edge = model.has_edge

        self.device_branches = [
            CompiledBranch(branch, precision=precision)
            for branch in model.device_branches
        ]
        self.local_aggregator: Optional[CompiledAggregator] = (
            compile_aggregator(model.local_aggregator) if model.has_local_exit else None
        )

        self.edge_aggregators: List[CompiledAggregator] = []
        self.edge_tiers: List[CompiledTier] = []
        self.edge_device_groups: List[List[int]] = []
        self.edge_exit_aggregator: Optional[CompiledAggregator] = None
        if model.has_edge:
            self.edge_device_groups = [list(group) for group in model.edge_device_groups]
            for aggregator, edge, group in zip(
                model._edge_aggregators, model.edge_models, self.edge_device_groups
            ):
                signed = _aggregator_preserves_sign(aggregator) and all(
                    self.device_branches[i].output_signed for i in group
                )
                self.edge_aggregators.append(compile_aggregator(aggregator))
                self.edge_tiers.append(
                    CompiledTier(edge, name="edge", precision=precision, input_signed=signed)
                )
            self.edge_exit_aggregator = compile_aggregator(model.edge_exit_aggregator)

        cloud_sources_signed = (
            all(tier.output_signed for tier in self.edge_tiers)
            if model.has_edge
            else all(branch.output_signed for branch in self.device_branches)
        )
        cloud_signed = (
            _aggregator_preserves_sign(model.cloud_aggregator) and cloud_sources_signed
        )
        self.cloud_aggregator = compile_aggregator(model.cloud_aggregator)
        self.cloud = CompiledTier(
            model.cloud, name="cloud", precision=precision, input_signed=cloud_signed
        )

    # -- operator timing hook ------------------------------------------- #
    def plans(self) -> List[CompiledPlan]:
        """Every :class:`CompiledPlan` in the model, in forward order."""
        found: List[CompiledPlan] = []
        for branch in self.device_branches:
            found.extend([branch.features, branch.classify])
        for tier in self.edge_tiers:
            found.extend([tier.features, tier.head])
        found.extend([self.cloud.features, self.cloud.head])
        return found

    def enable_timing(self) -> None:
        """Accumulate per-op wall time on every plan (aggregators are untimed)."""
        for plan in self.plans():
            plan.enable_timing()

    def disable_timing(self) -> None:
        for plan in self.plans():
            plan.disable_timing()

    def reset_timing(self) -> None:
        for plan in self.plans():
            plan.reset_timing()

    @property
    def total_time_s(self) -> float:
        """Total accumulated op wall time across every plan."""
        return sum(plan.total_time_s for plan in self.plans())

    def op_timings(self):
        """Per-op accumulated timings across every plan, in forward order."""
        timings = []
        for plan in self.plans():
            timings.extend(plan.op_timings())
        return timings

    # ------------------------------------------------------------------ #
    def _split_views(self, views: ViewsLike) -> List[np.ndarray]:
        if isinstance(views, (list, tuple)):
            arrays = [
                np.asarray(v.data if isinstance(v, Tensor) else v, dtype=self.dtype)
                for v in views
            ]
        else:
            array = np.asarray(views, dtype=self.dtype)
            if array.ndim != 5:
                raise ValueError(f"expected views of shape (N, D, C, H, W), got {array.shape}")
            arrays = [array[:, index] for index in range(array.shape[1])]
        if len(arrays) != self.num_devices:
            raise ValueError(
                f"model has {self.num_devices} devices but received "
                f"{len(arrays)} view streams"
            )
        return arrays

    def forward(self, views: ViewsLike) -> CompiledDDNNOutput:
        """Compute every exit's logits for a multi-view batch, autograd-free."""
        device_inputs = self._split_views(views)

        device_features: List[np.ndarray] = []
        device_scores: List[np.ndarray] = []
        for branch, device_input in zip(self.device_branches, device_inputs):
            feature_map, scores = branch(device_input)
            device_features.append(feature_map)
            device_scores.append(scores)

        exit_logits: List[np.ndarray] = []
        exit_names: List[str] = []

        if self.has_local_exit:
            exit_logits.append(self.local_aggregator(device_scores))
            exit_names.append("local")

        edge_features: List[np.ndarray] = []
        if self.has_edge:
            edge_scores: List[np.ndarray] = []
            for aggregator, tier, group in zip(
                self.edge_aggregators, self.edge_tiers, self.edge_device_groups
            ):
                aggregated = aggregator([device_features[i] for i in group])
                feature_map, logits = tier(aggregated)
                edge_features.append(feature_map)
                edge_scores.append(logits)
            if len(edge_scores) == 1:
                edge_logits = edge_scores[0]
            else:
                edge_logits = self.edge_exit_aggregator(edge_scores)
            exit_logits.append(edge_logits)
            exit_names.append("edge")
            cloud_sources = edge_features
        else:
            cloud_sources = device_features

        aggregated = self.cloud_aggregator(cloud_sources)
        _, cloud_logits = self.cloud(aggregated)
        exit_logits.append(cloud_logits)
        exit_names.append("cloud")

        return CompiledDDNNOutput(
            exit_logits=exit_logits,
            exit_names=exit_names,
            device_scores=device_scores,
            device_features=device_features,
            edge_features=edge_features,
        )

    __call__ = forward


def compile_ddnn(model: DDNN, precision: str = "float64") -> CompiledDDNN:
    """Compile a trained DDNN into an inference-only :class:`CompiledDDNN`.

    ``precision`` selects the compute mode — ``"float64"`` (exact default),
    ``"float32"`` (fp32 buffers/GEMMs at fp32 tolerance) or ``"bitpacked"``
    (XNOR+popcount kernels on the binary blocks, bit-identical to float64).
    """
    return CompiledDDNN(model, precision=precision)


#: Default per-mode allclose tolerances for :func:`verify_compiled`.
_VERIFY_TOLERANCES = {
    "float64": (1e-5, 1e-6),
    "float32": (1e-3, 1e-4),
    "bitpacked": (1e-5, 1e-6),
}

#: Uniform entropy thresholds swept by the fp32 routing-agreement check
#: when the caller does not pin specific cascade thresholds.
_AGREEMENT_THRESHOLD_GRID = (0.1, 0.25, 0.5, 0.75, 0.9)


def _routed_exits(
    exit_logits: Sequence[np.ndarray], thresholds: Sequence[float]
) -> np.ndarray:
    """Per-sample chosen exit index under the entropy-threshold cascade.

    Pure-numpy replay of the :class:`~repro.core.cascade.ExitCascade` rule:
    take the first exit whose normalized entropy is at or below its
    threshold; the deepest exit takes whatever remains.
    """
    num_exits = len(exit_logits)
    count = exit_logits[0].shape[0]
    chosen = np.full(count, num_exits - 1, dtype=np.int64)
    undecided = np.ones(count, dtype=bool)
    for index, threshold in enumerate(thresholds[: num_exits - 1]):
        logits = np.asarray(exit_logits[index], dtype=np.float64)
        entropy = normalized_entropy(softmax_probabilities(logits))
        taken = undecided & (entropy <= threshold)
        chosen[taken] = index
        undecided &= ~taken
    return chosen


def routing_agreement(
    reference_logits: Sequence[np.ndarray],
    candidate_logits: Sequence[np.ndarray],
    thresholds: Optional[Sequence[float]] = None,
) -> float:
    """Fraction of (sample, threshold) routing decisions that agree.

    With ``thresholds=None`` the agreement is pooled over a uniform grid of
    entropy thresholds, exercising several decision boundaries instead of
    one; pass explicit cascade thresholds to check a specific deployment.
    """
    num_exits = len(reference_logits)
    if num_exits != len(candidate_logits):
        raise ValueError("reference and candidate must have the same exits")
    grids = (
        [[value] * (num_exits - 1) for value in _AGREEMENT_THRESHOLD_GRID]
        if thresholds is None
        else [list(thresholds)]
    )
    agree = 0
    total = 0
    for grid in grids:
        reference = _routed_exits(reference_logits, grid)
        candidate = _routed_exits(candidate_logits, grid)
        agree += int(np.count_nonzero(reference == candidate))
        total += reference.shape[0]
    return agree / total if total else 1.0


def verify_compiled(
    model: DDNN,
    compiled: CompiledDDNN,
    views: np.ndarray,
    rtol: Optional[float] = None,
    atol: Optional[float] = None,
    precision: Optional[str] = None,
    thresholds: Optional[Sequence[float]] = None,
    min_routing_agreement: float = 0.999,
) -> float:
    """Assert the compiled model honors its precision-mode guarantee.

    Returns the max abs per-exit logit difference vs the eager forward.
    Per-mode guarantees (each raises :class:`AssertionError` on violation):

    * ``"float64"`` — the unchanged default: per-exit logits allclose to
      eager at float32-level tolerance (BN folding re-associates arithmetic,
      so bitwise equality is not expected at folded exits); routing is
      byte-identical by the cascade's construction on these logits.
    * ``"float32"`` — per-exit logits allclose to eager at fp32 tolerance,
      plus entropy-threshold routing agreement >= ``min_routing_agreement``
      (99.9% by default) against the fp64 logits, pooled over a threshold
      grid (or the explicit ``thresholds``).
    * ``"bitpacked"`` — every exit's logits must be *bit-identical* to a
      freshly compiled float64 model (±1 dot products are exact integers in
      either representation), and therefore inherit the float64 guarantee.
    """
    if precision is None:
        precision = getattr(compiled, "precision", "float64")
    elif precision != getattr(compiled, "precision", "float64"):
        raise ValueError(
            f"verify_compiled(precision={precision!r}) does not match the "
            f"compiled model's precision {compiled.precision!r}"
        )
    default_rtol, default_atol = _VERIFY_TOLERANCES[precision]
    rtol = default_rtol if rtol is None else rtol
    atol = default_atol if atol is None else atol

    model.eval()
    with no_grad():
        eager = model(views)
    fast = compiled(views)

    if precision == "bitpacked":
        reference = CompiledDDNN(model, precision="float64")(views)
        for name, reference_logits, fast_logits in zip(
            reference.exit_names, reference.exit_logits, fast.exit_logits
        ):
            np.testing.assert_array_equal(
                fast_logits,
                reference_logits,
                err_msg=(
                    f"bitpacked '{name}' exit logits are not bit-identical "
                    "to the float64 compiled path"
                ),
            )

    worst = 0.0
    for name, eager_logits, fast_logits in zip(
        eager.exit_names, eager.exit_logits, fast.exit_logits
    ):
        eager_data = eager_logits.data
        fast_data = np.asarray(fast_logits, dtype=np.float64)
        np.testing.assert_allclose(
            fast_data,
            eager_data,
            rtol=rtol,
            atol=atol,
            err_msg=f"compiled '{name}' exit logits diverged from eager",
        )
        diff = float(np.max(np.abs(fast_data - eager_data))) if eager_data.size else 0.0
        worst = max(worst, diff)

    if precision == "float32":
        agreement = routing_agreement(
            [logits.data for logits in eager.exit_logits],
            list(fast.exit_logits),
            thresholds=thresholds,
        )
        assert agreement >= min_routing_agreement, (
            f"float32 routing agreement {agreement:.6f} below the "
            f"{min_routing_agreement:.3%} floor vs the fp64 oracle"
        )
    return worst
