"""Raw-``ndarray`` inference kernels and the per-plan buffer arena.

These ops are what a :class:`~repro.compile.plan.CompiledPlan` executes: no
autograd graph, no per-op :class:`~repro.nn.tensor.Tensor` wrapping.  Each op
is *prepared* once per batch shape — binding its scratch and output buffers
from the plan's :class:`Arena` into a per-shape context — and then *run*
once per forward pass against that context, writing into the pre-allocated
buffers (``out=`` everywhere, in-place epilogues for bias/ReLU/sign).
Because the context carries all shape-dependent state, a plan alternating
between batch shapes (e.g. a server interleaving batch-1 shed forwards with
micro-batches) switches programs without re-preparing anything.

Numerical contract: where no folding applies, every op reproduces the eager
path bit for bit — the same im2col window ordering (via the shared
:func:`repro.nn.functional.sliding_windows` helper), the same operand
layouts handed to BLAS, and the same elementwise operation order as the
eager BatchNorm/activation code.  Folded ops (BatchNorm absorbed into conv
or linear weights) and the shift-add conv strategy are equivalent up to
float rounding — and remain *exact* on the binary interior blocks, whose
±1 arithmetic stays integral in float64 under any summation order.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.functional import conv_output_size, sliding_windows

__all__ = [
    "Arena",
    "CompileError",
    "ConvOp",
    "LinearOp",
    "MaxPoolOp",
    "AvgPoolOp",
    "BatchNormOp",
    "ReluOp",
    "SignOp",
    "SigmoidOp",
    "TanhOp",
    "FlattenOp",
]


class CompileError(RuntimeError):
    """A module or module sequence that the plan compiler cannot handle."""


class Arena:
    """Shape-keyed buffer pool owned by one compiled plan.

    Buffers are allocated when the plan first prepares a batch shape and
    reused across every subsequent forward pass with that shape.  The pool
    key includes the shape, so programs for several batch shapes coexist
    without re-allocating each other's buffers.  ``fill`` is applied only
    on allocation: padded scratch buffers keep their constant border (zeros
    for convolution, ``-inf`` for max pooling) because the ops only ever
    overwrite the interior.
    """

    def __init__(self) -> None:
        self._buffers: Dict[object, np.ndarray] = {}

    def buffer(
        self, key: object, shape: Tuple[int, ...], fill: Optional[float] = None
    ) -> np.ndarray:
        pool_key = (key, tuple(shape))
        buf = self._buffers.get(pool_key)
        if buf is None:
            buf = np.empty(shape, dtype=np.float64)
            if fill is not None:
                buf.fill(fill)
            self._buffers[pool_key] = buf
        return buf

    def bool_buffer(self, key: object, shape: Tuple[int, ...]) -> np.ndarray:
        pool_key = (key, tuple(shape), bool)
        buf = self._buffers.get(pool_key)
        if buf is None:
            buf = np.empty(shape, dtype=bool)
            self._buffers[pool_key] = buf
        return buf


def _window_position_slices(source: np.ndarray, kernel: int, stride: int) -> list:
    """One strided sub-view of ``source`` per kernel position.

    ``slices[ky * kernel + kx][n, c, oy, ox]`` is the value the window at
    output position ``(oy, ox)`` sees at kernel offset ``(ky, kx)``.  Pool
    ops accumulate max/sum over these views instead of reducing over the
    overlapping 6-D window view, which iterates with far better locality.
    """
    windows = sliding_windows(source, kernel, kernel, stride)
    return [
        windows[:, :, :, :, ky, kx] for ky in range(kernel) for kx in range(kernel)
    ]


def _sign_inplace(buf: np.ndarray, mask: np.ndarray) -> None:
    """In-place ``x -> {-1, +1}`` with the eager ``x >= 0 -> +1`` convention."""
    np.greater_equal(buf, 0.0, out=mask)
    np.multiply(mask, 2.0, out=buf)
    buf -= 1.0


class _Op:
    """One step of a compiled plan.

    ``prepare`` binds buffers for one batch shape into a context namespace
    (with at least ``output_shape``); ``run`` executes against a context.
    """

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        raise NotImplementedError

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        raise NotImplementedError


class ConvOp(_Op):
    """2-D convolution on pre-packed weight matrices.

    ``weight`` is the (possibly binarized and/or BatchNorm-folded) 4-D
    kernel.  Two execution strategies:

    * **shift-add** (stride 1, ``out_channels < in_channels``): one big
      batched GEMM of the per-position weight stack against the
      *unexpanded* padded image, followed by ``kh * kw`` strided
      accumulations — no im2col gather at all.  The gather/accumulate
      memory traffic is proportional to ``out_channels`` instead of
      ``in_channels``, and BLAS sees contiguous operands.
    * **im2col** otherwise: zero-copy strided window view gathered into a
      pre-allocated column buffer, then the same batched GEMM the eager
      path performs (bit-identical when nothing was folded).

    Bias add and the optional fused ReLU run in place on the output buffer.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
        relu: bool = False,
    ) -> None:
        self.weight = np.ascontiguousarray(weight, dtype=np.float64)
        self.out_channels, self.in_channels, self.kernel_h, self.kernel_w = self.weight.shape
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self.stride = int(stride)
        self.padding = int(padding)
        self.relu = bool(relu)
        self._shift_add = self.stride == 1 and self.out_channels < self.in_channels
        if self._shift_add:
            # (kh*kw*out, in): one (out, in) block per kernel position.
            self._weight_stack = np.ascontiguousarray(
                self.weight.transpose(2, 3, 0, 1).reshape(-1, self.in_channels)
            )
        else:
            self._weight_matrix = self.weight.reshape(self.out_channels, -1)

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        batch, channels, height, width = shape
        if channels != self.in_channels:
            raise CompileError(
                f"conv expects {self.in_channels} input channels, got {channels}"
            )
        out_h = conv_output_size(height, self.kernel_h, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_w, self.stride, self.padding)
        if out_h < 1 or out_w < 1:
            raise CompileError(f"conv output collapses to {out_h}x{out_w}")
        pad = self.padding
        padded_h, padded_w = height + 2 * pad, width + 2 * pad
        ctx = SimpleNamespace(output_shape=(batch, self.out_channels, out_h, out_w))
        ctx.padded = (
            arena.buffer((key, "pad"), (batch, channels, padded_h, padded_w), fill=0.0)
            if pad
            else None
        )
        ctx.out = arena.buffer((key, "out"), (batch, self.out_channels, out_h * out_w))
        ctx.out4 = ctx.out.reshape(batch, self.out_channels, out_h, out_w)
        if self._shift_add:
            positions = self.kernel_h * self.kernel_w
            ctx.per_position = arena.buffer(
                (key, "pos"), (batch, positions * self.out_channels, padded_h * padded_w)
            )
            per_position5 = ctx.per_position.reshape(
                batch, positions, self.out_channels, padded_h, padded_w
            )
            ctx.position_slices = [
                per_position5[:, ky * self.kernel_w + kx, :, ky : ky + out_h, kx : kx + out_w]
                for ky in range(self.kernel_h)
                for kx in range(self.kernel_w)
            ]
        else:
            window = channels * self.kernel_h * self.kernel_w
            ctx.cols = arena.buffer((key, "cols"), (batch, window, out_h * out_w))
            ctx.cols6 = ctx.cols.reshape(
                batch, channels, self.kernel_h, self.kernel_w, out_h, out_w
            )
            # The window view over the persistent padded buffer never moves;
            # compute it once per (plan, shape) instead of once per batch.
            ctx.windows = (
                sliding_windows(ctx.padded, self.kernel_h, self.kernel_w, self.stride)
                if ctx.padded is not None
                else None
            )
        return ctx

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        if ctx.padded is not None:
            pad = self.padding
            ctx.padded[:, :, pad:-pad, pad:-pad] = x
            source = ctx.padded
        else:
            source = x
        if self._shift_add:
            batch, channels = source.shape[:2]
            flat = source.reshape(batch, channels, -1)
            np.matmul(self._weight_stack, flat, out=ctx.per_position)
            np.copyto(ctx.out4, ctx.position_slices[0])
            for position in ctx.position_slices[1:]:
                np.add(ctx.out4, position, out=ctx.out4)
        else:
            windows = (
                ctx.windows
                if ctx.windows is not None
                else sliding_windows(source, self.kernel_h, self.kernel_w, self.stride)
            )
            np.copyto(ctx.cols6, windows.transpose(0, 1, 4, 5, 2, 3))
            np.matmul(self._weight_matrix, ctx.cols, out=ctx.out)
        if self.bias is not None:
            ctx.out += self.bias[:, None]
        if self.relu:
            np.maximum(ctx.out, 0.0, out=ctx.out)
        return ctx.out4


class LinearOp(_Op):
    """Fully connected layer on a pre-packed (possibly folded) weight.

    The transposed-view operand layout matches the eager
    ``inputs.matmul(weight.transpose())`` call exactly, so unfolded results
    are bit-identical.  The optional ReLU epilogue runs in place.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        relu: bool = False,
    ) -> None:
        self.weight = np.ascontiguousarray(weight, dtype=np.float64)
        self.out_features, self.in_features = self.weight.shape
        self._weight_t = self.weight.transpose()
        self.bias = None if bias is None else np.asarray(bias, dtype=np.float64)
        self.relu = bool(relu)

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        batch, features = shape
        if features != self.in_features:
            raise CompileError(
                f"linear expects {self.in_features} input features, got {features}"
            )
        return SimpleNamespace(
            output_shape=(batch, self.out_features),
            out=arena.buffer((key, "out"), (batch, self.out_features)),
        )

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.matmul(x, self._weight_t, out=ctx.out)
        if self.bias is not None:
            ctx.out += self.bias
        if self.relu:
            np.maximum(ctx.out, 0.0, out=ctx.out)
        return ctx.out


class _PoolOp(_Op):
    """Shared scaffolding for max/average pooling."""

    pad_fill: float = 0.0

    def __init__(self, kernel_size: int, stride: Optional[int], padding: int) -> None:
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size
        self.padding = int(padding)

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        batch, channels, height, width = shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        pad = self.padding
        ctx = SimpleNamespace(output_shape=(batch, channels, out_h, out_w))
        ctx.padded = (
            arena.buffer(
                (key, "pad"),
                (batch, channels, height + 2 * pad, width + 2 * pad),
                fill=self.pad_fill,
            )
            if pad
            else None
        )
        ctx.out = arena.buffer((key, "out"), (batch, channels, out_h, out_w))
        ctx.slices = (
            _window_position_slices(ctx.padded, self.kernel_size, self.stride)
            if ctx.padded is not None
            else None
        )
        return ctx

    def _window_slices(self, x: np.ndarray, ctx: SimpleNamespace) -> list:
        if ctx.padded is not None:
            pad = self.padding
            ctx.padded[:, :, pad:-pad, pad:-pad] = x
            return ctx.slices
        return _window_position_slices(x, self.kernel_size, self.stride)


class MaxPoolOp(_PoolOp):
    """2-D max pooling; padded border stays ``-inf`` so it never wins.

    Accumulating ``np.maximum`` over the k*k window positions is ~7-17x
    faster than reducing over the strided window axes directly (the
    reduction iterates the overlapping view with terrible locality); max is
    exact, so the result is bit-identical either way.
    """

    pad_fill = -np.inf

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        slices = self._window_slices(x, ctx)
        np.copyto(ctx.out, slices[0])
        for window in slices[1:]:
            np.maximum(ctx.out, window, out=ctx.out)
        return ctx.out


class AvgPoolOp(_PoolOp):
    """2-D average pooling (``count_include_pad`` style, like the eager op)."""

    pad_fill = 0.0

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        slices = self._window_slices(x, ctx)
        np.copyto(ctx.out, slices[0])
        for window in slices[1:]:
            np.add(ctx.out, window, out=ctx.out)
        ctx.out *= 1.0 / (self.kernel_size * self.kernel_size)
        return ctx.out


class BatchNormOp(_Op):
    """Inference batch norm replaying the eager op order bit for bit.

    Used when the BatchNorm could not be folded into a preceding linear op —
    in particular when a sign activation follows, where re-associated
    arithmetic could flip a borderline sign.  Computes
    ``(x - mean) / std * gamma + beta`` with exactly the eager sequence of
    broadcast elementwise ops, then the optional fused sign/ReLU epilogue.
    """

    def __init__(
        self,
        mean: np.ndarray,
        std: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        sign: bool = False,
        relu: bool = False,
    ) -> None:
        self.mean = np.asarray(mean, dtype=np.float64)
        self.std = np.asarray(std, dtype=np.float64)
        self.gamma = np.asarray(gamma, dtype=np.float64)
        self.beta = np.asarray(beta, dtype=np.float64)
        self.sign = bool(sign)
        self.relu = bool(relu)

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        return SimpleNamespace(
            output_shape=tuple(shape),
            out=arena.buffer((key, "out"), shape),
            mask=arena.bool_buffer((key, "mask"), shape) if self.sign else None,
        )

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.subtract(x, self.mean, out=ctx.out)
        np.divide(ctx.out, self.std, out=ctx.out)
        np.multiply(ctx.out, self.gamma, out=ctx.out)
        np.add(ctx.out, self.beta, out=ctx.out)
        if self.sign:
            _sign_inplace(ctx.out, ctx.mask)
        elif self.relu:
            np.maximum(ctx.out, 0.0, out=ctx.out)
        return ctx.out


class _ElementwiseOp(_Op):
    """Base for activations that write into their own same-shaped buffer."""

    needs_mask = False

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        return SimpleNamespace(
            output_shape=tuple(shape),
            out=arena.buffer((key, "out"), shape),
            mask=arena.bool_buffer((key, "mask"), shape) if self.needs_mask else None,
        )


class ReluOp(_ElementwiseOp):
    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.maximum(x, 0.0, out=ctx.out)
        return ctx.out


class SignOp(_ElementwiseOp):
    needs_mask = True

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.greater_equal(x, 0.0, out=ctx.mask)
        np.multiply(ctx.mask, 2.0, out=ctx.out)
        ctx.out -= 1.0
        return ctx.out


class SigmoidOp(_ElementwiseOp):
    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.negative(x, out=ctx.out)
        np.exp(ctx.out, out=ctx.out)
        ctx.out += 1.0
        np.divide(1.0, ctx.out, out=ctx.out)
        return ctx.out


class TanhOp(_ElementwiseOp):
    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.tanh(x, out=ctx.out)
        return ctx.out


class FlattenOp(_Op):
    """Flatten all dimensions after the batch dimension (a reshape view)."""

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        batch = shape[0]
        flattened = int(np.prod(shape[1:], dtype=np.int64)) if len(shape) > 1 else 1
        return SimpleNamespace(output_shape=(batch, flattened))

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        return x.reshape(ctx.output_shape)
