"""Raw-``ndarray`` inference kernels and the per-plan buffer arena.

These ops are what a :class:`~repro.compile.plan.CompiledPlan` executes: no
autograd graph, no per-op :class:`~repro.nn.tensor.Tensor` wrapping.  Each op
is *prepared* once per batch shape — binding its scratch and output buffers
from the plan's :class:`Arena` into a per-shape context — and then *run*
once per forward pass against that context, writing into the pre-allocated
buffers (``out=`` everywhere, in-place epilogues for bias/ReLU/sign).
Because the context carries all shape-dependent state, a plan alternating
between batch shapes (e.g. a server interleaving batch-1 shed forwards with
micro-batches) switches programs without re-preparing anything.

Numerical contract: where no folding applies, every op reproduces the eager
path bit for bit — the same im2col window ordering (via the shared
:func:`repro.nn.functional.sliding_windows` helper), the same operand
layouts handed to BLAS, and the same elementwise operation order as the
eager BatchNorm/activation code.  Folded ops (BatchNorm absorbed into conv
or linear weights) and the shift-add conv strategy are equivalent up to
float rounding — and remain *exact* on the binary interior blocks, whose
±1 arithmetic stays integral in float64 under any summation order.

Precision modes: every op takes a ``dtype`` (float64 by default — the exact
mode above; float32 halves memory traffic at fp32 tolerance).  In fp32 mode
the im2col gather is additionally *cache-blocked* along the output rows so
the column scratch stays L2-resident; fp64 never blocks, because splitting
the GEMM would change BLAS summation order and break the bit-identity
contract.  :class:`PackedConvOp` / :class:`PackedLinearOp` are the
``"bitpacked"`` kernels for binary blocks whose inputs are provably ±1:
signs are packed 64-per-word into ``uint64``, the GEMM becomes XNOR +
popcount (``dot = K - 2 * popcount(a ^ b)``), and zero padding is restored
by a per-position integer correction precomputed at prepare time.  Because
±1 dot products are exact small integers in float64, the packed kernels are
*bit-identical* to the float path — not merely close.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Dict, Optional, Tuple

import numpy as np

from ..nn.functional import conv_output_size, sliding_windows

__all__ = [
    "Arena",
    "CompileError",
    "ConvOp",
    "LinearOp",
    "MaxPoolOp",
    "AvgPoolOp",
    "BatchNormOp",
    "PackedConvOp",
    "PackedLinearOp",
    "ReluOp",
    "SignOp",
    "SigmoidOp",
    "TanhOp",
    "FlattenOp",
    "PRECISIONS",
    "precision_dtype",
]


class CompileError(RuntimeError):
    """A module or module sequence that the plan compiler cannot handle."""


#: Supported compute precision modes for compiled plans, with their
#: documented guarantees (enforced by ``repro.compile.ddnn.verify_compiled``):
#:
#: * ``"float64"`` — the exact default: byte-identical routing vs eager.
#: * ``"float32"`` — fp32 weights/buffers/GEMMs; routing agreement >= 99.9%
#:   vs the fp64 oracle, per-exit logits allclose at fp32 tolerance.
#: * ``"bitpacked"`` — float64 carriers everywhere, but binary blocks with
#:   provably-±1 inputs run the uint64 XNOR+popcount GEMM; bit-identical to
#:   the float sign path (±1 dots are exact integers in float64).
PRECISIONS = ("float64", "float32", "bitpacked")

#: Cache-block budget (bytes) for the fp32 im2col column scratch.
_IM2COL_BLOCK_BYTES = 1 << 20


def precision_dtype(precision: str) -> np.dtype:
    """The float carrier dtype of a precision mode (validates the name)."""
    if precision not in PRECISIONS:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of {PRECISIONS}"
        )
    return np.dtype(np.float32 if precision == "float32" else np.float64)


#: Per-byte popcount lookup table for the bitpacked GEMM (fallback when the
#: native ``np.bitwise_count`` ufunc — numpy >= 2.0 — is unavailable).
_POPCOUNT8 = np.array([bin(value).count("1") for value in range(256)], dtype=np.uint8)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def _popcount_words(xor: np.ndarray, pop: np.ndarray, counts: np.ndarray) -> None:
    """Sum the 1-bits of each row of uint64 words into ``counts``.

    ``xor`` is ``(..., words)`` uint64; ``pop`` is the uint8 scratch —
    ``(..., words)`` with native popcount, ``(..., words * 8)`` (a byte view
    lookup) on the table fallback; ``counts`` is ``(...,)`` int64.  The
    last-axis reduction is unrolled: the word count is tiny (K/64), and a
    handful of full-array adds beats ``np.sum``'s short-axis reduction
    machinery by a wide margin.
    """
    if _HAS_BITWISE_COUNT:
        np.bitwise_count(xor, out=pop)
    else:
        np.take(_POPCOUNT8, xor.view(np.uint8), out=pop)
    np.copyto(counts, pop[..., 0])
    for word in range(1, pop.shape[-1]):
        counts += pop[..., word]


def _popcount_scratch_width(words: int) -> int:
    """Last-axis width of the uint8 popcount scratch for ``words`` words."""
    return words if _HAS_BITWISE_COUNT else words * 8


def _pack_sign_rows(weight_matrix: np.ndarray) -> Tuple[np.ndarray, int]:
    """Pack the signs of a ±1 ``(rows, K)`` matrix into ``(rows, W)`` uint64.

    Bit convention: 1 iff the value is positive.  The byte tail past
    ``ceil(K/8)`` stays zero, so two operands packed this way never disagree
    on the padding bits and the popcount counts mismatches over the valid
    ``K`` positions only.
    """
    rows, k = weight_matrix.shape
    words = max(1, -(-k // 64))
    packed_u8 = np.zeros((rows, words * 8), dtype=np.uint8)
    bits = np.packbits(weight_matrix > 0, axis=-1)
    packed_u8[:, : bits.shape[-1]] = bits
    return packed_u8.view(np.uint64), words


class Arena:
    """Shape-keyed buffer pool owned by one compiled plan.

    Buffers are allocated when the plan first prepares a batch shape and
    reused across every subsequent forward pass with that shape.  The pool
    key includes the shape, so programs for several batch shapes coexist
    without re-allocating each other's buffers.  ``fill`` is applied only
    on allocation: padded scratch buffers keep their constant border (zeros
    for convolution, ``-inf`` for max pooling) because the ops only ever
    overwrite the interior.  The arena carries the plan's float dtype
    (float64 by default, float32 in fp32 mode); non-float scratch (sign
    masks, packed words, popcount bytes) requests an explicit dtype.
    """

    def __init__(self, dtype: np.dtype = np.float64) -> None:
        self.dtype = np.dtype(dtype)
        self._buffers: Dict[object, np.ndarray] = {}

    def buffer(
        self,
        key: object,
        shape: Tuple[int, ...],
        fill: Optional[float] = None,
        dtype: Optional[np.dtype] = None,
    ) -> np.ndarray:
        dtype = self.dtype if dtype is None else np.dtype(dtype)
        pool_key = (key, tuple(shape), dtype.str)
        buf = self._buffers.get(pool_key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            if fill is not None:
                buf.fill(fill)
            self._buffers[pool_key] = buf
        return buf

    def bool_buffer(self, key: object, shape: Tuple[int, ...]) -> np.ndarray:
        return self.buffer(key, shape, dtype=bool)


def _window_position_slices(source: np.ndarray, kernel: int, stride: int) -> list:
    """One strided sub-view of ``source`` per kernel position.

    ``slices[ky * kernel + kx][n, c, oy, ox]`` is the value the window at
    output position ``(oy, ox)`` sees at kernel offset ``(ky, kx)``.  Pool
    ops accumulate max/sum over these views instead of reducing over the
    overlapping 6-D window view, which iterates with far better locality.
    """
    windows = sliding_windows(source, kernel, kernel, stride)
    return [
        windows[:, :, :, :, ky, kx] for ky in range(kernel) for kx in range(kernel)
    ]


def _sign_inplace(buf: np.ndarray, mask: np.ndarray) -> None:
    """In-place ``x -> {-1, +1}`` with the eager ``x >= 0 -> +1`` convention."""
    np.greater_equal(buf, 0.0, out=mask)
    np.multiply(mask, 2.0, out=buf)
    buf -= 1.0


class _Op:
    """One step of a compiled plan.

    ``prepare`` binds buffers for one batch shape into a context namespace
    (with at least ``output_shape``); ``run`` executes against a context.
    """

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        raise NotImplementedError

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        raise NotImplementedError


class ConvOp(_Op):
    """2-D convolution on pre-packed weight matrices.

    ``weight`` is the (possibly binarized and/or BatchNorm-folded) 4-D
    kernel.  Two execution strategies:

    * **shift-add** (stride 1, ``out_channels < in_channels``): one big
      batched GEMM of the per-position weight stack against the
      *unexpanded* padded image, followed by ``kh * kw`` strided
      accumulations — no im2col gather at all.  The gather/accumulate
      memory traffic is proportional to ``out_channels`` instead of
      ``in_channels``, and BLAS sees contiguous operands.
    * **im2col** otherwise: zero-copy strided window view gathered into a
      pre-allocated column buffer, then the same batched GEMM the eager
      path performs (bit-identical when nothing was folded).

    Bias add and the optional fused ReLU run in place on the output buffer.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
        relu: bool = False,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.weight = np.ascontiguousarray(weight, dtype=self.dtype)
        self.out_channels, self.in_channels, self.kernel_h, self.kernel_w = self.weight.shape
        self.bias = None if bias is None else np.asarray(bias, dtype=self.dtype)
        self.stride = int(stride)
        self.padding = int(padding)
        self.relu = bool(relu)
        self._shift_add = self.stride == 1 and self.out_channels < self.in_channels
        if self._shift_add:
            # (kh*kw*out, in): one (out, in) block per kernel position.
            self._weight_stack = np.ascontiguousarray(
                self.weight.transpose(2, 3, 0, 1).reshape(-1, self.in_channels)
            )
        else:
            self._weight_matrix = self.weight.reshape(self.out_channels, -1)

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        batch, channels, height, width = shape
        if channels != self.in_channels:
            raise CompileError(
                f"conv expects {self.in_channels} input channels, got {channels}"
            )
        out_h = conv_output_size(height, self.kernel_h, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_w, self.stride, self.padding)
        if out_h < 1 or out_w < 1:
            raise CompileError(f"conv output collapses to {out_h}x{out_w}")
        pad = self.padding
        padded_h, padded_w = height + 2 * pad, width + 2 * pad
        ctx = SimpleNamespace(output_shape=(batch, self.out_channels, out_h, out_w))
        ctx.padded = (
            arena.buffer((key, "pad"), (batch, channels, padded_h, padded_w), fill=0.0)
            if pad
            else None
        )
        ctx.out = arena.buffer((key, "out"), (batch, self.out_channels, out_h * out_w))
        ctx.out4 = ctx.out.reshape(batch, self.out_channels, out_h, out_w)
        if self._shift_add:
            positions = self.kernel_h * self.kernel_w
            ctx.per_position = arena.buffer(
                (key, "pos"), (batch, positions * self.out_channels, padded_h * padded_w)
            )
            per_position5 = ctx.per_position.reshape(
                batch, positions, self.out_channels, padded_h, padded_w
            )
            ctx.position_slices = [
                per_position5[:, ky * self.kernel_w + kx, :, ky : ky + out_h, kx : kx + out_w]
                for ky in range(self.kernel_h)
                for kx in range(self.kernel_w)
            ]
        else:
            window = channels * self.kernel_h * self.kernel_w
            # The window view over the persistent padded buffer never moves;
            # compute it once per (plan, shape) instead of once per batch.
            ctx.windows = (
                sliding_windows(ctx.padded, self.kernel_h, self.kernel_w, self.stride)
                if ctx.padded is not None
                else None
            )
            ctx.blocks = None
            rows = self._block_rows(batch, window, out_h, out_w)
            if rows < out_h:
                ctx.blocks = []
                for start in range(0, out_h, rows):
                    stop = min(start + rows, out_h)
                    count = stop - start
                    cols = arena.buffer(
                        (key, "cols", count), (batch, window, count * out_w)
                    )
                    cols6 = cols.reshape(
                        batch, channels, self.kernel_h, self.kernel_w, count, out_w
                    )
                    block_out = arena.buffer(
                        (key, "blk", count), (batch, self.out_channels, count * out_w)
                    )
                    block_out4 = block_out.reshape(
                        batch, self.out_channels, count, out_w
                    )
                    out_slice = ctx.out4[:, :, start:stop, :]
                    ctx.blocks.append((start, stop, cols, cols6, block_out, block_out4, out_slice))
            else:
                ctx.cols = arena.buffer((key, "cols"), (batch, window, out_h * out_w))
                ctx.cols6 = ctx.cols.reshape(
                    batch, channels, self.kernel_h, self.kernel_w, out_h, out_w
                )
        return ctx

    def _block_rows(self, batch: int, window: int, out_h: int, out_w: int) -> int:
        """Output rows per im2col block.

        fp64 never blocks — splitting the GEMM changes BLAS summation
        composition and would break the bit-identity contract.  fp32 blocks
        whenever the full column scratch would exceed the block budget, so
        the gathered operand stays cache-resident.
        """
        if self.dtype == np.float64:
            return out_h
        row_bytes = batch * window * out_w * self.dtype.itemsize
        if row_bytes * out_h <= _IM2COL_BLOCK_BYTES:
            return out_h
        return max(1, _IM2COL_BLOCK_BYTES // row_bytes)

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        if ctx.padded is not None:
            pad = self.padding
            ctx.padded[:, :, pad:-pad, pad:-pad] = x
            source = ctx.padded
        else:
            source = x
        if self._shift_add:
            batch, channels = source.shape[:2]
            flat = source.reshape(batch, channels, -1)
            np.matmul(self._weight_stack, flat, out=ctx.per_position)
            np.copyto(ctx.out4, ctx.position_slices[0])
            for position in ctx.position_slices[1:]:
                np.add(ctx.out4, position, out=ctx.out4)
        else:
            windows = (
                ctx.windows
                if ctx.windows is not None
                else sliding_windows(source, self.kernel_h, self.kernel_w, self.stride)
            )
            if ctx.blocks is None:
                np.copyto(ctx.cols6, windows.transpose(0, 1, 4, 5, 2, 3))
                np.matmul(self._weight_matrix, ctx.cols, out=ctx.out)
            else:
                for start, stop, cols, cols6, block_out, block_out4, out_slice in ctx.blocks:
                    np.copyto(cols6, windows[:, :, start:stop].transpose(0, 1, 4, 5, 2, 3))
                    np.matmul(self._weight_matrix, cols, out=block_out)
                    np.copyto(out_slice, block_out4)
        if self.bias is not None:
            ctx.out += self.bias[:, None]
        if self.relu:
            np.maximum(ctx.out, 0.0, out=ctx.out)
        return ctx.out4


class LinearOp(_Op):
    """Fully connected layer on a pre-packed (possibly folded) weight.

    The transposed-view operand layout matches the eager
    ``inputs.matmul(weight.transpose())`` call exactly, so unfolded results
    are bit-identical.  The optional ReLU epilogue runs in place.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        relu: bool = False,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.weight = np.ascontiguousarray(weight, dtype=self.dtype)
        self.out_features, self.in_features = self.weight.shape
        self._weight_t = self.weight.transpose()
        self.bias = None if bias is None else np.asarray(bias, dtype=self.dtype)
        self.relu = bool(relu)

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        batch, features = shape
        if features != self.in_features:
            raise CompileError(
                f"linear expects {self.in_features} input features, got {features}"
            )
        return SimpleNamespace(
            output_shape=(batch, self.out_features),
            out=arena.buffer((key, "out"), (batch, self.out_features)),
        )

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.matmul(x, self._weight_t, out=ctx.out)
        if self.bias is not None:
            ctx.out += self.bias
        if self.relu:
            np.maximum(ctx.out, 0.0, out=ctx.out)
        return ctx.out


class _PoolOp(_Op):
    """Shared scaffolding for max/average pooling."""

    pad_fill: float = 0.0

    def __init__(self, kernel_size: int, stride: Optional[int], padding: int) -> None:
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size
        self.padding = int(padding)

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        batch, channels, height, width = shape
        out_h = conv_output_size(height, self.kernel_size, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_size, self.stride, self.padding)
        pad = self.padding
        ctx = SimpleNamespace(output_shape=(batch, channels, out_h, out_w))
        ctx.padded = (
            arena.buffer(
                (key, "pad"),
                (batch, channels, height + 2 * pad, width + 2 * pad),
                fill=self.pad_fill,
            )
            if pad
            else None
        )
        ctx.out = arena.buffer((key, "out"), (batch, channels, out_h, out_w))
        ctx.slices = (
            _window_position_slices(ctx.padded, self.kernel_size, self.stride)
            if ctx.padded is not None
            else None
        )
        return ctx

    def _window_slices(self, x: np.ndarray, ctx: SimpleNamespace) -> list:
        if ctx.padded is not None:
            pad = self.padding
            ctx.padded[:, :, pad:-pad, pad:-pad] = x
            return ctx.slices
        return _window_position_slices(x, self.kernel_size, self.stride)


class MaxPoolOp(_PoolOp):
    """2-D max pooling; padded border stays ``-inf`` so it never wins.

    Accumulating ``np.maximum`` over the k*k window positions is ~7-17x
    faster than reducing over the strided window axes directly (the
    reduction iterates the overlapping view with terrible locality); max is
    exact, so the result is bit-identical either way.
    """

    pad_fill = -np.inf

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        slices = self._window_slices(x, ctx)
        np.copyto(ctx.out, slices[0])
        for window in slices[1:]:
            np.maximum(ctx.out, window, out=ctx.out)
        return ctx.out


class AvgPoolOp(_PoolOp):
    """2-D average pooling (``count_include_pad`` style, like the eager op)."""

    pad_fill = 0.0

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        slices = self._window_slices(x, ctx)
        np.copyto(ctx.out, slices[0])
        for window in slices[1:]:
            np.add(ctx.out, window, out=ctx.out)
        ctx.out *= 1.0 / (self.kernel_size * self.kernel_size)
        return ctx.out


class BatchNormOp(_Op):
    """Inference batch norm replaying the eager op order bit for bit.

    Used when the BatchNorm could not be folded into a preceding linear op —
    in particular when a sign activation follows, where re-associated
    arithmetic could flip a borderline sign.  In exact (float64/bitpacked)
    modes it computes ``(x - mean) / std * gamma + beta`` with exactly the
    eager sequence of broadcast elementwise ops, then the optional fused
    sign/ReLU epilogue.

    In ``float32`` mode — where the guarantee is tolerance-based, not
    bitwise — the four broadcast ops collapse to the pre-computed affine
    ``x * scale + shift`` (two dispatches) and the 3-dispatch sign epilogue
    to a single ``np.copysign``; at serving batch sizes the per-op numpy
    dispatch cost rivals the array work, so halving the dispatch count is
    where much of fp32's batch-1 latency win comes from.
    """

    def __init__(
        self,
        mean: np.ndarray,
        std: np.ndarray,
        gamma: np.ndarray,
        beta: np.ndarray,
        sign: bool = False,
        relu: bool = False,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.mean = np.asarray(mean, dtype=self.dtype)
        self.std = np.asarray(std, dtype=self.dtype)
        self.gamma = np.asarray(gamma, dtype=self.dtype)
        self.beta = np.asarray(beta, dtype=self.dtype)
        self.sign = bool(sign)
        self.relu = bool(relu)
        self._exact = self.dtype == np.float64
        if not self._exact:
            # Affine fold in float64, cast once: y = x * scale + shift.
            scale = np.asarray(gamma, dtype=np.float64) / np.asarray(std, dtype=np.float64)
            shift = np.asarray(beta, dtype=np.float64) - np.asarray(
                mean, dtype=np.float64
            ) * scale
            self._scale = scale.astype(self.dtype)
            self._shift = shift.astype(self.dtype)

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        return SimpleNamespace(
            output_shape=tuple(shape),
            out=arena.buffer((key, "out"), shape),
            mask=(
                arena.bool_buffer((key, "mask"), shape)
                if self.sign and self._exact
                else None
            ),
        )

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        if self._exact:
            np.subtract(x, self.mean, out=ctx.out)
            np.divide(ctx.out, self.std, out=ctx.out)
            np.multiply(ctx.out, self.gamma, out=ctx.out)
            np.add(ctx.out, self.beta, out=ctx.out)
            if self.sign:
                _sign_inplace(ctx.out, ctx.mask)
            elif self.relu:
                np.maximum(ctx.out, 0.0, out=ctx.out)
            return ctx.out
        np.multiply(x, self._scale, out=ctx.out)
        np.add(ctx.out, self._shift, out=ctx.out)
        if self.sign:
            # copysign(1, -0.0) is -1 where the eager rule gives +1; exact
            # zeros are vanishingly rare in fp32 BN output and covered by
            # the mode's routing-agreement tolerance.
            np.copysign(self.dtype.type(1.0), ctx.out, out=ctx.out)
        elif self.relu:
            np.maximum(ctx.out, 0.0, out=ctx.out)
        return ctx.out


class _ElementwiseOp(_Op):
    """Base for activations that write into their own same-shaped buffer."""

    needs_mask = False

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        return SimpleNamespace(
            output_shape=tuple(shape),
            out=arena.buffer((key, "out"), shape),
            mask=arena.bool_buffer((key, "mask"), shape) if self.needs_mask else None,
        )


class ReluOp(_ElementwiseOp):
    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.maximum(x, 0.0, out=ctx.out)
        return ctx.out


class SignOp(_ElementwiseOp):
    needs_mask = True

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.greater_equal(x, 0.0, out=ctx.mask)
        np.multiply(ctx.mask, 2.0, out=ctx.out)
        ctx.out -= 1.0
        return ctx.out


class SigmoidOp(_ElementwiseOp):
    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.negative(x, out=ctx.out)
        np.exp(ctx.out, out=ctx.out)
        ctx.out += 1.0
        np.divide(1.0, ctx.out, out=ctx.out)
        return ctx.out


class TanhOp(_ElementwiseOp):
    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.tanh(x, out=ctx.out)
        return ctx.out


class FlattenOp(_Op):
    """Flatten all dimensions after the batch dimension (a reshape view)."""

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        batch = shape[0]
        flattened = int(np.prod(shape[1:], dtype=np.int64)) if len(shape) > 1 else 1
        return SimpleNamespace(output_shape=(batch, flattened))

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        return x.reshape(ctx.output_shape)


class PackedConvOp(_Op):
    """Bitpacked XNOR+popcount convolution for ±1 weights over ±1 inputs.

    Signs of the im2col windows are packed 64-per-word into ``uint64``; each
    output channel is then ``dot = K - 2 * popcount(act ^ weight)``, with
    popcount as a per-byte table lookup.  The packed operand is 64x smaller
    than either float layout, so the existing stride/channel memory-traffic
    rule that picks between shift-add and im2col collapses here: packed wins
    both regimes and is always used for eligible binary blocks.

    Zero padding cannot be represented in one bit, so padded window
    positions are packed as ``-1`` and repaired by an integer correction
    ``corr[o, p] = sum of w[o, k] over the padded positions of window p``,
    precomputed per shape.  All quantities are exact small integers in
    float64, making the op bit-identical to the float sign path.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        stride: int,
        padding: int,
        relu: bool = False,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.weight = np.ascontiguousarray(weight, dtype=np.float64)
        self.out_channels, self.in_channels, self.kernel_h, self.kernel_w = self.weight.shape
        self.bias = None if bias is None else np.asarray(bias, dtype=self.dtype)
        self.stride = int(stride)
        self.padding = int(padding)
        self.relu = bool(relu)
        self._weight_matrix = self.weight.reshape(self.out_channels, -1)
        self.k_valid = self._weight_matrix.shape[1]
        self._weight_packed, self._words = _pack_sign_rows(self._weight_matrix)

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        batch, channels, height, width = shape
        if channels != self.in_channels:
            raise CompileError(
                f"conv expects {self.in_channels} input channels, got {channels}"
            )
        out_h = conv_output_size(height, self.kernel_h, self.stride, self.padding)
        out_w = conv_output_size(width, self.kernel_w, self.stride, self.padding)
        if out_h < 1 or out_w < 1:
            raise CompileError(f"conv output collapses to {out_h}x{out_w}")
        pad = self.padding
        padded_h, padded_w = height + 2 * pad, width + 2 * pad
        positions = out_h * out_w
        words = self._words
        ctx = SimpleNamespace(output_shape=(batch, self.out_channels, out_h, out_w))
        # Signs are taken on the compact (padded) source — kh*kw times fewer
        # elements than the expanded window view — and the im2col gather then
        # moves 1-byte bools instead of 8-byte floats.  The padded border is
        # pre-filled False (= the packed -1 the correction term repairs) and
        # never written again.
        ctx.source_bits = arena.buffer(
            (key, "sbits"), (batch, channels, padded_h, padded_w), fill=0, dtype=bool
        )
        ctx.interior_bits = (
            ctx.source_bits[:, :, pad:-pad, pad:-pad] if pad else ctx.source_bits
        )
        ctx.bit_windows = sliding_windows(
            ctx.source_bits, self.kernel_h, self.kernel_w, self.stride
        )
        ctx.bits6 = arena.bool_buffer(
            (key, "bits"), (batch, out_h, out_w, channels, self.kernel_h, self.kernel_w)
        )
        ctx.bits3 = ctx.bits6.reshape(batch, positions, self.k_valid)
        # Packed activations: the byte tail past ceil(K/8) is zero-filled at
        # allocation and never written, so it XORs clean against the weights'
        # matching zero tail.
        ctx.act = arena.buffer(
            (key, "act"), (batch, positions, words), fill=0, dtype=np.uint64
        )
        ctx.act_u8 = ctx.act.view(np.uint8)
        ctx.xor = arena.buffer(
            (key, "xor"), (batch, self.out_channels, positions, words), dtype=np.uint64
        )
        ctx.pop = arena.buffer(
            (key, "pop"),
            (batch, self.out_channels, positions, _popcount_scratch_width(words)),
            dtype=np.uint8,
        )
        ctx.counts = arena.buffer(
            (key, "cnt"), (batch, self.out_channels, positions), dtype=np.int64
        )
        ctx.out = arena.buffer((key, "out"), (batch, self.out_channels, positions))
        ctx.out4 = ctx.out.reshape(batch, self.out_channels, out_h, out_w)
        ctx.corr = self._pad_correction(channels, padded_h, padded_w, positions) if pad else None
        return ctx

    def _pad_correction(
        self, channels: int, padded_h: int, padded_w: int, positions: int
    ) -> np.ndarray:
        """Exact integer ``(out_channels, positions)`` zero-padding repair."""
        pad = self.padding
        mask = np.ones((1, channels, padded_h, padded_w), dtype=np.float64)
        mask[:, :, pad:-pad, pad:-pad] = 0.0
        mask_windows = sliding_windows(mask, self.kernel_h, self.kernel_w, self.stride)
        mask_cols = np.ascontiguousarray(
            mask_windows.transpose(0, 1, 4, 5, 2, 3)
        ).reshape(self.k_valid, positions)
        return self._weight_matrix @ mask_cols

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.greater(x, 0.0, out=ctx.interior_bits)
        np.copyto(ctx.bits6, ctx.bit_windows.transpose(0, 2, 3, 1, 4, 5))
        packed = np.packbits(ctx.bits3, axis=-1)
        ctx.act_u8[..., : packed.shape[-1]] = packed
        np.bitwise_xor(
            ctx.act[:, None, :, :],
            self._weight_packed[None, :, None, :],
            out=ctx.xor,
        )
        _popcount_words(ctx.xor, ctx.pop, ctx.counts)
        np.multiply(ctx.counts, -2.0, out=ctx.out)
        ctx.out += float(self.k_valid)
        if ctx.corr is not None:
            ctx.out += ctx.corr
        if self.bias is not None:
            ctx.out += self.bias[:, None]
        if self.relu:
            np.maximum(ctx.out, 0.0, out=ctx.out)
        return ctx.out4


class PackedLinearOp(_Op):
    """Bitpacked XNOR+popcount fully connected layer for ±1 weights/inputs.

    One broadcast XOR of the packed ``(batch, words)`` activations against
    the packed ``(out_features, words)`` weights, then the same popcount
    reduction as :class:`PackedConvOp`.  Exact integers, bit-identical to
    the float path.
    """

    def __init__(
        self,
        weight: np.ndarray,
        bias: Optional[np.ndarray],
        relu: bool = False,
        dtype: np.dtype = np.float64,
    ) -> None:
        self.dtype = np.dtype(dtype)
        self.weight = np.ascontiguousarray(weight, dtype=np.float64)
        self.out_features, self.in_features = self.weight.shape
        self._weight_packed, self._words = _pack_sign_rows(self.weight)
        self.bias = None if bias is None else np.asarray(bias, dtype=self.dtype)
        self.relu = bool(relu)

    def prepare(self, shape: Tuple[int, ...], arena: Arena, key: object) -> SimpleNamespace:
        batch, features = shape
        if features != self.in_features:
            raise CompileError(
                f"linear expects {self.in_features} input features, got {features}"
            )
        words = self._words
        ctx = SimpleNamespace(output_shape=(batch, self.out_features))
        ctx.bits = arena.bool_buffer((key, "bits"), (batch, features))
        ctx.act = arena.buffer((key, "act"), (batch, words), fill=0, dtype=np.uint64)
        ctx.act_u8 = ctx.act.view(np.uint8)
        ctx.xor = arena.buffer(
            (key, "xor"), (batch, self.out_features, words), dtype=np.uint64
        )
        ctx.pop = arena.buffer(
            (key, "pop"),
            (batch, self.out_features, _popcount_scratch_width(words)),
            dtype=np.uint8,
        )
        ctx.counts = arena.buffer((key, "cnt"), (batch, self.out_features), dtype=np.int64)
        ctx.out = arena.buffer((key, "out"), (batch, self.out_features))
        return ctx

    def run(self, x: np.ndarray, ctx: SimpleNamespace) -> np.ndarray:
        np.greater(x, 0.0, out=ctx.bits)
        packed = np.packbits(ctx.bits, axis=-1)
        ctx.act_u8[:, : packed.shape[-1]] = packed
        np.bitwise_xor(ctx.act[:, None, :], self._weight_packed[None, :, :], out=ctx.xor)
        _popcount_words(ctx.xor, ctx.pop, ctx.counts)
        np.multiply(ctx.counts, -2.0, out=ctx.out)
        ctx.out += float(self.in_features)
        if self.bias is not None:
            ctx.out += self.bias
        if self.relu:
            np.maximum(ctx.out, 0.0, out=ctx.out)
        return ctx.out
