"""Module-level memoization of compiled inference plans.

Before this cache existed every :class:`~repro.core.cascade.ExitCascade`
(and therefore every fresh :class:`~repro.core.inference.StagedInferenceEngine`,
grid helper or short-lived server) carried its own ``_compiled_plans`` dict
and recompiled :func:`~repro.compile.ddnn.compile_ddnn` for a model the
process had already compiled.  The cache here is shared by all of them:

* keyed by ``(id(model), precision)`` with the identity double-checked
  against a weak reference, so a recycled ``id()`` can never serve another
  model's plan and a ``float32`` request can never be answered with another
  caller's ``float64`` plan — one model may have one live plan per
  precision mode simultaneously;
* entries hold the model only *weakly* — dropping the last strong reference
  to a model evicts its plans instead of leaking them;
* :func:`invalidate_plan` is the explicit hook to call after (re)training a
  model in place (it evicts *every* precision's plan for that model, since
  all of them snapshot weights at compile time);
* all bookkeeping is guarded by one re-entrant lock, so worker threads
  (:mod:`repro.serving.workers`) can look plans up while a training loop
  invalidates them — compilation itself happens *outside* the lock, so a
  slow compile never stalls other threads' cache hits, and a lost compile
  race just discards the loser's plan.
"""

from __future__ import annotations

import threading
import weakref
from typing import Dict, Optional, Tuple

from .ops import PRECISIONS

__all__ = ["compiled_plan_for", "invalidate_plan", "cached_plan_count"]

#: (id(model), precision) -> (weakref to the model, its CompiledDDNN plan).
_PLAN_CACHE: Dict[Tuple[int, str], Tuple["weakref.ref", object]] = {}
# RLock, not Lock: the weakref eviction callback can fire during a GC
# triggered while the owning thread already holds the lock.
_CACHE_LOCK = threading.RLock()


def compiled_plan_for(model, precision: str = "float64"):
    """The process-wide compiled plan for a model, compiling on first use.

    The plan snapshots the model's weights; call :func:`invalidate_plan`
    after the model is (re)trained to force a rebuild.  Each precision mode
    gets its own cached plan, so mixed-precision deployments (e.g. a
    bitpacked device tier next to an fp64 cloud) coexist without evicting
    each other.  Thread-safe: racing first-use compiles both build a plan,
    and the second to finish adopts the first one's entry.
    """
    if precision not in PRECISIONS:
        raise ValueError(
            f"unknown precision {precision!r}; expected one of {PRECISIONS}"
        )
    key = (id(model), precision)
    with _CACHE_LOCK:
        entry = _PLAN_CACHE.get(key)
        if entry is not None and entry[0]() is model:
            return entry[1]

    from .ddnn import compile_ddnn

    plan = compile_ddnn(model, precision=precision)

    def _evict(ref, key=key):
        # Only drop the entry if it still belongs to the dead model — the id
        # may have been recycled and the slot overwritten by a newer model.
        with _CACHE_LOCK:
            current = _PLAN_CACHE.get(key)
            if current is not None and current[0] is ref:
                del _PLAN_CACHE[key]

    with _CACHE_LOCK:
        entry = _PLAN_CACHE.get(key)
        if entry is not None and entry[0]() is model:
            return entry[1]
        _PLAN_CACHE[key] = (weakref.ref(model, _evict), plan)
    return plan


def invalidate_plan(model: Optional[object] = None) -> None:
    """Drop every cached plan for one model (all precisions), or all plans.

    Required after in-place retraining: compiled plans bake the weights in
    and would otherwise keep serving the stale snapshot.
    """
    with _CACHE_LOCK:
        if model is None:
            _PLAN_CACHE.clear()
            return
        stale = [
            key
            for key, entry in _PLAN_CACHE.items()
            if key[0] == id(model) and entry[0]() is model
        ]
        for key in stale:
            del _PLAN_CACHE[key]


def cached_plan_count() -> int:
    """Number of live cached plans (one per (model, precision) pair)."""
    with _CACHE_LOCK:
        return len(_PLAN_CACHE)
