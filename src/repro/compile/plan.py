"""Compile module stacks into fused/folded inference plans.

The compiler flattens a module tree (``Sequential``, the fused
``ConvPBlock``/``FCBlock`` pairs, raw layers) into a list of primitive
layers, then runs a peephole pass that:

* **binarizes and pre-packs weights** — ``BinaryConv2d``/``BinaryLinear``
  latent weights are materialised to ``{-1, +1}`` once, at compile time;
* **folds BatchNorm** into the immediately preceding ``Conv2d``/``Linear``
  weights using the running statistics (``W' = W * gamma/std``,
  ``b' = b * gamma/std + beta - mean * gamma/std``) — *except* when a sign
  activation follows, where the re-associated arithmetic could flip a
  borderline sign; there the exact eager BatchNorm op is kept and the sign
  is fused into it instead;
* **fuses activations** — ReLU into the preceding conv/linear/BatchNorm,
  sign into the preceding BatchNorm (the blocks never emit a bare
  linear-then-sign pair, so that is the only sign fusion site).

The resulting :class:`CompiledPlan` executes on raw ``np.ndarray``s with a
buffer arena reused across batches; programs (per-op buffer bindings) are
cached per batch shape, so alternating shapes — a server interleaving
batch-1 shed forwards with micro-batches — pays the preparation cost once
per shape, not per switch.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..nn.binary import BinaryActivation, BinaryConv2d, BinaryLinear
from ..nn.blocks import ConvPBlock, FCBlock
from ..nn.layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    Identity,
    Linear,
    MaxPool2d,
    Module,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .ops import (
    Arena,
    AvgPoolOp,
    BatchNormOp,
    CompileError,
    ConvOp,
    FlattenOp,
    LinearOp,
    MaxPoolOp,
    PackedConvOp,
    PackedLinearOp,
    ReluOp,
    SigmoidOp,
    SignOp,
    TanhOp,
    _Op,
    precision_dtype,
)

__all__ = [
    "CompileError",
    "CompiledPlan",
    "OpTiming",
    "compile_plan",
    "flatten_modules",
]


@dataclass(frozen=True)
class OpTiming:
    """Accumulated wall time of one op position in a compiled plan."""

    plan: str  # owning plan's name
    index: int  # position in the op list
    op: str  # op class name, e.g. "ConvOp"
    calls: int
    total_s: float

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0

ModuleLike = Union[Module, Sequence[Module]]


def flatten_modules(module: ModuleLike) -> List[Module]:
    """Flatten a module (or list of modules) into primitive layers."""
    if isinstance(module, (list, tuple)):
        primitives: List[Module] = []
        for child in module:
            primitives.extend(flatten_modules(child))
        return primitives
    if isinstance(module, Sequential):
        primitives = []
        for child in module:
            primitives.extend(flatten_modules(child))
        return primitives
    if isinstance(module, ConvPBlock):
        return [module.conv, module.pool, module.batch_norm, module.activation]
    if isinstance(module, FCBlock):
        primitives = [module.linear, module.batch_norm]
        if not module.final:
            primitives.append(module.activation)
        return primitives
    if isinstance(module, Identity):
        return []
    return [module]


def _bn_scale_shift(bn) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel affine ``y = x * scale + shift`` equivalent to eval-mode BN."""
    std = np.sqrt(np.asarray(bn.running_var, dtype=np.float64) + bn.eps)
    scale = np.asarray(bn.gamma.data, dtype=np.float64) / std
    shift = np.asarray(bn.beta.data, dtype=np.float64) - np.asarray(bn.running_mean) * scale
    return scale, shift


def _conv_weights(conv) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """Snapshot (and binarize, for BNN layers) a conv's weights at compile time."""
    weight = np.asarray(conv.weight.data, dtype=np.float64)
    if isinstance(conv, BinaryConv2d):
        weight = np.where(weight >= 0, 1.0, -1.0)
    else:
        weight = weight.copy()
    bias = None if conv.bias is None else np.asarray(conv.bias.data, dtype=np.float64).copy()
    return weight, bias


def _linear_weights(linear) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    weight = np.asarray(linear.weight.data, dtype=np.float64)
    if isinstance(linear, BinaryLinear):
        weight = np.where(weight >= 0, 1.0, -1.0)
    else:
        weight = weight.copy()
    bias = None if linear.bias is None else np.asarray(linear.bias.data, dtype=np.float64).copy()
    return weight, bias


def build_ops(
    primitives: Sequence[Module],
    precision: str = "float64",
    input_signed: bool = False,
) -> Tuple[List[_Op], bool]:
    """Peephole pass: primitive layers -> fused/folded op list.

    Returns ``(ops, output_signed)`` where ``output_signed`` records whether
    the plan's output is provably ±1 — the sign-propagation fact a caller
    feeds into the next plan's ``input_signed`` (and the precondition for
    the bitpacked kernels).  ``signed`` becomes true after a fused
    BatchNorm+sign or bare sign op, survives max pooling and flattening
    (which only move/select ±1 values), and is destroyed by everything
    else.  In ``"bitpacked"`` mode a Binary conv/linear whose weights stayed
    pure ±1 (no BatchNorm folded in) and whose input is signed compiles to
    the XNOR+popcount kernel instead of the float GEMM.
    """
    dtype = precision_dtype(precision)
    bitpack = precision == "bitpacked"
    primitives = list(primitives)
    ops: List[_Op] = []
    signed = bool(input_signed)
    index = 0
    total = len(primitives)

    def _at(position: int) -> Optional[Module]:
        return primitives[position] if position < total else None

    while index < total:
        module = primitives[index]

        if isinstance(module, (Conv2d, BinaryConv2d)):
            weight, bias = _conv_weights(module)
            folded = False
            cursor = index + 1
            if isinstance(_at(cursor), BatchNorm2d) and not isinstance(
                _at(cursor + 1), BinaryActivation
            ):
                scale, shift = _bn_scale_shift(_at(cursor))
                weight = weight * scale[:, None, None, None]
                bias = shift if bias is None else bias * scale + shift
                folded = True
                cursor += 1
            relu = isinstance(_at(cursor), ReLU)
            if relu:
                cursor += 1
            conv_cls = (
                PackedConvOp
                if bitpack and signed and not folded and isinstance(module, BinaryConv2d)
                else ConvOp
            )
            ops.append(
                conv_cls(
                    weight,
                    bias,
                    stride=module.stride,
                    padding=module.padding,
                    relu=relu,
                    dtype=dtype,
                )
            )
            signed = False
            index = cursor
            continue

        if isinstance(module, (Linear, BinaryLinear)):
            weight, bias = _linear_weights(module)
            folded = False
            cursor = index + 1
            if isinstance(_at(cursor), BatchNorm1d) and not isinstance(
                _at(cursor + 1), BinaryActivation
            ):
                scale, shift = _bn_scale_shift(_at(cursor))
                weight = weight * scale[:, None]
                bias = shift if bias is None else bias * scale + shift
                folded = True
                cursor += 1
            relu = isinstance(_at(cursor), ReLU)
            if relu:
                cursor += 1
            linear_cls = (
                PackedLinearOp
                if bitpack and signed and not folded and isinstance(module, BinaryLinear)
                else LinearOp
            )
            ops.append(linear_cls(weight, bias, relu=relu, dtype=dtype))
            signed = False
            index = cursor
            continue

        if isinstance(module, (BatchNorm1d, BatchNorm2d)):
            follower = _at(index + 1)
            sign = isinstance(follower, BinaryActivation)
            relu = (not sign) and isinstance(follower, ReLU)
            shape = (
                (1, module.num_features)
                if isinstance(module, BatchNorm1d)
                else (1, module.num_features, 1, 1)
            )
            std = np.sqrt(np.asarray(module.running_var, dtype=np.float64) + module.eps)
            ops.append(
                BatchNormOp(
                    mean=np.asarray(module.running_mean, dtype=np.float64).reshape(shape),
                    std=std.reshape(shape),
                    gamma=np.asarray(module.gamma.data, dtype=np.float64).reshape(shape),
                    beta=np.asarray(module.beta.data, dtype=np.float64).reshape(shape),
                    sign=sign,
                    relu=relu,
                    dtype=dtype,
                )
            )
            signed = sign
            index += 2 if (sign or relu) else 1
            continue

        if isinstance(module, MaxPool2d):
            ops.append(MaxPoolOp(module.kernel_size, module.stride, module.padding))
            # max over ±1 values (and a -inf border that never wins) is ±1.
        elif isinstance(module, AvgPool2d):
            ops.append(AvgPoolOp(module.kernel_size, module.stride, module.padding))
            signed = False
        elif isinstance(module, ReLU):
            ops.append(ReluOp())
            signed = False
        elif isinstance(module, BinaryActivation):
            ops.append(SignOp())
            signed = True
        elif isinstance(module, Sigmoid):
            ops.append(SigmoidOp())
            signed = False
        elif isinstance(module, Tanh):
            ops.append(TanhOp())
            signed = False
        elif isinstance(module, Flatten):
            ops.append(FlattenOp())
            # a reshape neither creates nor destroys ±1-ness.
        else:
            raise CompileError(
                f"cannot compile module of type {type(module).__name__}; "
                "supported: Conv2d/BinaryConv2d, Linear/BinaryLinear, "
                "MaxPool2d/AvgPool2d, BatchNorm1d/2d, ReLU/Sigmoid/Tanh/"
                "BinaryActivation, Flatten, Identity, Sequential, "
                "ConvPBlock, FCBlock"
            )
        index += 1

    return ops, signed


class CompiledPlan:
    """A fused/folded inference program over raw ``np.ndarray``s.

    The plan snapshots the module's weights at compile time (inference
    semantics: BatchNorm always uses running statistics).  Buffers live in a
    private :class:`Arena` keyed by batch shape: the first forward with a
    new input shape prepares a program (binding buffers per op) which is
    then cached, so every later forward with that shape — including after
    switching to other shapes in between — runs with zero preparation work.
    The returned array is a view into the plan's output buffer — valid
    until the next forward call with the same batch shape.
    """

    def __init__(
        self,
        module: ModuleLike,
        name: str = "",
        precision: str = "float64",
        input_signed: bool = False,
    ) -> None:
        self.name = name
        self.precision = precision
        self.dtype = precision_dtype(precision)
        self.ops, self.output_signed = build_ops(
            flatten_modules(module), precision=precision, input_signed=input_signed
        )
        self._arena = Arena(dtype=self.dtype)
        #: shape -> (list of (op, context) pairs, output shape)
        self._programs: dict = {}
        self._planned_shape: Optional[Tuple[int, ...]] = None
        self.output_shape: Optional[Tuple[int, ...]] = None
        # Per-op wall-time accumulation (opt-in; the untimed forward loop
        # stays free of clock calls).
        self._timed = False
        self._op_seconds = np.zeros(len(self.ops))
        self._op_calls = np.zeros(len(self.ops), dtype=np.int64)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"CompiledPlan({len(self.ops)} ops{label})"

    def _program_for(self, shape: Tuple[int, ...]):
        program = self._programs.get(shape)
        if program is None:
            current = tuple(shape)
            steps = []
            for index, op in enumerate(self.ops):
                context = op.prepare(current, self._arena, index)
                steps.append((op, context))
                current = context.output_shape
            program = (steps, current)
            self._programs[shape] = program
        self._planned_shape = tuple(shape)
        self.output_shape = program[1]
        return program

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=self.dtype)
        steps, _ = self._program_for(out.shape)
        if self._timed:
            return self._forward_timed(out, steps)
        for op, context in steps:
            out = op.run(out, context)
        return out

    __call__ = forward

    def _forward_timed(self, out: np.ndarray, steps) -> np.ndarray:
        for index, (op, context) in enumerate(steps):
            started = time.perf_counter()
            out = op.run(out, context)
            self._op_seconds[index] += time.perf_counter() - started
            self._op_calls[index] += 1
        return out

    # -- operator timing hook ------------------------------------------- #
    def enable_timing(self) -> None:
        """Accumulate per-op wall time on every subsequent forward."""
        self._timed = True

    def disable_timing(self) -> None:
        self._timed = False

    def reset_timing(self) -> None:
        """Zero the accumulated per-op counters (keeps timing enabled/disabled)."""
        self._op_seconds[:] = 0.0
        self._op_calls[:] = 0

    @property
    def total_time_s(self) -> float:
        """Total accumulated op wall time since the last reset."""
        return float(self._op_seconds.sum())

    def op_timings(self) -> List[OpTiming]:
        """Per-op accumulated timings, in op order."""
        return [
            OpTiming(
                plan=self.name,
                index=index,
                op=type(op).__name__,
                calls=int(self._op_calls[index]),
                total_s=float(self._op_seconds[index]),
            )
            for index, op in enumerate(self.ops)
        ]


def compile_plan(
    module: ModuleLike,
    name: str = "",
    precision: str = "float64",
    input_signed: bool = False,
) -> CompiledPlan:
    """Compile a module (or list of modules) into a :class:`CompiledPlan`.

    ``precision`` selects the compute mode (see ``repro.compile.ops.
    PRECISIONS``); ``input_signed`` tells the compiler the plan's input is
    provably ±1 (a cross-plan fact — e.g. a classifier fed by a signed
    feature extractor), unlocking bitpacked kernels for a leading binary
    layer in ``"bitpacked"`` mode.
    """
    return CompiledPlan(module, name=name, precision=precision, input_signed=input_signed)
