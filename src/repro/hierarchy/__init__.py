"""``repro.hierarchy`` — distributed computing hierarchy simulator.

The simulator substitutes for the physical deployment used by the paper
(end devices, edge gateways and cloud servers connected by a
bandwidth-constrained wireless network).  It provides:

* compute nodes (:class:`EndDeviceNode`, :class:`EdgeComputeNode`,
  :class:`CloudComputeNode`, :class:`AggregatorNode`) holding the DDNN
  sections mapped onto them;
* a :class:`NetworkFabric` of links with byte and latency accounting;
* :func:`partition_ddnn` to map a trained DDNN onto nodes and links, now a
  thin shim over :class:`PartitionPlan` — a first-class mutable description
  of the mapping (section boundary per tier, node/link specs, worker
  counts, autoscale watermarks, replicas) that
  :meth:`~repro.serving.fabric.DistributedServingFabric.apply_plan` can
  swap onto a live fabric;
* :class:`HierarchyRuntime` which executes the paper's staged inference
  procedure over the simulated deployment;
* fault injection (:class:`FaultPlan`) and per-sample telemetry.
"""

from .faults import (
    ChaosSchedule,
    FaultPlan,
    LinkFlap,
    LinkLoss,
    LinkOutage,
    WorkerCrash,
    random_failures,
    single_device_failures,
)
from .network import LinkStats, Message, NetworkFabric, NetworkLink
from .node import (
    AggregatorNode,
    CloudComputeNode,
    ComputeNode,
    EdgeComputeNode,
    EndDeviceNode,
    NodeStats,
)
from .partition import (
    CLOUD_NAME,
    DEFAULT_EDGE_LINK,
    DEFAULT_LOCAL_LINK,
    DEFAULT_UPLINK,
    LOCAL_AGGREGATOR_NAME,
    HierarchyDeployment,
    LinkSpec,
    partition_ddnn,
)
from .plan import AutoscalePolicy, PartitionPlan
from .runtime import DistributedInferenceResult, HierarchyRuntime
from .sections import (
    CloudTierSection,
    DeviceTierSection,
    EdgeTierSection,
    SectionResult,
    TierSection,
    TransferResult,
    build_tier_sections,
)
from .telemetry import SampleTrace, Telemetry, TelemetrySummary

__all__ = [
    "Message",
    "NetworkLink",
    "NetworkFabric",
    "LinkStats",
    "ComputeNode",
    "EndDeviceNode",
    "EdgeComputeNode",
    "CloudComputeNode",
    "AggregatorNode",
    "NodeStats",
    "LinkSpec",
    "HierarchyDeployment",
    "partition_ddnn",
    "PartitionPlan",
    "AutoscalePolicy",
    "LOCAL_AGGREGATOR_NAME",
    "CLOUD_NAME",
    "DEFAULT_LOCAL_LINK",
    "DEFAULT_UPLINK",
    "DEFAULT_EDGE_LINK",
    "HierarchyRuntime",
    "DistributedInferenceResult",
    "TierSection",
    "DeviceTierSection",
    "EdgeTierSection",
    "CloudTierSection",
    "SectionResult",
    "TransferResult",
    "build_tier_sections",
    "FaultPlan",
    "single_device_failures",
    "random_failures",
    "ChaosSchedule",
    "LinkOutage",
    "LinkFlap",
    "LinkLoss",
    "WorkerCrash",
    "SampleTrace",
    "Telemetry",
    "TelemetrySummary",
]
