"""Fault injection for the hierarchy simulator (paper Section IV-G).

The paper studies fault tolerance by removing end devices and measuring the
accuracy of the remaining system.  Two ways of modelling a dead device are
provided, matching the two places failures can be applied:

* **dataset-level** — :meth:`repro.datasets.MVMCDataset.with_failed_devices`
  replaces the device's views with blank frames, which is what the trained
  network sees for "object not present" and is the modelling used for the
  accuracy numbers (Fig. 10);
* **runtime-level** — :class:`FaultPlan` marks simulator nodes as failed so
  they stop transmitting, which exercises the distributed runtime's handling
  of missing inputs (zero contribution).

Both of those are *static*: the fault set is fixed before the run starts.
:class:`ChaosSchedule` adds the third, *temporal* axis — timed fault events
(link outages and flap windows, per-message loss probability, worker
crash/restart windows, whole-tier blackouts, network partitions) that the
serving fabric applies on its injectable clock.  A schedule is pure data
plus a seeded RNG for the loss draws, so on the simulated backend the same
seed replays the same chaos byte for byte; :meth:`ChaosSchedule.reset`
restores the RNG for an identical re-run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

__all__ = [
    "FaultPlan",
    "single_device_failures",
    "random_failures",
    "LinkOutage",
    "LinkFlap",
    "LinkLoss",
    "WorkerCrash",
    "ChaosSchedule",
]


@dataclass
class FaultPlan:
    """Which nodes fail, and (optionally) when.

    Attributes
    ----------
    failed_devices:
        Indices of end devices that are offline for the whole run.
    failed_edges:
        Indices of edge nodes that are offline for the whole run.
    intermittent:
        Mapping from device index to the probability that the device fails to
        deliver a given sample (models a flaky wireless link rather than a
        dead camera).
    seed:
        Seed for sampling intermittent failures.
    """

    failed_devices: Set[int] = field(default_factory=set)
    failed_edges: Set[int] = field(default_factory=set)
    intermittent: Dict[int, float] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        self.failed_devices = set(int(i) for i in self.failed_devices)
        self.failed_edges = set(int(i) for i in self.failed_edges)
        for device, probability in self.intermittent.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"intermittent failure probability for device {device} "
                    f"must be in [0, 1], got {probability}"
                )
        self._rng = np.random.default_rng(self.seed)

    def device_is_down(self, device_index: int) -> bool:
        """True if a device is permanently failed."""
        return device_index in self.failed_devices

    def edge_is_down(self, edge_index: int) -> bool:
        """True if an edge node is permanently failed."""
        return edge_index in self.failed_edges

    def sample_delivery(self, device_index: int) -> bool:
        """Draw whether a device delivers the current sample."""
        if self.device_is_down(device_index):
            return False
        probability = self.intermittent.get(device_index, 0.0)
        if probability <= 0.0:
            return True
        return bool(self._rng.random() >= probability)

    def reset(self) -> "FaultPlan":
        """Restore the intermittent-draw RNG to its freshly-seeded state.

        :meth:`sample_delivery` consumes the plan's RNG, so a plan reused
        across two runs would otherwise give the second run a *different*
        intermittent-failure realisation than a fresh plan with the same
        seed.  Callers that replay a plan (the hierarchy runtime does, at
        the top of every ``run()``) reset it first so every run sees the
        same draws.  Returns ``self`` for chaining.
        """
        self._rng = np.random.default_rng(self.seed)
        return self

    def is_empty(self) -> bool:
        return not self.failed_devices and not self.failed_edges and not self.intermittent


def single_device_failures(num_devices: int) -> List[FaultPlan]:
    """One fault plan per device, each failing exactly that device (Fig. 10)."""
    return [FaultPlan(failed_devices={index}) for index in range(num_devices)]


def random_failures(
    num_devices: int, num_failed: int, seed: int = 0
) -> FaultPlan:
    """A fault plan with ``num_failed`` devices chosen uniformly at random."""
    if not 0 <= num_failed <= num_devices:
        raise ValueError("num_failed must be between 0 and num_devices")
    rng = np.random.default_rng(seed)
    failed = rng.choice(num_devices, size=num_failed, replace=False)
    return FaultPlan(failed_devices=set(int(i) for i in failed), seed=seed)


# --------------------------------------------------------------------------- #
# Runtime chaos: timed fault events for the serving fabric.
# --------------------------------------------------------------------------- #

#: Wildcard endpoint matching any link source/destination.
ANY = "*"


def _check_window(start: float, end: float, what: str) -> None:
    if math.isnan(start) or math.isnan(end):
        raise ValueError(f"{what} window must not be NaN")
    if not end > start:
        raise ValueError(f"{what} window must satisfy end > start, got [{start}, {end})")


def _endpoint_match(pattern: str, name: str) -> bool:
    return pattern == ANY or pattern == name


@dataclass(frozen=True)
class LinkOutage:
    """A link (or partition of links) is completely dark on ``[start, end)``.

    Endpoints match the *tier-level* names the serving fabric offloads
    between (e.g. ``"devices" -> "cloud"``); ``"*"`` matches anything, so
    ``LinkOutage(destination="cloud")`` is a cloud partition — every uplink
    into the cloud tier is dark — and the default arguments give a total
    network blackout.
    """

    source: str = ANY
    destination: str = ANY
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "outage")

    def active(self, source: str, destination: str, t: float) -> bool:
        return (
            _endpoint_match(self.source, source)
            and _endpoint_match(self.destination, destination)
            and self.start <= t < self.end
        )


@dataclass(frozen=True)
class LinkFlap:
    """A link that goes dark periodically: down for ``down_s`` out of every
    ``period_s``, phase-aligned to ``start``, while ``start <= t < end``."""

    period_s: float
    down_s: float
    source: str = ANY
    destination: str = ANY
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "flap")
        if not self.period_s > 0.0:
            raise ValueError(f"flap period_s must be > 0, got {self.period_s}")
        if not 0.0 < self.down_s < self.period_s:
            raise ValueError(
                f"flap down_s must be in (0, period_s), got {self.down_s} "
                f"for period {self.period_s}"
            )

    def active(self, source: str, destination: str, t: float) -> bool:
        if not (
            _endpoint_match(self.source, source)
            and _endpoint_match(self.destination, destination)
            and self.start <= t < self.end
        ):
            return False
        return (t - self.start) % self.period_s < self.down_s


@dataclass(frozen=True)
class LinkLoss:
    """Each message over a matching link is lost with ``probability`` while
    ``start <= t < end`` (a lossy, but up, link)."""

    probability: float
    source: str = ANY
    destination: str = ANY
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "loss")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"loss probability must be in [0, 1], got {self.probability}"
            )

    def active(self, source: str, destination: str, t: float) -> bool:
        return (
            _endpoint_match(self.source, source)
            and _endpoint_match(self.destination, destination)
            and self.start <= t < self.end
        )


@dataclass(frozen=True)
class WorkerCrash:
    """``workers`` worker slots of tier ``tier`` are offline on ``[start, end)``.

    ``workers=None`` means *all* of them — a whole-tier blackout.  Crashed
    workers restart when the window closes.  The fabric applies crashes at
    batch boundaries: a worker mid-batch finishes that batch, then goes
    dark (the simulator has no notion of half-computed work to lose).
    """

    tier: str
    start: float
    end: float
    workers: Optional[int] = None

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "crash")
        if not (math.isfinite(self.start) and math.isfinite(self.end)):
            raise ValueError("crash windows must be finite (workers must restart)")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"crash workers must be >= 1 or None, got {self.workers}")

    def active(self, tier: str, t: float) -> bool:
        return self.tier == tier and self.start <= t < self.end


class ChaosSchedule:
    """A deterministic timetable of runtime faults for the serving fabric.

    The schedule is consulted by :meth:`NetworkFabric.delivery
    <repro.hierarchy.network.NetworkFabric.delivery>` for every offload
    message (is the link up? did the message survive the loss draw?) and by
    the fabric's pre-scheduled worker-chaos events (how many workers of
    this tier are down right now?).  All state lives in the event
    definitions plus one seeded RNG for loss draws, so on the simulated
    backend the same schedule + seed reproduces the same fault realisation
    byte for byte; :meth:`reset` rewinds the RNG for an identical re-run.
    """

    def __init__(
        self,
        outages: Sequence[LinkOutage] = (),
        flaps: Sequence[LinkFlap] = (),
        losses: Sequence[LinkLoss] = (),
        crashes: Sequence[WorkerCrash] = (),
        seed: int = 0,
    ) -> None:
        self.outages: Tuple[LinkOutage, ...] = tuple(outages)
        self.flaps: Tuple[LinkFlap, ...] = tuple(flaps)
        self.losses: Tuple[LinkLoss, ...] = tuple(losses)
        self.crashes: Tuple[WorkerCrash, ...] = tuple(crashes)
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)

    def reset(self) -> "ChaosSchedule":
        """Rewind the loss-draw RNG to its seeded state (fresh-run semantics)."""
        self._rng = np.random.default_rng(self.seed)
        return self

    def is_empty(self) -> bool:
        return not (self.outages or self.flaps or self.losses or self.crashes)

    def horizon_s(self) -> float:
        """Latest finite event boundary in the timetable (0.0 when empty).

        Wall-clock chaos runs size their workload and tolerance windows off
        this: after the horizon the schedule is in its final (typically
        fault-free) regime, so a run that extends past it is guaranteed a
        recovery phase.  Unbounded windows (``end=inf``) contribute their
        *start* only — the fault never clears, so there is nothing to wait
        for beyond its onset.
        """
        horizon = 0.0
        for event in (*self.outages, *self.flaps, *self.losses):
            horizon = max(horizon, event.start)
            if math.isfinite(event.end):
                horizon = max(horizon, event.end)
        for crash in self.crashes:
            horizon = max(horizon, crash.end)  # crash windows are always finite
        return horizon

    @property
    def has_link_chaos(self) -> bool:
        """True when any event can darken a link or lose a message."""
        return bool(self.outages or self.flaps or self.losses)

    # -- links ---------------------------------------------------------- #
    def link_up(self, source: str, destination: str, t: float) -> bool:
        """False while any outage or flap down-phase covers the link at ``t``."""
        for outage in self.outages:
            if outage.active(source, destination, t):
                return False
        for flap in self.flaps:
            if flap.active(source, destination, t):
                return False
        return True

    def loss_probability(self, source: str, destination: str, t: float) -> float:
        """Combined loss probability of all active loss events (independent)."""
        survive = 1.0
        for loss in self.losses:
            if loss.active(source, destination, t):
                survive *= 1.0 - loss.probability
        return 1.0 - survive

    def sample_loss(self, source: str, destination: str, t: float) -> bool:
        """Draw whether a message on the link at ``t`` is lost.

        Consumes one RNG draw only when a loss event is active, so runs
        whose loss windows never overlap traffic stay draw-for-draw
        comparable with loss-free runs.
        """
        probability = self.loss_probability(source, destination, t)
        if probability <= 0.0:
            return False
        return bool(self._rng.random() < probability)

    # -- workers -------------------------------------------------------- #
    def workers_down(self, tier: str, t: float, pool_size: int) -> int:
        """Number of ``tier``'s workers offline at ``t``, capped at the pool."""
        down = 0
        for crash in self.crashes:
            if crash.active(tier, t):
                down += pool_size if crash.workers is None else crash.workers
        return min(down, pool_size)

    def worker_event_times(self, tier: str) -> List[float]:
        """Sorted boundary instants where ``tier``'s offline count can change.

        The fabric pre-schedules one re-evaluation event per boundary, which
        is all it takes to track the schedule exactly — the offline count is
        piecewise constant between boundaries.
        """
        times = set()
        for crash in self.crashes:
            if crash.tier == tier:
                times.add(float(crash.start))
                times.add(float(crash.end))
        return sorted(times)
