"""Fault injection for the hierarchy simulator (paper Section IV-G).

The paper studies fault tolerance by removing end devices and measuring the
accuracy of the remaining system.  Two ways of modelling a dead device are
provided, matching the two places failures can be applied:

* **dataset-level** — :meth:`repro.datasets.MVMCDataset.with_failed_devices`
  replaces the device's views with blank frames, which is what the trained
  network sees for "object not present" and is the modelling used for the
  accuracy numbers (Fig. 10);
* **runtime-level** — :class:`FaultPlan` marks simulator nodes as failed so
  they stop transmitting, which exercises the distributed runtime's handling
  of missing inputs (zero contribution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

__all__ = ["FaultPlan", "single_device_failures", "random_failures"]


@dataclass
class FaultPlan:
    """Which nodes fail, and (optionally) when.

    Attributes
    ----------
    failed_devices:
        Indices of end devices that are offline for the whole run.
    failed_edges:
        Indices of edge nodes that are offline for the whole run.
    intermittent:
        Mapping from device index to the probability that the device fails to
        deliver a given sample (models a flaky wireless link rather than a
        dead camera).
    seed:
        Seed for sampling intermittent failures.
    """

    failed_devices: Set[int] = field(default_factory=set)
    failed_edges: Set[int] = field(default_factory=set)
    intermittent: Dict[int, float] = field(default_factory=dict)
    seed: int = 0

    def __post_init__(self) -> None:
        self.failed_devices = set(int(i) for i in self.failed_devices)
        self.failed_edges = set(int(i) for i in self.failed_edges)
        for device, probability in self.intermittent.items():
            if not 0.0 <= probability <= 1.0:
                raise ValueError(
                    f"intermittent failure probability for device {device} "
                    f"must be in [0, 1], got {probability}"
                )
        self._rng = np.random.default_rng(self.seed)

    def device_is_down(self, device_index: int) -> bool:
        """True if a device is permanently failed."""
        return device_index in self.failed_devices

    def edge_is_down(self, edge_index: int) -> bool:
        """True if an edge node is permanently failed."""
        return edge_index in self.failed_edges

    def sample_delivery(self, device_index: int) -> bool:
        """Draw whether a device delivers the current sample."""
        if self.device_is_down(device_index):
            return False
        probability = self.intermittent.get(device_index, 0.0)
        if probability <= 0.0:
            return True
        return bool(self._rng.random() >= probability)

    def is_empty(self) -> bool:
        return not self.failed_devices and not self.failed_edges and not self.intermittent


def single_device_failures(num_devices: int) -> List[FaultPlan]:
    """One fault plan per device, each failing exactly that device (Fig. 10)."""
    return [FaultPlan(failed_devices={index}) for index in range(num_devices)]


def random_failures(
    num_devices: int, num_failed: int, seed: int = 0
) -> FaultPlan:
    """A fault plan with ``num_failed`` devices chosen uniformly at random."""
    if not 0 <= num_failed <= num_devices:
        raise ValueError("num_failed must be between 0 and num_devices")
    rng = np.random.default_rng(seed)
    failed = rng.choice(num_devices, size=num_failed, replace=False)
    return FaultPlan(failed_devices=set(int(i) for i in failed), seed=seed)
