"""Compute nodes of the distributed hierarchy (end devices, edge, cloud).

Each node owns the NN section mapped onto it (a reference into the trained
:class:`~repro.core.ddnn.DDNN`) plus a simple compute-speed model used to
estimate per-sample processing latency.  The byte-level communication is
handled by :class:`~repro.hierarchy.network.NetworkFabric`; nodes only expose
the sizes of the payloads they emit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.aggregation import Aggregator
from ..core.communication import BITS_PER_BYTE, FLOAT_BYTES
from ..core.ddnn import CloudModel, DeviceBranch, EdgeModel
from ..nn.tensor import Tensor, no_grad

__all__ = ["NodeStats", "ComputeNode", "EndDeviceNode", "AggregatorNode", "EdgeComputeNode", "CloudComputeNode"]


@dataclass
class NodeStats:
    """Work performed by a node since the last reset."""

    samples_processed: int = 0
    compute_seconds: float = 0.0
    bytes_sent: float = 0.0

    def reset(self) -> None:
        self.samples_processed = 0
        self.compute_seconds = 0.0
        self.bytes_sent = 0.0


class ComputeNode:
    """Base class: a named node with a crude compute-latency model.

    Parameters
    ----------
    name:
        Unique node name, also used as the network address.
    ops_per_second:
        Sustained multiply-accumulate throughput used to convert a section's
        parameter count into per-sample compute latency.  End devices default
        to a value four orders of magnitude below the cloud, reflecting
        microcontroller-class hardware.
    """

    def __init__(self, name: str, ops_per_second: float = 1e9) -> None:
        if ops_per_second <= 0:
            raise ValueError("ops_per_second must be positive")
        self.name = name
        self.ops_per_second = ops_per_second
        self.stats = NodeStats()
        self.failed = False
        # Stats counters are read-modify-write; concurrent worker threads
        # (the serving fabric's thread backend) share the node objects, so
        # accounting is serialized to keep the totals exact.
        self._stats_lock = threading.Lock()

    def fail(self) -> None:
        """Mark this node as failed; it stops producing output."""
        self.failed = True

    def restore(self) -> None:
        """Clear the failure flag."""
        self.failed = False

    def _account(self, operations: float, samples: int = 1) -> float:
        seconds = operations / self.ops_per_second
        with self._stats_lock:
            self.stats.samples_processed += samples
            self.stats.compute_seconds += seconds
        return seconds

    def record_bytes_sent(self, size: float) -> None:
        """Add to the node's bytes-sent counter (thread-safe)."""
        with self._stats_lock:
            self.stats.bytes_sent += size

    def reset_stats(self) -> None:
        with self._stats_lock:
            self.stats.reset()

    def __repr__(self) -> str:
        status = "failed" if self.failed else "ok"
        return f"{type(self).__name__}(name={self.name!r}, status={status})"


class EndDeviceNode(ComputeNode):
    """An end device holding one :class:`~repro.core.ddnn.DeviceBranch`.

    Per sample it produces two payloads:

    * a class-score summary of ``4 * |C|`` bytes sent to the local aggregator
      for every sample, and
    * a binarized feature map of ``f * o / 8`` bytes sent up the hierarchy
      only when requested (local exit not confident).
    """

    def __init__(
        self,
        name: str,
        branch: DeviceBranch,
        ops_per_second: float = 5e7,
    ) -> None:
        super().__init__(name, ops_per_second)
        self.branch = branch
        #: Optional :class:`~repro.compile.CompiledBranch`; when set, the
        #: node's forwards run the fused inference plan instead of the
        #: eager autograd stack (same outputs, no Tensor wrapping).
        self.compiled = None

    # -- payload sizes -------------------------------------------------- #
    def summary_bytes(self) -> float:
        """Size of the per-sample class-score message (first term of Eq. 1)."""
        return FLOAT_BYTES * self.branch.num_classes

    def feature_bytes(self) -> float:
        """Size of the binarized feature-map message (second term of Eq. 1)."""
        elements = self.branch.output_channels * self.branch.output_size ** 2
        return elements / BITS_PER_BYTE

    def raw_input_bytes(self) -> float:
        """Size of the raw sensor input (cloud-offloading baseline payload)."""
        return float(self.branch.in_channels * self.branch.input_size ** 2)

    # -- compute --------------------------------------------------------- #
    def process(self, view: np.ndarray) -> Tuple[np.ndarray, np.ndarray, float]:
        """Run the device's NN section on one view (or a batch of views).

        Returns ``(feature_map, class_scores, compute_seconds)``.  A failed
        device returns zero scores and a zero feature map: it transmits
        nothing useful, which is how the fault-tolerance experiment models a
        dead camera.
        """
        view = np.asarray(view, dtype=np.float64)
        if view.ndim == 3:
            view = view[None, ...]
        batch = len(view)
        if self.failed:
            features = np.zeros(
                (batch, self.branch.output_channels, self.branch.output_size, self.branch.output_size)
            )
            scores = np.zeros((batch, self.branch.num_classes))
            return features, scores, 0.0
        if self.compiled is not None:
            feature_data, score_data = self.compiled(view)
        else:
            with no_grad():
                feature_map, scores = self.branch(Tensor(view))
            feature_data, score_data = feature_map.data, scores.data
        operations = self.branch.num_parameters() * batch
        seconds = self._account(operations, samples=batch)
        return feature_data, score_data, seconds


class AggregatorNode(ComputeNode):
    """A (local or upper-tier) aggregator plus exit classifier host.

    The local aggregator is a lightweight gateway process: it fuses the
    per-device class-score vectors and applies the entropy-threshold rule.
    Aggregation work is negligible, so the default throughput is high.
    """

    def __init__(self, name: str, aggregator: Aggregator, ops_per_second: float = 1e9) -> None:
        super().__init__(name, ops_per_second)
        self.aggregator = aggregator
        #: Optional compiled aggregator function (see :func:`repro.compile.compile_aggregator`).
        self.compiled = None

    def aggregate(self, device_outputs: Sequence[np.ndarray]) -> Tuple[np.ndarray, float]:
        """Fuse device outputs; returns ``(fused_array, compute_seconds)``."""
        arrays = [np.asarray(output, dtype=np.float64) for output in device_outputs]
        if self.compiled is not None:
            fused_data = self.compiled(arrays)
        else:
            with no_grad():
                fused_data = self.aggregator([Tensor(array) for array in arrays]).data
        operations = sum(array.size for array in arrays)
        seconds = self._account(operations, samples=len(arrays[0]))
        return fused_data, seconds


class EdgeComputeNode(ComputeNode):
    """An edge (fog) node holding an :class:`~repro.core.ddnn.EdgeModel`."""

    def __init__(
        self,
        name: str,
        aggregator: Aggregator,
        model: EdgeModel,
        device_indices: Sequence[int],
        ops_per_second: float = 5e9,
    ) -> None:
        super().__init__(name, ops_per_second)
        self.aggregator = aggregator
        self.model = model
        self.device_indices = list(device_indices)
        #: Optional compiled aggregator / tier (see :mod:`repro.compile`).
        self.compiled_aggregator = None
        self.compiled_tier = None

    def feature_bytes(self) -> float:
        """Size of the binarized feature map this edge forwards to the cloud."""
        elements = self.model.output_channels * self.model.output_size ** 2
        return elements / BITS_PER_BYTE

    def process(self, device_features: Sequence[np.ndarray]) -> Tuple[np.ndarray, np.ndarray, float]:
        """Aggregate its devices' features and run the edge NN section."""
        arrays = [np.asarray(f, dtype=np.float64) for f in device_features]
        if self.compiled_aggregator is not None and self.compiled_tier is not None:
            aggregated = self.compiled_aggregator(arrays)
            feature_data, logit_data = self.compiled_tier(aggregated)
        else:
            with no_grad():
                aggregated = self.aggregator([Tensor(array) for array in arrays])
                feature_map, logits = self.model(aggregated)
            feature_data, logit_data = feature_map.data, logits.data
        batch = len(arrays[0])
        operations = self.model.num_parameters() * batch
        seconds = self._account(operations, samples=batch)
        return feature_data, logit_data, seconds


class CloudComputeNode(ComputeNode):
    """The cloud node holding the final aggregator and the cloud NN section."""

    def __init__(
        self,
        name: str,
        aggregator: Aggregator,
        model: CloudModel,
        ops_per_second: float = 5e10,
    ) -> None:
        super().__init__(name, ops_per_second)
        self.aggregator = aggregator
        self.model = model
        #: Optional compiled aggregator / tier (see :mod:`repro.compile`).
        self.compiled_aggregator = None
        self.compiled_tier = None

    def process(self, source_features: Sequence[np.ndarray]) -> Tuple[np.ndarray, float]:
        """Aggregate incoming feature maps and produce the cloud exit logits."""
        arrays = [np.asarray(f, dtype=np.float64) for f in source_features]
        if self.compiled_aggregator is not None and self.compiled_tier is not None:
            aggregated = self.compiled_aggregator(arrays)
            _, logit_data = self.compiled_tier(aggregated)
        else:
            with no_grad():
                aggregated = self.aggregator([Tensor(array) for array in arrays])
                _, logits = self.model(aggregated)
            logit_data = logits.data
        batch = len(arrays[0])
        operations = self.model.num_parameters() * batch
        seconds = self._account(operations, samples=batch)
        return logit_data, seconds
