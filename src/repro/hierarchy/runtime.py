"""Distributed inference runtime over the simulated hierarchy.

:class:`HierarchyRuntime` executes the staged DDNN inference procedure of the
paper's Section III-D over a :class:`~repro.hierarchy.partition.HierarchyDeployment`:

1. every end device runs its NN section and sends a class-score summary
   (``4 * |C|`` bytes) to the local aggregator;
2. the local aggregator fuses the summaries, computes the normalized entropy
   and exits confident samples;
3. unconfident samples trigger the devices to send their binarized feature
   maps to the next tier (edge if present, otherwise cloud), where further
   aggregation and NN processing happen, and so on until the cloud exit.

Since PR 4 the staged procedure itself lives in the shared tier machinery —
:mod:`repro.hierarchy.sections` decomposes the deployment into per-tier
sections and :class:`~repro.serving.fabric.DistributedServingFabric`
schedules them — and this runtime is the *offline replay* of that fabric:
the whole dataset arrives at time zero, one worker per tier drains it in
fixed-size batches, and per-sample latency is the path latency (compute +
transfer along the sample's route, no queueing), which reproduces the
original runtime's accounting exactly.  Communication is accounted per
sample so the byte counts match the paper's Eq. 1, and the predictions are
identical to :class:`~repro.core.inference.StagedInferenceEngine` running
the monolithic model (both equivalences are covered by tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.cascade import ExitCascade, Thresholds
from ..core.exits import ExitCriterion
from ..datasets.mvmc import MVMCDataset
from .faults import FaultPlan
from .partition import HierarchyDeployment
from .sections import build_tier_sections
from .telemetry import Telemetry

__all__ = ["DistributedInferenceResult", "HierarchyRuntime"]


@dataclass
class DistributedInferenceResult:
    """Outcome of a distributed inference run over the simulator."""

    predictions: np.ndarray
    exit_names_per_sample: List[str]
    latencies_s: np.ndarray
    bytes_per_sample: np.ndarray
    telemetry: Telemetry
    targets: Optional[np.ndarray] = None

    @property
    def local_exit_fraction(self) -> float:
        if not self.exit_names_per_sample:
            return 0.0
        return self.exit_names_per_sample.count("local") / len(self.exit_names_per_sample)

    def exit_fraction(self, name: str) -> float:
        if not self.exit_names_per_sample:
            return 0.0
        return self.exit_names_per_sample.count(name) / len(self.exit_names_per_sample)

    def accuracy(self, targets: Optional[np.ndarray] = None) -> float:
        targets = self.targets if targets is None else np.asarray(targets)
        if targets is None:
            raise ValueError("targets are required to compute accuracy")
        return float(np.mean(self.predictions == targets))

    def mean_bytes_per_device(self, num_devices: int) -> float:
        """Average per-device transmission per sample (comparable to Eq. 1)."""
        return float(self.bytes_per_sample.mean() / num_devices)


class HierarchyRuntime:
    """Runs threshold-based DDNN inference over simulated nodes and links.

    This is the offline (infinite-arrival-rate) replay of the distributed
    serving fabric: same tier sections, same offload messages, same byte
    and latency accounting — just with the whole dataset enqueued at once.
    """

    def __init__(
        self,
        deployment: HierarchyDeployment,
        thresholds: Thresholds,
        fault_plan: Optional[FaultPlan] = None,
        batch_size: int = 64,
        compile: bool = False,
        precision: str = "float64",
    ) -> None:
        if precision != "float64" and not compile:
            raise ValueError(
                f"precision='{precision}' requires compile=True: the eager "
                "stack always computes in float64"
            )
        self.deployment = deployment
        self.model = deployment.model
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.batch_size = batch_size
        # The cascade supplies criteria/routing; the deployment's nodes own
        # the forwards, so compiled sections are attached to them directly
        # (scoped to run(), because the deployment is shared state).
        self.cascade = ExitCascade.for_model(self.model, thresholds)
        self.compiled = None
        if compile:
            from ..compile.cache import compiled_plan_for

            self.compiled = compiled_plan_for(self.model, precision)

    @property
    def criteria(self) -> List[ExitCriterion]:
        """The cascade's per-exit criteria (final threshold forced to 1.0)."""
        return self.cascade.criteria

    # ------------------------------------------------------------------ #
    def run(self, dataset: MVMCDataset) -> DistributedInferenceResult:
        """Run distributed inference over every sample of ``dataset``.

        The deployment's nodes are shared state (several runtimes may wrap
        one deployment), so this runtime's compiled sections — snapshotted
        at construction — are attached only for the duration of the run and
        always detached afterwards.
        """
        from ..serving.batcher import BatchingPolicy
        from ..serving.fabric import DistributedServingFabric

        self.deployment.reset()
        # Fresh-run semantics: the fault plan's intermittent draws restart
        # from the seed, so replaying one runtime (or sharing one plan
        # across runtimes) sees the same failure realisation every run.
        self.fault_plan.reset()
        self._apply_permanent_faults()
        self.model.eval()
        if self.compiled is not None:
            self.deployment.attach_compiled(self.compiled)
        else:
            self.deployment.detach_compiled()

        num_samples = len(dataset)
        targets = dataset.labels
        try:
            fabric = DistributedServingFabric(
                self.deployment,
                self.cascade.thresholds,
                workers_per_tier=1,
                batching=BatchingPolicy(max_batch_size=self.batch_size, max_wait_s=0.0),
                sections=build_tier_sections(
                    self.deployment, self.fault_plan, compiled=self.compiled
                ),
            )
            responses = fabric.serve_dataset(dataset)
        finally:
            if self.compiled is not None:
                self.deployment.detach_compiled()

        predictions = np.zeros(num_samples, dtype=np.int64)
        exit_names: List[str] = [""] * num_samples
        latencies = np.zeros(num_samples, dtype=np.float64)
        bytes_per_sample = np.zeros(num_samples, dtype=np.float64)
        entropies_seen = np.zeros(num_samples, dtype=np.float64)
        for index, response in enumerate(responses):
            predictions[index] = response.prediction
            exit_names[index] = response.exit_name
            latencies[index] = response.path_latency_s
            bytes_per_sample[index] = response.bytes_transferred
            entropies_seen[index] = response.entropy

        telemetry = Telemetry()
        telemetry.record_batch(
            sample_indices=np.arange(num_samples),
            predictions=predictions,
            exit_names=exit_names,
            latencies_s=latencies,
            bytes_transferred=bytes_per_sample,
            entropies=entropies_seen,
            correct=predictions == targets,
        )

        return DistributedInferenceResult(
            predictions=predictions,
            exit_names_per_sample=exit_names,
            latencies_s=latencies,
            bytes_per_sample=bytes_per_sample,
            telemetry=telemetry,
            targets=targets,
        )

    # ------------------------------------------------------------------ #
    def _apply_permanent_faults(self) -> None:
        for index, device in enumerate(self.deployment.devices):
            if self.fault_plan.device_is_down(index):
                device.fail()
        for index, edge in enumerate(self.deployment.edges):
            if self.fault_plan.edge_is_down(index):
                edge.fail()
