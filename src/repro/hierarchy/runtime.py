"""Distributed inference runtime over the simulated hierarchy.

:class:`HierarchyRuntime` executes the staged DDNN inference procedure of the
paper's Section III-D over a :class:`~repro.hierarchy.partition.HierarchyDeployment`:

1. every end device runs its NN section and sends a class-score summary
   (``4 * |C|`` bytes) to the local aggregator;
2. the local aggregator fuses the summaries, computes the normalized entropy
   and exits confident samples;
3. unconfident samples trigger the devices to send their binarized feature
   maps to the next tier (edge if present, otherwise cloud), where further
   aggregation and NN processing happen, and so on until the cloud exit.

For efficiency the NN sections are evaluated in batches, but communication,
compute latency and exit decisions are accounted per sample, so the byte
counts match the paper's Eq. 1 exactly and the latency benefit of local exits
is visible in the telemetry.  Numerically, the runtime produces exactly the
same predictions as :class:`~repro.core.inference.StagedInferenceEngine`
running the monolithic model (this equivalence is covered by integration
tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..core.cascade import ExitCascade, Thresholds
from ..core.exits import ExitCriterion
from ..datasets.mvmc import MVMCDataset
from ..nn.tensor import Tensor, no_grad
from .faults import FaultPlan
from .network import Message
from .partition import CLOUD_NAME, LOCAL_AGGREGATOR_NAME, HierarchyDeployment
from .telemetry import Telemetry

__all__ = ["DistributedInferenceResult", "HierarchyRuntime"]


@dataclass
class DistributedInferenceResult:
    """Outcome of a distributed inference run over the simulator."""

    predictions: np.ndarray
    exit_names_per_sample: List[str]
    latencies_s: np.ndarray
    bytes_per_sample: np.ndarray
    telemetry: Telemetry
    targets: Optional[np.ndarray] = None

    @property
    def local_exit_fraction(self) -> float:
        if not self.exit_names_per_sample:
            return 0.0
        return self.exit_names_per_sample.count("local") / len(self.exit_names_per_sample)

    def exit_fraction(self, name: str) -> float:
        if not self.exit_names_per_sample:
            return 0.0
        return self.exit_names_per_sample.count(name) / len(self.exit_names_per_sample)

    def accuracy(self, targets: Optional[np.ndarray] = None) -> float:
        targets = self.targets if targets is None else np.asarray(targets)
        if targets is None:
            raise ValueError("targets are required to compute accuracy")
        return float(np.mean(self.predictions == targets))

    def mean_bytes_per_device(self, num_devices: int) -> float:
        """Average per-device transmission per sample (comparable to Eq. 1)."""
        return float(self.bytes_per_sample.mean() / num_devices)


class HierarchyRuntime:
    """Runs threshold-based DDNN inference over simulated nodes and links."""

    def __init__(
        self,
        deployment: HierarchyDeployment,
        thresholds: Thresholds,
        fault_plan: Optional[FaultPlan] = None,
        batch_size: int = 64,
        compile: bool = False,
    ) -> None:
        self.deployment = deployment
        self.model = deployment.model
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.batch_size = batch_size
        # The cascade only supplies criteria/routing here; the nodes own the
        # forwards, so the compiled sections are attached to them directly
        # (scoped to run(), because the deployment is shared state).
        self.cascade = ExitCascade.for_model(self.model, thresholds)
        self.compiled = None
        if compile:
            from ..compile import compile_ddnn

            self.compiled = compile_ddnn(self.model)

    @property
    def criteria(self) -> List[ExitCriterion]:
        """The cascade's per-exit criteria (final threshold forced to 1.0)."""
        return self.cascade.criteria

    # ------------------------------------------------------------------ #
    def run(self, dataset: MVMCDataset) -> DistributedInferenceResult:
        """Run distributed inference over every sample of ``dataset``.

        The deployment's nodes are shared state (several runtimes may wrap
        one deployment), so this runtime's compiled sections — snapshotted
        at construction — are attached only for the duration of the run and
        always detached afterwards.
        """
        self.deployment.reset()
        self._apply_permanent_faults()
        model = self.model
        model.eval()
        if self.compiled is not None:
            self.deployment.attach_compiled(self.compiled)
        else:
            self.deployment.detach_compiled()

        views = dataset.images
        targets = dataset.labels
        num_samples = len(views)

        predictions = np.zeros(num_samples, dtype=np.int64)
        exit_names: List[str] = [""] * num_samples
        latencies = np.zeros(num_samples, dtype=np.float64)
        bytes_per_sample = np.zeros(num_samples, dtype=np.float64)
        entropies_seen = np.zeros(num_samples, dtype=np.float64)
        telemetry = Telemetry()

        try:
            for start in range(0, num_samples, self.batch_size):
                stop = min(start + self.batch_size, num_samples)
                self._run_batch(
                    views[start:stop],
                    np.arange(start, stop),
                    predictions,
                    exit_names,
                    latencies,
                    bytes_per_sample,
                    entropies_seen,
                )
        finally:
            if self.compiled is not None:
                self.deployment.detach_compiled()

        telemetry.record_batch(
            sample_indices=np.arange(num_samples),
            predictions=predictions,
            exit_names=exit_names,
            latencies_s=latencies,
            bytes_transferred=bytes_per_sample,
            entropies=entropies_seen,
            correct=predictions == targets,
        )

        return DistributedInferenceResult(
            predictions=predictions,
            exit_names_per_sample=exit_names,
            latencies_s=latencies,
            bytes_per_sample=bytes_per_sample,
            telemetry=telemetry,
            targets=targets,
        )

    # ------------------------------------------------------------------ #
    def _apply_permanent_faults(self) -> None:
        for index, device in enumerate(self.deployment.devices):
            if self.fault_plan.device_is_down(index):
                device.fail()
        for index, edge in enumerate(self.deployment.edges):
            if self.fault_plan.edge_is_down(index):
                edge.fail()

    def _run_batch(
        self,
        views: np.ndarray,
        sample_indices: np.ndarray,
        predictions: np.ndarray,
        exit_names: List[str],
        latencies: np.ndarray,
        bytes_per_sample: np.ndarray,
        entropies_seen: np.ndarray,
    ) -> None:
        deployment = self.deployment
        fabric = deployment.fabric
        batch = len(views)
        num_devices = len(deployment.devices)
        router = self.cascade.router(batch)

        # -------- stage 1: end devices compute their sections ----------- #
        device_features: List[np.ndarray] = []
        device_scores: List[np.ndarray] = []
        device_latency = np.zeros((num_devices, batch))
        delivered = np.ones((num_devices, batch), dtype=bool)
        for device_index, device in enumerate(deployment.devices):
            features, scores, seconds = device.process(views[:, device_index])
            for sample in range(batch):
                if not self.fault_plan.sample_delivery(device_index):
                    delivered[device_index, sample] = False
                    features[sample] = 0.0
                    scores[sample] = 0.0
            device_features.append(features)
            device_scores.append(scores)
            device_latency[device_index, :] = seconds / max(batch, 1)

        sample_latency = np.zeros(batch)
        sample_bytes = np.zeros(batch)

        # -------- stage 2: local aggregator and local exit --------------- #
        if self.model.has_local_exit:
            aggregator = deployment.local_aggregator
            summary_latency = np.zeros(batch)
            for device_index, device in enumerate(deployment.devices):
                if device.failed:
                    continue
                summary_size = device.summary_bytes()
                for sample in range(batch):
                    if not delivered[device_index, sample]:
                        continue
                    seconds = fabric.send(
                        Message(
                            source=device.name,
                            destination=LOCAL_AGGREGATOR_NAME,
                            size_bytes=summary_size,
                            kind="class-scores",
                            sample_index=int(sample_indices[sample]),
                        ),
                        record=False,
                    )
                    device.stats.bytes_sent += summary_size
                    sample_bytes[sample] += summary_size
                    summary_latency[sample] = max(
                        summary_latency[sample], device_latency[device_index, sample] + seconds
                    )
            fused_scores, aggregate_seconds = aggregator.aggregate(device_scores)
            per_sample_aggregate = aggregate_seconds / max(batch, 1)
            sample_latency += summary_latency + per_sample_aggregate
            router.offer(fused_scores)

        # -------- stage 3: edge tier (optional) -------------------------- #
        current_sources = device_features
        source_nodes = deployment.devices
        if self.model.has_edge and router.has_remaining():
            remaining = router.remaining
            edge_features: List[np.ndarray] = []
            edge_logit_list: List[np.ndarray] = []
            edge_latency = np.zeros(batch)
            for edge in deployment.edges:
                group_features = [device_features[i] for i in edge.device_indices]
                transfer_latency = np.zeros(batch)
                for device_index in edge.device_indices:
                    device = deployment.devices[device_index]
                    if device.failed:
                        continue
                    size = device.feature_bytes()
                    for sample in np.flatnonzero(remaining):
                        if not delivered[device_index, sample]:
                            continue
                        seconds = fabric.send(
                            Message(
                                source=device.name,
                                destination=edge.name,
                                size_bytes=size,
                                kind="features",
                                sample_index=int(sample_indices[sample]),
                            ),
                            record=False,
                        )
                        device.stats.bytes_sent += size
                        sample_bytes[sample] += size
                        transfer_latency[sample] = max(transfer_latency[sample], seconds)
                features, logits, seconds = edge.process(group_features)
                edge_features.append(features)
                edge_logit_list.append(logits)
                edge_latency = np.maximum(edge_latency, transfer_latency + seconds / max(batch, 1))

            if len(edge_logit_list) == 1:
                edge_logits = edge_logit_list[0]
            elif self.compiled is not None:
                edge_logits = self.compiled.edge_exit_aggregator(edge_logit_list)
            else:
                with no_grad():
                    edge_logits = self.model.edge_exit_aggregator(
                        [Tensor(l) for l in edge_logit_list]
                    ).data
            sample_latency[remaining] += edge_latency[remaining]
            router.offer(edge_logits)
            current_sources = edge_features
            source_nodes = deployment.edges

        # -------- stage 4: cloud ------------------------------------------ #
        if router.has_remaining():
            remaining = router.remaining
            cloud = deployment.cloud
            transfer_latency = np.zeros(batch)
            for node in source_nodes:
                if node.failed:
                    continue
                size = node.feature_bytes()
                for sample in np.flatnonzero(remaining):
                    if hasattr(node, "device_indices"):
                        pass  # edges always forward once they are alive
                    elif not delivered[source_nodes.index(node), sample]:
                        continue
                    seconds = fabric.send(
                        Message(
                            source=node.name,
                            destination=CLOUD_NAME,
                            size_bytes=size,
                            kind="features",
                            sample_index=int(sample_indices[sample]),
                        ),
                        record=False,
                    )
                    node.stats.bytes_sent += size
                    sample_bytes[sample] += size
                    transfer_latency[sample] = max(transfer_latency[sample], seconds)

            cloud_logits, seconds = cloud.process(current_sources)
            per_sample_cloud = seconds / max(batch, 1)
            sample_latency[remaining] += transfer_latency[remaining] + per_sample_cloud
            router.offer(cloud_logits)

        predictions[sample_indices] = router.predictions
        entropies_seen[sample_indices] = router.entropies
        cascade_names = self.cascade.exit_names
        for offset, exit_idx in enumerate(router.exit_indices.tolist()):
            exit_names[sample_indices[offset]] = cascade_names[exit_idx]
        latencies[sample_indices] = sample_latency
        bytes_per_sample[sample_indices] = sample_bytes
