"""Mapping a trained DDNN onto simulated hierarchy nodes.

The partitioning follows the paper directly: each device branch is placed on
its own end-device node, the local aggregator runs on a gateway physically
close to the devices, the optional edge models run on edge nodes, and the
cloud aggregator plus cloud model run on the cloud node.  Links mirror the
physical topology: a fast local link from devices to the gateway, a
constrained uplink from devices (or edges) towards the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.ddnn import DDNN
from .network import NetworkFabric
from .node import AggregatorNode, CloudComputeNode, EdgeComputeNode, EndDeviceNode

__all__ = ["LinkSpec", "HierarchyDeployment", "partition_ddnn"]

LOCAL_AGGREGATOR_NAME = "local-aggregator"
CLOUD_NAME = "cloud"


@dataclass(frozen=True)
class LinkSpec:
    """Bandwidth / latency pair used when wiring the fabric."""

    bandwidth_bytes_per_s: float
    latency_s: float

    def connect(self, fabric: NetworkFabric, source: str, destination: str):
        """Create and register a link with this spec's parameters."""
        return fabric.connect(
            source,
            destination,
            bandwidth_bytes_per_s=self.bandwidth_bytes_per_s,
            latency_s=self.latency_s,
        )

    def retune(self, link) -> None:
        """Point an existing link at this spec's parameters (stats stay)."""
        link.bandwidth_bytes_per_s = self.bandwidth_bytes_per_s
        link.latency_s = self.latency_s


#: Device -> gateway: a short-range local link.
DEFAULT_LOCAL_LINK = LinkSpec(bandwidth_bytes_per_s=1_000_000.0, latency_s=0.002)
#: Device or edge -> cloud: a constrained wide-area uplink.
DEFAULT_UPLINK = LinkSpec(bandwidth_bytes_per_s=250_000.0, latency_s=0.05)
#: Device -> edge: a metropolitan link, faster than the cloud uplink.
DEFAULT_EDGE_LINK = LinkSpec(bandwidth_bytes_per_s=500_000.0, latency_s=0.01)


@dataclass
class HierarchyDeployment:
    """All simulator objects for one partitioned DDNN."""

    model: DDNN
    devices: List[EndDeviceNode]
    local_aggregator: Optional[AggregatorNode]
    edges: List[EdgeComputeNode]
    cloud: CloudComputeNode
    fabric: NetworkFabric

    def __post_init__(self) -> None:
        self._nodes_by_name: Dict[str, object] = {}
        for device in self.devices:
            self._nodes_by_name[device.name] = device
        for edge in self.edges:
            self._nodes_by_name[edge.name] = edge
        if self.local_aggregator is not None:
            self._nodes_by_name[self.local_aggregator.name] = self.local_aggregator
        self._nodes_by_name[self.cloud.name] = self.cloud

    @property
    def device_names(self) -> List[str]:
        return [device.name for device in self.devices]

    def node_by_name(self, name: str):
        """Look up any node by its name (dict-backed, built once)."""
        try:
            return self._nodes_by_name[name]
        except KeyError:
            known = ", ".join(sorted(self._nodes_by_name))
            raise KeyError(f"no node named '{name}' (known nodes: {known})") from None

    def reset(self) -> None:
        """Clear all traffic and compute statistics."""
        self.fabric.reset()
        for device in self.devices:
            device.reset_stats()
            device.restore()
        for edge in self.edges:
            edge.reset_stats()
            edge.restore()
        if self.local_aggregator is not None:
            self.local_aggregator.reset_stats()
        self.cloud.reset_stats()

    def attach_compiled(self, compiled) -> None:
        """Hand every node its section of a :class:`~repro.compile.CompiledDDNN`.

        After this, node forwards run the fused inference plans instead of
        the eager autograd stack.  Call :meth:`detach_compiled` to revert
        (e.g. before retraining the shared model).
        """
        for device, branch in zip(self.devices, compiled.device_branches):
            device.compiled = branch
        if self.local_aggregator is not None:
            self.local_aggregator.compiled = compiled.local_aggregator
        for edge, aggregator, tier in zip(
            self.edges, compiled.edge_aggregators, compiled.edge_tiers
        ):
            edge.compiled_aggregator = aggregator
            edge.compiled_tier = tier
        self.cloud.compiled_aggregator = compiled.cloud_aggregator
        self.cloud.compiled_tier = compiled.cloud

    def detach_compiled(self) -> None:
        """Revert every node to the eager forward path."""
        for device in self.devices:
            device.compiled = None
        if self.local_aggregator is not None:
            self.local_aggregator.compiled = None
        for edge in self.edges:
            edge.compiled_aggregator = None
            edge.compiled_tier = None
        self.cloud.compiled_aggregator = None
        self.cloud.compiled_tier = None


def partition_ddnn(
    model: DDNN,
    local_link: LinkSpec = DEFAULT_LOCAL_LINK,
    uplink: LinkSpec = DEFAULT_UPLINK,
    edge_link: LinkSpec = DEFAULT_EDGE_LINK,
    device_ops_per_second: float = 5e7,
    edge_ops_per_second: float = 5e9,
    cloud_ops_per_second: float = 5e10,
) -> HierarchyDeployment:
    """Create nodes and links for a trained DDNN.

    Thin shim over :meth:`~repro.hierarchy.plan.PartitionPlan.materialize`
    with a default (model-shaped) section boundary — kept so every existing
    call site and paper table reproduces byte-identically.  The model is
    *shared*, not copied: the simulator nodes hold references to the DDNN's
    sections, so the deployment always reflects the trained parameters.
    """
    from .plan import PartitionPlan

    plan = PartitionPlan(
        model=model,
        local_link=local_link,
        uplink=uplink,
        edge_link=edge_link,
        device_ops_per_second=device_ops_per_second,
        edge_ops_per_second=edge_ops_per_second,
        cloud_ops_per_second=cloud_ops_per_second,
    )
    return plan.materialize()
