"""Mapping a trained DDNN onto simulated hierarchy nodes.

The partitioning follows the paper directly: each device branch is placed on
its own end-device node, the local aggregator runs on a gateway physically
close to the devices, the optional edge models run on edge nodes, and the
cloud aggregator plus cloud model run on the cloud node.  Links mirror the
physical topology: a fast local link from devices to the gateway, a
constrained uplink from devices (or edges) towards the cloud.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.ddnn import DDNN
from .network import NetworkFabric
from .node import AggregatorNode, CloudComputeNode, EdgeComputeNode, EndDeviceNode

__all__ = ["LinkSpec", "HierarchyDeployment", "partition_ddnn"]

LOCAL_AGGREGATOR_NAME = "local-aggregator"
CLOUD_NAME = "cloud"


@dataclass(frozen=True)
class LinkSpec:
    """Bandwidth / latency pair used when wiring the fabric."""

    bandwidth_bytes_per_s: float
    latency_s: float


#: Device -> gateway: a short-range local link.
DEFAULT_LOCAL_LINK = LinkSpec(bandwidth_bytes_per_s=1_000_000.0, latency_s=0.002)
#: Device or edge -> cloud: a constrained wide-area uplink.
DEFAULT_UPLINK = LinkSpec(bandwidth_bytes_per_s=250_000.0, latency_s=0.05)
#: Device -> edge: a metropolitan link, faster than the cloud uplink.
DEFAULT_EDGE_LINK = LinkSpec(bandwidth_bytes_per_s=500_000.0, latency_s=0.01)


@dataclass
class HierarchyDeployment:
    """All simulator objects for one partitioned DDNN."""

    model: DDNN
    devices: List[EndDeviceNode]
    local_aggregator: Optional[AggregatorNode]
    edges: List[EdgeComputeNode]
    cloud: CloudComputeNode
    fabric: NetworkFabric

    @property
    def device_names(self) -> List[str]:
        return [device.name for device in self.devices]

    def node_by_name(self, name: str):
        """Look up any node by its name."""
        for device in self.devices:
            if device.name == name:
                return device
        for edge in self.edges:
            if edge.name == name:
                return edge
        if self.local_aggregator is not None and self.local_aggregator.name == name:
            return self.local_aggregator
        if self.cloud.name == name:
            return self.cloud
        raise KeyError(f"no node named '{name}'")

    def reset(self) -> None:
        """Clear all traffic and compute statistics."""
        self.fabric.reset()
        for device in self.devices:
            device.reset_stats()
            device.restore()
        for edge in self.edges:
            edge.reset_stats()
            edge.restore()
        if self.local_aggregator is not None:
            self.local_aggregator.reset_stats()
        self.cloud.reset_stats()

    def attach_compiled(self, compiled) -> None:
        """Hand every node its section of a :class:`~repro.compile.CompiledDDNN`.

        After this, node forwards run the fused inference plans instead of
        the eager autograd stack.  Call :meth:`detach_compiled` to revert
        (e.g. before retraining the shared model).
        """
        for device, branch in zip(self.devices, compiled.device_branches):
            device.compiled = branch
        if self.local_aggregator is not None:
            self.local_aggregator.compiled = compiled.local_aggregator
        for edge, aggregator, tier in zip(
            self.edges, compiled.edge_aggregators, compiled.edge_tiers
        ):
            edge.compiled_aggregator = aggregator
            edge.compiled_tier = tier
        self.cloud.compiled_aggregator = compiled.cloud_aggregator
        self.cloud.compiled_tier = compiled.cloud

    def detach_compiled(self) -> None:
        """Revert every node to the eager forward path."""
        for device in self.devices:
            device.compiled = None
        if self.local_aggregator is not None:
            self.local_aggregator.compiled = None
        for edge in self.edges:
            edge.compiled_aggregator = None
            edge.compiled_tier = None
        self.cloud.compiled_aggregator = None
        self.cloud.compiled_tier = None


def partition_ddnn(
    model: DDNN,
    local_link: LinkSpec = DEFAULT_LOCAL_LINK,
    uplink: LinkSpec = DEFAULT_UPLINK,
    edge_link: LinkSpec = DEFAULT_EDGE_LINK,
    device_ops_per_second: float = 5e7,
    edge_ops_per_second: float = 5e9,
    cloud_ops_per_second: float = 5e10,
) -> HierarchyDeployment:
    """Create nodes and links for a trained DDNN.

    The model is *shared*, not copied: the simulator nodes hold references to
    the DDNN's sections, so the deployment always reflects the trained
    parameters.
    """
    fabric = NetworkFabric()

    devices = [
        EndDeviceNode(f"device-{index}", branch, ops_per_second=device_ops_per_second)
        for index, branch in enumerate(model.device_branches)
    ]

    local_aggregator = None
    if model.has_local_exit:
        local_aggregator = AggregatorNode(LOCAL_AGGREGATOR_NAME, model.local_aggregator)
        for device in devices:
            fabric.connect(
                device.name,
                LOCAL_AGGREGATOR_NAME,
                bandwidth_bytes_per_s=local_link.bandwidth_bytes_per_s,
                latency_s=local_link.latency_s,
            )

    edges: List[EdgeComputeNode] = []
    if model.has_edge:
        for edge_index, (aggregator, edge_model, group) in enumerate(
            zip(model._edge_aggregators, model.edge_models, model.edge_device_groups)
        ):
            edge = EdgeComputeNode(
                f"edge-{edge_index}",
                aggregator,
                edge_model,
                device_indices=group,
                ops_per_second=edge_ops_per_second,
            )
            edges.append(edge)
            for device_index in group:
                fabric.connect(
                    devices[device_index].name,
                    edge.name,
                    bandwidth_bytes_per_s=edge_link.bandwidth_bytes_per_s,
                    latency_s=edge_link.latency_s,
                )
            fabric.connect(
                edge.name,
                CLOUD_NAME,
                bandwidth_bytes_per_s=uplink.bandwidth_bytes_per_s,
                latency_s=uplink.latency_s,
            )
    else:
        for device in devices:
            fabric.connect(
                device.name,
                CLOUD_NAME,
                bandwidth_bytes_per_s=uplink.bandwidth_bytes_per_s,
                latency_s=uplink.latency_s,
            )

    cloud = CloudComputeNode(
        CLOUD_NAME, model.cloud_aggregator, model.cloud, ops_per_second=cloud_ops_per_second
    )

    return HierarchyDeployment(
        model=model,
        devices=devices,
        local_aggregator=local_aggregator,
        edges=edges,
        cloud=cloud,
        fabric=fabric,
    )
