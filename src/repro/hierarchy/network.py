"""Network model for the distributed computing hierarchy simulator.

The paper evaluates communication in *bytes transmitted per sample* (its
Eq. 1) rather than wall-clock network timing, but a distributed deployment
also cares about latency.  The simulator therefore models each link between
two tiers with a bandwidth and a propagation latency, and accounts every
message's size and transfer time.  The byte accounting is exact; the latency
model is a simple ``latency + size / bandwidth`` cost, which is enough to
show the response-time benefit of exiting samples locally.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Message", "NetworkLink", "NetworkFabric", "LinkStats"]


@dataclass
class Message:
    """A single payload sent from one node to another."""

    source: str
    destination: str
    size_bytes: float
    kind: str = "data"
    sample_index: Optional[int] = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError("message size must be non-negative")


@dataclass
class LinkStats:
    """Accumulated traffic statistics of one link."""

    messages: int = 0
    bytes_transferred: float = 0.0
    transfer_seconds: float = 0.0


@dataclass
class NetworkLink:
    """A directed link between two nodes of the hierarchy.

    Parameters
    ----------
    source, destination:
        Node names.
    bandwidth_bytes_per_s:
        Sustained throughput.  The default corresponds to a constrained
        wireless uplink (250 KB/s).
    latency_s:
        One-way propagation latency added to every message.
    """

    source: str
    destination: str
    bandwidth_bytes_per_s: float = 250_000.0
    latency_s: float = 0.01
    stats: LinkStats = field(default_factory=LinkStats)
    # Traffic counters are shared by concurrent fabric workers; the lock
    # keeps the read-modify-write accounting exact under threads.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def transfer_time(self, size_bytes: float) -> float:
        """Seconds needed to move ``size_bytes`` across this link."""
        if size_bytes < 0:
            raise ValueError("size_bytes must be non-negative")
        return self.latency_s + size_bytes / self.bandwidth_bytes_per_s

    def send(self, message: Message) -> float:
        """Account for a message and return its transfer time in seconds."""
        seconds = self.transfer_time(message.size_bytes)
        with self._lock:
            self.stats.messages += 1
            self.stats.bytes_transferred += message.size_bytes
            self.stats.transfer_seconds += seconds
        return seconds

    def reset(self) -> None:
        with self._lock:
            self.stats = LinkStats()


class NetworkFabric:
    """The set of links connecting devices, edges and the cloud.

    A :class:`~repro.hierarchy.faults.ChaosSchedule` can be attached to
    model runtime link faults: :meth:`delivery` then answers, for a given
    instant, whether a message between two endpoints actually arrives
    (outage/flap windows darken the link entirely; loss events drop
    individual messages).  Byte accounting is unaffected — a lost message
    still consumed uplink airtime, so its bytes and transfer seconds stay
    in the link stats; only :attr:`lost_messages` records the waste.
    """

    def __init__(self) -> None:
        self._links: Dict[Tuple[str, str], NetworkLink] = {}
        self.log: List[Message] = []
        self._log_lock = threading.Lock()
        self.chaos = None
        #: Messages that consulted :meth:`delivery` and did not arrive.
        self.lost_messages = 0

    def add_link(self, link: NetworkLink) -> None:
        key = (link.source, link.destination)
        if key in self._links:
            raise ValueError(f"duplicate link {link.source} -> {link.destination}")
        self._links[key] = link

    def connect(
        self,
        source: str,
        destination: str,
        bandwidth_bytes_per_s: float = 250_000.0,
        latency_s: float = 0.01,
    ) -> NetworkLink:
        """Create and register a link, returning it."""
        link = NetworkLink(source, destination, bandwidth_bytes_per_s, latency_s)
        self.add_link(link)
        return link

    def link(self, source: str, destination: str) -> NetworkLink:
        key = (source, destination)
        if key not in self._links:
            raise KeyError(f"no link from '{source}' to '{destination}'")
        return self._links[key]

    def has_link(self, source: str, destination: str) -> bool:
        return (source, destination) in self._links

    def send(self, message: Message, record: bool = True) -> float:
        """Route a message over its (direct) link and return the transfer time."""
        link = self.link(message.source, message.destination)
        seconds = link.send(message)
        if record:
            with self._log_lock:
                self.log.append(message)
        return seconds

    # -- runtime fault injection ---------------------------------------- #
    def attach_chaos(self, schedule) -> None:
        """Attach a :class:`~repro.hierarchy.faults.ChaosSchedule` (or
        ``None`` to detach) consulted by :meth:`delivery`."""
        self.chaos = schedule

    def delivery(self, source: str, destination: str, now: float) -> bool:
        """Whether a message from ``source`` to ``destination`` arrives at ``now``.

        With no chaos attached every message arrives (the immortal-network
        behaviour every pre-chaos caller relies on).  Endpoints here are
        whatever granularity the caller offloads at — the serving fabric
        uses tier names, so one outage entry darkens a whole tier uplink.
        """
        if self.chaos is None:
            return True
        if not self.chaos.link_up(source, destination, now) or self.chaos.sample_loss(
            source, destination, now
        ):
            with self._log_lock:
                self.lost_messages += 1
            return False
        return True

    # ------------------------------------------------------------------ #
    def links(self) -> List[NetworkLink]:
        return list(self._links.values())

    def total_bytes(self) -> float:
        """Total bytes moved over every link since the last reset."""
        return sum(link.stats.bytes_transferred for link in self._links.values())

    def total_messages(self) -> int:
        return sum(link.stats.messages for link in self._links.values())

    def bytes_from(self, source: str) -> float:
        """Total bytes transmitted by one node (over all its outgoing links)."""
        return sum(
            link.stats.bytes_transferred
            for (src, _), link in self._links.items()
            if src == source
        )

    def reset(self) -> None:
        for link in self._links.values():
            link.reset()
        self.log.clear()
        self.lost_messages = 0
