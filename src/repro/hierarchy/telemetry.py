"""Per-sample telemetry collected by the hierarchy runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

__all__ = ["SampleTrace", "TelemetrySummary", "Telemetry"]


@dataclass
class SampleTrace:
    """What happened to a single sample during distributed inference."""

    sample_index: int
    prediction: int
    exit_name: str
    latency_s: float
    bytes_transferred: float
    entropy: float
    correct: Optional[bool] = None


@dataclass
class TelemetrySummary:
    """Aggregate view over a run's sample traces."""

    num_samples: int
    accuracy: Optional[float]
    exit_fractions: Dict[str, float]
    mean_latency_s: float
    p95_latency_s: float
    mean_bytes_per_sample: float
    total_bytes: float


class Telemetry:
    """Collects :class:`SampleTrace` records and summarises them."""

    def __init__(self) -> None:
        self.traces: List[SampleTrace] = []

    def record(self, trace: SampleTrace) -> None:
        self.traces.append(trace)

    def __len__(self) -> int:
        return len(self.traces)

    def summary(self) -> TelemetrySummary:
        if not self.traces:
            return TelemetrySummary(
                num_samples=0,
                accuracy=None,
                exit_fractions={},
                mean_latency_s=0.0,
                p95_latency_s=0.0,
                mean_bytes_per_sample=0.0,
                total_bytes=0.0,
            )
        latencies = np.array([trace.latency_s for trace in self.traces])
        transferred = np.array([trace.bytes_transferred for trace in self.traces])
        exit_names = [trace.exit_name for trace in self.traces]
        fractions = {
            name: exit_names.count(name) / len(exit_names) for name in sorted(set(exit_names))
        }
        correctness = [trace.correct for trace in self.traces if trace.correct is not None]
        accuracy = float(np.mean(correctness)) if correctness else None
        return TelemetrySummary(
            num_samples=len(self.traces),
            accuracy=accuracy,
            exit_fractions=fractions,
            mean_latency_s=float(latencies.mean()),
            p95_latency_s=float(np.percentile(latencies, 95)),
            mean_bytes_per_sample=float(transferred.mean()),
            total_bytes=float(transferred.sum()),
        )
