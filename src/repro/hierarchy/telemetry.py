"""Per-sample telemetry collected by the hierarchy runtime.

The store is columnar: each trace field lives in its own flat list so a
whole run can be recorded with one :meth:`Telemetry.record_batch` call
(array-to-list conversion happens in C via ``ndarray.tolist``) instead of
constructing one :class:`SampleTrace` object per sample in a Python loop.
:attr:`Telemetry.traces` materialises the per-sample view on demand for
callers that want individual records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

__all__ = ["SampleTrace", "TelemetrySummary", "Telemetry"]


@dataclass
class SampleTrace:
    """What happened to a single sample during distributed inference."""

    sample_index: int
    prediction: int
    exit_name: str
    latency_s: float
    bytes_transferred: float
    entropy: float
    correct: Optional[bool] = None


@dataclass
class TelemetrySummary:
    """Aggregate view over a run's sample traces."""

    num_samples: int
    accuracy: Optional[float]
    exit_fractions: Dict[str, float]
    mean_latency_s: float
    p95_latency_s: float
    mean_bytes_per_sample: float
    total_bytes: float


class Telemetry:
    """Collects per-sample trace records and summarises them."""

    def __init__(self) -> None:
        self._sample_indices: List[int] = []
        self._predictions: List[int] = []
        self._exit_names: List[str] = []
        self._latencies_s: List[float] = []
        self._bytes_transferred: List[float] = []
        self._entropies: List[float] = []
        self._correct: List[Optional[bool]] = []

    def record(self, trace: SampleTrace) -> None:
        """Record one sample's trace."""
        self._sample_indices.append(int(trace.sample_index))
        self._predictions.append(int(trace.prediction))
        self._exit_names.append(trace.exit_name)
        self._latencies_s.append(float(trace.latency_s))
        self._bytes_transferred.append(float(trace.bytes_transferred))
        self._entropies.append(float(trace.entropy))
        self._correct.append(trace.correct)

    def record_batch(
        self,
        sample_indices: np.ndarray,
        predictions: np.ndarray,
        exit_names: Sequence[str],
        latencies_s: np.ndarray,
        bytes_transferred: np.ndarray,
        entropies: np.ndarray,
        correct: Optional[np.ndarray] = None,
    ) -> None:
        """Record a whole run's traces from parallel per-sample arrays."""
        count = len(sample_indices)
        fields = (predictions, exit_names, latencies_s, bytes_transferred, entropies)
        if any(len(column) != count for column in fields):
            raise ValueError("all trace columns must have the same length")
        if correct is not None and len(correct) != count:
            raise ValueError("correct must align with the other trace columns")
        self._sample_indices.extend(np.asarray(sample_indices).tolist())
        self._predictions.extend(np.asarray(predictions).tolist())
        self._exit_names.extend(exit_names)
        self._latencies_s.extend(np.asarray(latencies_s, dtype=np.float64).tolist())
        self._bytes_transferred.extend(np.asarray(bytes_transferred, dtype=np.float64).tolist())
        self._entropies.extend(np.asarray(entropies, dtype=np.float64).tolist())
        if correct is None:
            self._correct.extend([None] * count)
        else:
            self._correct.extend(np.asarray(correct, dtype=bool).tolist())

    def __len__(self) -> int:
        return len(self._sample_indices)

    @property
    def traces(self) -> List[SampleTrace]:
        """Materialised per-sample records (built on demand)."""
        return [
            SampleTrace(*fields)
            for fields in zip(
                self._sample_indices,
                self._predictions,
                self._exit_names,
                self._latencies_s,
                self._bytes_transferred,
                self._entropies,
                self._correct,
            )
        ]

    def summary(self) -> TelemetrySummary:
        if not self._sample_indices:
            return TelemetrySummary(
                num_samples=0,
                accuracy=None,
                exit_fractions={},
                mean_latency_s=0.0,
                p95_latency_s=0.0,
                mean_bytes_per_sample=0.0,
                total_bytes=0.0,
            )
        latencies = np.asarray(self._latencies_s)
        transferred = np.asarray(self._bytes_transferred)
        names = np.asarray(self._exit_names)
        unique, counts = np.unique(names, return_counts=True)
        fractions = {
            str(name): float(count) / len(names) for name, count in zip(unique, counts)
        }
        correctness = [value for value in self._correct if value is not None]
        accuracy = float(np.mean(correctness)) if correctness else None
        return TelemetrySummary(
            num_samples=len(self._sample_indices),
            accuracy=accuracy,
            exit_fractions=fractions,
            mean_latency_s=float(latencies.mean()),
            p95_latency_s=float(np.percentile(latencies, 95)),
            mean_bytes_per_sample=float(transferred.mean()),
            total_bytes=float(transferred.sum()),
        )
