"""Per-tier sections of the exit cascade over a simulated deployment.

The staged DDNN forward decomposes by tier: end devices plus the local
aggregator produce the *local* exit, the optional edge nodes produce the
*edge* exit, and the cloud produces the final exit.  Historically this
decomposition lived inline in ``HierarchyRuntime._run_batch``; the serving
fabric needs the same stages as first-class objects it can schedule on
workers, so they live here as :class:`TierSection` subclasses shared by both
layers.

Each section does two things:

* :meth:`TierSection.process` — run the tier's NN sections on a batch,
  returning the tier's exit logits (if it has an exit), per-sample latency
  and byte accounting, and a batch-level *carry* (the feature maps an
  offload would forward);
* :meth:`TierSection.offload` — send the carried features for the
  not-confident rows up the hierarchy as :class:`~repro.hierarchy.network.Message`s
  over the deployment's :class:`~repro.hierarchy.network.NetworkFabric`,
  returning per-row transfer delay/bytes and the per-row payloads the next
  tier will stack back into a batch.

The accounting reproduces the original runtime loop: summaries are sent
for every delivered sample, features only for offloaded samples from
delivered devices, per-sample compute latency comes from the node
ops models, and the per-device ``stats.bytes_sent`` counters match the
paper's Eq. 1 byte accounting (covered by the hierarchy tests).  One
decomposition note: the old loop charged offloaded samples
``max_e(transfer_e + compute_e)`` over the edge tier in one term, while
the split stages charge ``max(transfer)`` at the device offload and
``max(compute)`` at the edge — identical for the homogeneous edge tiers
:func:`~repro.hierarchy.partition.partition_ddnn` builds (every edge has
the same per-sample compute), and an upper bound if edges are hand-tuned
to heterogeneous speeds.

Compute runs through the nodes' own forward paths (eager, or the compiled
sections attached via :meth:`HierarchyDeployment.attach_compiled`).  A
section can also be handed an explicit per-worker
:class:`~repro.compile.CompiledDDNN` bundle (``plans=...``), which is how the
fabric gives every simulated worker its own plan instances — the compiled
buffer arenas are then thread-safe by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..nn.tensor import Tensor, no_grad
from .faults import FaultPlan
from .network import Message
from .partition import CLOUD_NAME, LOCAL_AGGREGATOR_NAME, HierarchyDeployment

__all__ = [
    "SectionResult",
    "TransferResult",
    "TierSection",
    "DeviceTierSection",
    "EdgeTierSection",
    "CloudTierSection",
    "build_tier_sections",
]

#: Per-row payload forwarded between tiers: one feature array per source node.
RowPayload = Tuple[np.ndarray, ...]


@dataclass
class SectionResult:
    """Outcome of running one tier's section on a batch of ``n`` rows."""

    logits: Optional[np.ndarray]  # exit logits (n, C); None when the tier has no exit
    carry: object  # batch-level state an offload would forward
    service_s: float  # wall-clock the tier's worker is occupied by this batch
    intake_s: np.ndarray  # per-row intra-tier transfer+wait latency (n,)
    compute_s: np.ndarray  # per-row compute latency contribution (n,)
    intake_bytes: np.ndarray  # per-row bytes sent inside the tier (n,)


@dataclass
class TransferResult:
    """Outcome of offloading a set of rows to the next tier."""

    payloads: List[RowPayload]  # one payload per offloaded row, in row order
    delay_s: np.ndarray  # per-offloaded-row transfer delay
    bytes: np.ndarray  # per-offloaded-row bytes put on the wire


def stack_rows(payloads: Sequence[RowPayload]) -> List[np.ndarray]:
    """Recombine per-row payloads into per-source batch arrays."""
    num_sources = len(payloads[0])
    return [np.stack([payload[s] for payload in payloads]) for s in range(num_sources)]


class TierSection:
    """One tier of the cascade: compute stage plus upward offload stage."""

    #: Display name of the tier ("devices", "edge", "cloud").
    tier_name: str = "tier"
    #: Index into the cascade's exits, or None when the tier has no exit.
    exit_index: Optional[int] = None
    #: Exit name matching ``exit_index`` ("" when the tier has no exit).
    exit_name: str = ""

    def process(self, payload, plans=None) -> SectionResult:
        raise NotImplementedError

    def offload(self, carry, rows: np.ndarray) -> TransferResult:
        raise NotImplementedError

    def transfer_estimate_s(self) -> float:
        """Worst-case single-row offload transfer time under current topology.

        Unlike :meth:`offload`, this charges nothing — no bytes hit the
        wire.  The fabric's SLO plane uses it to decide *before* sending
        whether an offload can possibly land inside a request's remaining
        deadline budget (and to clip retry ladders); being a worst case it
        may answer locally a row that would have squeaked through, never
        the reverse.
        """
        raise NotImplementedError


class DeviceTierSection(TierSection):
    """End devices plus (optionally) the local aggregator and local exit.

    ``process`` consumes raw multi-view batches of shape ``(n, D, C, H, W)``;
    the carry holds the per-device binarized feature maps and the
    delivered mask (intermittent-fault bookkeeping).  ``offload`` sends each
    delivered device's feature map for every offloaded row to that device's
    uplink destination (its edge, or the cloud when no edge tier exists).
    """

    tier_name = "devices"

    def __init__(
        self,
        deployment: HierarchyDeployment,
        fault_plan: Optional[FaultPlan] = None,
        exit_index: Optional[int] = None,
    ) -> None:
        self.deployment = deployment
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan()
        self.exit_index = exit_index
        self.exit_name = "local" if exit_index is not None else ""
        # Uplink destination per device: its edge when an edge tier exists,
        # the cloud otherwise (mirrors how partition_ddnn wires the fabric).
        self._uplink_destination = {}
        if deployment.edges:
            for edge in deployment.edges:
                for device_index in edge.device_indices:
                    self._uplink_destination[device_index] = edge.name
        else:
            for device_index in range(len(deployment.devices)):
                self._uplink_destination[device_index] = CLOUD_NAME

    def process(self, payload, plans=None) -> SectionResult:
        views = np.asarray(payload)
        deployment = self.deployment
        fabric = deployment.fabric
        devices = deployment.devices
        batch = len(views)
        num_devices = len(devices)

        device_features: List[np.ndarray] = []
        device_scores: List[np.ndarray] = []
        device_latency = np.zeros(num_devices)
        device_seconds = np.zeros(num_devices)
        delivered = np.ones((num_devices, batch), dtype=bool)
        for device_index, device in enumerate(devices):
            features, scores, seconds = self._device_forward(
                device, device_index, views[:, device_index], plans
            )
            for sample in range(batch):
                if not self.fault_plan.sample_delivery(device_index):
                    delivered[device_index, sample] = False
                    features[sample] = 0.0
                    scores[sample] = 0.0
            device_features.append(features)
            device_scores.append(scores)
            device_seconds[device_index] = seconds
            device_latency[device_index] = seconds / max(batch, 1)

        intake_s = np.zeros(batch)
        intake_bytes = np.zeros(batch)
        compute_s = np.zeros(batch)
        logits: Optional[np.ndarray] = None
        aggregate_seconds = 0.0

        if self.exit_index is not None:
            aggregator = deployment.local_aggregator
            for device_index, device in enumerate(devices):
                if device.failed:
                    continue
                summary_size = device.summary_bytes()
                for sample in range(batch):
                    if not delivered[device_index, sample]:
                        continue
                    seconds = fabric.send(
                        Message(
                            source=device.name,
                            destination=LOCAL_AGGREGATOR_NAME,
                            size_bytes=summary_size,
                            kind="class-scores",
                        ),
                        record=False,
                    )
                    device.record_bytes_sent(summary_size)
                    intake_bytes[sample] += summary_size
                    intake_s[sample] = max(
                        intake_s[sample], device_latency[device_index] + seconds
                    )
            logits, aggregate_seconds = self._aggregate(aggregator, device_scores, plans)
            compute_s += aggregate_seconds / max(batch, 1)

        return SectionResult(
            logits=logits,
            carry=(device_features, delivered),
            service_s=float(device_seconds.max(initial=0.0)) + aggregate_seconds,
            intake_s=intake_s,
            compute_s=compute_s,
            intake_bytes=intake_bytes,
        )

    def _device_forward(self, device, device_index: int, view_batch, plans):
        branch = None if plans is None else plans.device_branches[device_index]
        if branch is None or device.failed:
            features, scores, seconds = device.process(view_batch)
            if device.compiled is not None and not device.failed:
                # The node-attached compiled branch returns views into the
                # plan's reused buffers; the carry must survive later
                # forwards through the same plan instance.
                features = features.copy()
            return features, scores, seconds
        # No dtype force: the compiled branch casts to its own precision
        # mode's dtype (float64 plans see the historical bit-exact input).
        features, scores = branch(np.asarray(view_batch))
        batch = len(features)
        seconds = device._account(device.branch.num_parameters() * batch, samples=batch)
        return features.copy(), scores.copy(), seconds

    def _aggregate(self, aggregator, device_scores, plans):
        if plans is not None and plans.local_aggregator is not None:
            arrays = [np.asarray(scores) for scores in device_scores]
            fused = plans.local_aggregator(arrays)
            operations = sum(array.size for array in arrays)
            seconds = aggregator._account(operations, samples=len(arrays[0]))
            return fused, seconds
        return aggregator.aggregate(device_scores)

    def offload(self, carry, rows: np.ndarray) -> TransferResult:
        device_features, delivered = carry
        deployment = self.deployment
        fabric = deployment.fabric
        rows = np.asarray(rows, dtype=np.int64)
        delay = np.zeros(len(rows))
        transferred = np.zeros(len(rows))
        for device_index, device in enumerate(deployment.devices):
            if device.failed:
                continue
            size = device.feature_bytes()
            destination = self._uplink_destination[device_index]
            for position, row in enumerate(rows):
                if not delivered[device_index, row]:
                    continue
                seconds = fabric.send(
                    Message(
                        source=device.name,
                        destination=destination,
                        size_bytes=size,
                        kind="features",
                    ),
                    record=False,
                )
                device.record_bytes_sent(size)
                transferred[position] += size
                delay[position] = max(delay[position], seconds)
        payloads = [
            tuple(features[row] for features in device_features) for row in rows
        ]
        return TransferResult(payloads=payloads, delay_s=delay, bytes=transferred)

    def transfer_estimate_s(self) -> float:
        worst = 0.0
        fabric = self.deployment.fabric
        for device_index, device in enumerate(self.deployment.devices):
            if device.failed:
                continue
            link = fabric.link(device.name, self._uplink_destination[device_index])
            worst = max(worst, link.transfer_time(device.feature_bytes()))
        return worst


class EdgeTierSection(TierSection):
    """The edge (fog) tier: per-edge aggregation + NN sections + edge exit."""

    tier_name = "edge"

    def __init__(
        self,
        deployment: HierarchyDeployment,
        exit_index: Optional[int],
        compiled=None,
    ) -> None:
        self.deployment = deployment
        self.exit_index = exit_index
        self.exit_name = "edge" if exit_index is not None else ""
        #: Optional runtime-level CompiledDDNN whose edge_exit_aggregator is
        #: used when no per-worker plan bundle is supplied.
        self.compiled = compiled

    def process(self, payload, plans=None) -> SectionResult:
        device_features = [np.asarray(array) for array in payload]
        deployment = self.deployment
        batch = len(device_features[0])

        edge_features: List[np.ndarray] = []
        edge_logit_list: List[np.ndarray] = []
        edge_seconds = np.zeros(max(len(deployment.edges), 1))
        for edge_index, edge in enumerate(deployment.edges):
            group = [device_features[i] for i in edge.device_indices]
            features, logits, seconds = self._edge_forward(edge, edge_index, group, plans)
            edge_features.append(features)
            edge_logit_list.append(logits)
            edge_seconds[edge_index] = seconds

        # An exit-less edge tier (boundary moved up) skips the exit-logit
        # fusion entirely — features still flow to the cloud unchanged.
        logits = (
            self._fuse_exit_logits(edge_logit_list, plans)
            if self.exit_index is not None
            else None
        )
        per_sample = float(edge_seconds.max(initial=0.0)) / max(batch, 1)
        return SectionResult(
            logits=logits,
            carry=edge_features,
            service_s=float(edge_seconds.max(initial=0.0)),
            intake_s=np.zeros(batch),
            compute_s=np.full(batch, per_sample),
            intake_bytes=np.zeros(batch),
        )

    def _edge_forward(self, edge, edge_index: int, group, plans):
        if plans is None:
            features, logits, seconds = edge.process(group)
            return features.copy(), logits, seconds
        arrays = [np.asarray(array) for array in group]
        aggregated = plans.edge_aggregators[edge_index](arrays)
        features, logits = plans.edge_tiers[edge_index](aggregated)
        batch = len(arrays[0])
        seconds = edge._account(edge.model.num_parameters() * batch, samples=batch)
        return features.copy(), logits.copy(), seconds

    def _fuse_exit_logits(self, edge_logit_list, plans):
        if len(edge_logit_list) == 1:
            return edge_logit_list[0]
        if plans is not None and plans.edge_exit_aggregator is not None:
            return plans.edge_exit_aggregator(edge_logit_list)
        if self.compiled is not None:
            return self.compiled.edge_exit_aggregator(edge_logit_list)
        with no_grad():
            return self.deployment.model.edge_exit_aggregator(
                [Tensor(logits) for logits in edge_logit_list]
            ).data

    def offload(self, carry, rows: np.ndarray) -> TransferResult:
        edge_features = carry
        deployment = self.deployment
        fabric = deployment.fabric
        rows = np.asarray(rows, dtype=np.int64)
        delay = np.zeros(len(rows))
        transferred = np.zeros(len(rows))
        for edge in deployment.edges:
            if edge.failed:
                continue
            size = edge.feature_bytes()
            for position, _ in enumerate(rows):
                seconds = fabric.send(
                    Message(
                        source=edge.name,
                        destination=CLOUD_NAME,
                        size_bytes=size,
                        kind="features",
                    ),
                    record=False,
                )
                edge.record_bytes_sent(size)
                transferred[position] += size
                delay[position] = max(delay[position], seconds)
        payloads = [tuple(features[row] for features in edge_features) for row in rows]
        return TransferResult(payloads=payloads, delay_s=delay, bytes=transferred)

    def transfer_estimate_s(self) -> float:
        worst = 0.0
        fabric = self.deployment.fabric
        for edge in self.deployment.edges:
            if edge.failed:
                continue
            link = fabric.link(edge.name, CLOUD_NAME)
            worst = max(worst, link.transfer_time(edge.feature_bytes()))
        return worst


class CloudTierSection(TierSection):
    """The cloud tier: final aggregation + cloud NN section (always exits)."""

    tier_name = "cloud"

    def __init__(self, deployment: HierarchyDeployment, exit_index: int) -> None:
        self.deployment = deployment
        self.exit_index = exit_index
        self.exit_name = "cloud"

    def process(self, payload, plans=None) -> SectionResult:
        sources = [np.asarray(array) for array in payload]
        batch = len(sources[0])
        logits, seconds = self._cloud_forward(sources, plans)
        per_sample = seconds / max(batch, 1)
        return SectionResult(
            logits=logits,
            carry=None,
            service_s=seconds,
            intake_s=np.zeros(batch),
            compute_s=np.full(batch, per_sample),
            intake_bytes=np.zeros(batch),
        )

    def _cloud_forward(self, sources, plans):
        cloud = self.deployment.cloud
        if plans is None:
            return cloud.process(sources)
        arrays = [np.asarray(array) for array in sources]
        aggregated = plans.cloud_aggregator(arrays)
        _, logits = plans.cloud(aggregated)
        batch = len(arrays[0])
        seconds = cloud._account(cloud.model.num_parameters() * batch, samples=batch)
        return logits.copy(), seconds

    def offload(self, carry, rows: np.ndarray) -> TransferResult:
        raise RuntimeError("the cloud tier is final; nothing offloads past it")

    def transfer_estimate_s(self) -> float:
        raise RuntimeError("the cloud tier is final; nothing offloads past it")


def build_tier_sections(
    deployment: HierarchyDeployment,
    fault_plan: Optional[FaultPlan] = None,
    compiled=None,
    plan=None,
) -> List[TierSection]:
    """Decompose a deployment into its cascade tiers, in exit order.

    ``compiled`` is an optional :class:`~repro.compile.CompiledDDNN` used for
    the edge-exit fusion when the deployment's nodes run attached compiled
    sections (the :class:`HierarchyRuntime` compile path).

    ``plan`` is an optional :class:`~repro.hierarchy.plan.PartitionPlan`
    that places the section boundary: a tier whose exit the plan disables
    gets ``exit_index=None`` (its traffic offloads wholesale).  Exit
    *indices* always follow the model's exit numbering — the cascade's
    criteria are indexed by the model's exits regardless of which tiers
    currently evaluate them — so a boundary move never renumbers the exits
    queued requests will be judged against.  Without a plan the boundary
    follows the model's structure (the historical behaviour).
    """
    model = deployment.model
    if plan is not None and plan.model is not model:
        raise ValueError("plan.model must be the deployment's model")
    local_exit = model.has_local_exit if plan is None else plan.resolved_local_exit()
    edge_exit = model.has_edge if plan is None else plan.resolved_edge_exit()
    sections: List[TierSection] = []
    next_exit = 0
    if model.has_local_exit:
        local_index: Optional[int] = next_exit if local_exit else None
        next_exit += 1
    else:
        local_index = None
    sections.append(DeviceTierSection(deployment, fault_plan, exit_index=local_index))
    if model.has_edge:
        edge_index: Optional[int] = next_exit if edge_exit else None
        next_exit += 1
        sections.append(EdgeTierSection(deployment, exit_index=edge_index, compiled=compiled))
    sections.append(CloudTierSection(deployment, exit_index=next_exit))
    return sections
