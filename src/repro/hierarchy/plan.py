"""First-class, mutable description of the DDNN-to-hierarchy mapping.

Historically the mapping was frozen at construction:
:func:`~repro.hierarchy.partition.partition_ddnn` wired nodes and links in
one shot, and the serving fabric baked worker counts into ``__init__``.
A :class:`PartitionPlan` turns that construction-time wiring into data that
every layer consumes — and that can *change while the system is live*:

* the **section boundary** per tier: which non-final tiers evaluate their
  exit.  Disabling the local exit moves the boundary up (devices become
  pure feature extractors and all traffic offloads); disabling the edge
  exit routes everything that leaves the devices straight to the cloud.
  The tier *chain* (devices → [edge] → cloud) is fixed by the trained
  model — queued payloads stay valid across a re-partition — but where
  answers are produced is plan data;
* **node specs** (per-tier ops/s) and **link specs**
  (:class:`~repro.hierarchy.partition.LinkSpec` per link class);
* **worker counts** per tier, optional per-tier :class:`AutoscalePolicy`
  watermarks, and a **replica count** for load-balanced duplicate stacks.

:meth:`PartitionPlan.materialize` builds the simulator deployment exactly
like ``partition_ddnn`` always did (that function is now a thin shim over
it, byte-identical), and
:meth:`~repro.serving.fabric.DistributedServingFabric.apply_plan` swaps a
live fabric onto a new plan with a drain-and-handoff protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple, Union

from ..core.ddnn import DDNN
from .partition import (
    CLOUD_NAME,
    DEFAULT_EDGE_LINK,
    DEFAULT_LOCAL_LINK,
    DEFAULT_UPLINK,
    LOCAL_AGGREGATOR_NAME,
    HierarchyDeployment,
    LinkSpec,
)

__all__ = ["AutoscalePolicy", "PartitionPlan"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Watermark-driven worker scaling for one tier.

    The autoscaler grows a tier by ``step`` workers as soon as its queue
    depth reaches ``high_watermark`` (scale-up never waits — backlog is
    evidence *now*), and shrinks it by ``step`` once the depth has been at
    or below ``low_watermark`` for ``cooldown_s`` seconds since the last
    size change (scale-down is damped so a lull between bursts does not
    flap the pool).  ``window_s`` sizes the arrival-rate tracker window
    used for telemetry and the optional rate floor: with
    ``target_rps_per_worker > 0`` the pool never shrinks below the worker
    count needed to sustain the currently observed arrival rate.
    """

    min_workers: int = 1
    max_workers: int = 4
    high_watermark: int = 4
    low_watermark: int = 0
    cooldown_s: float = 0.25
    step: int = 1
    window_s: float = 1.0
    target_rps_per_worker: float = 0.0

    def __post_init__(self) -> None:
        if self.min_workers < 1:
            raise ValueError(f"min_workers must be >= 1, got {self.min_workers}")
        if self.max_workers < self.min_workers:
            raise ValueError(
                f"max_workers ({self.max_workers}) must be >= min_workers "
                f"({self.min_workers})"
            )
        if self.high_watermark < 1:
            raise ValueError(f"high_watermark must be >= 1, got {self.high_watermark}")
        if self.low_watermark < 0:
            raise ValueError(f"low_watermark must be >= 0, got {self.low_watermark}")
        if self.low_watermark >= self.high_watermark:
            raise ValueError(
                f"low_watermark ({self.low_watermark}) must be below "
                f"high_watermark ({self.high_watermark})"
            )
        if self.cooldown_s < 0.0:
            raise ValueError(f"cooldown_s must be >= 0, got {self.cooldown_s}")
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")
        if self.window_s <= 0.0:
            raise ValueError(f"window_s must be > 0, got {self.window_s}")
        if self.target_rps_per_worker < 0.0:
            raise ValueError(
                f"target_rps_per_worker must be >= 0, got {self.target_rps_per_worker}"
            )


@dataclass
class PartitionPlan:
    """Declarative, mutable deployment description for one trained DDNN.

    ``local_exit`` / ``edge_exit`` place the section boundary: ``None``
    follows the model's structure (an exit is evaluated wherever the model
    has one — the historical behaviour), ``False`` disables that tier's
    exit so its traffic offloads wholesale, and ``True`` requires the model
    to actually carry the exit.  The cloud always answers — it is the
    cascade's final exit.
    """

    model: DDNN
    local_exit: Optional[bool] = None
    edge_exit: Optional[bool] = None
    local_link: LinkSpec = DEFAULT_LOCAL_LINK
    uplink: LinkSpec = DEFAULT_UPLINK
    edge_link: LinkSpec = DEFAULT_EDGE_LINK
    device_ops_per_second: float = 5e7
    edge_ops_per_second: float = 5e9
    cloud_ops_per_second: float = 5e10
    workers_per_tier: Union[int, Sequence[int]] = 1
    replicas: int = 1
    autoscale: Union[
        None, AutoscalePolicy, Sequence[Optional[AutoscalePolicy]]
    ] = None
    #: Compiled compute mode per tier — a single mode (broadcast) or one
    #: entry per tier, e.g. ``("bitpacked", "float64")`` to run the device
    #: tier on XNOR-popcount kernels while the cloud stays exact.  Only
    #: consulted by compile-enabled consumers (the serving fabric and the
    #: hierarchy runtime); the eager path always computes in float64.
    precision: Union[str, Sequence[str]] = "float64"
    #: End-to-end latency objective per request, in seconds.  Fabrics built
    #: from the plan stamp every request with an absolute
    #: :class:`~repro.serving.resilience.Deadline` at ingress; ``None``
    #: serves without deadlines (the historical behaviour).
    slo_s: Optional[float] = None
    #: Optional :class:`~repro.serving.resilience.HedgePolicy` for
    #: speculative offload re-sends across replica stacks.  Requires
    #: ``replicas > 1`` (hedges go to *sibling* replicas) and only takes
    #: effect through :meth:`~repro.serving.balancer.LoadBalancer.from_plan`,
    #: which wires the replicas onto one shared event loop.
    hedge: Optional[object] = None

    def __post_init__(self) -> None:
        self.validate()

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def has_edge_tier(self) -> bool:
        return self.model.has_edge

    @property
    def num_tiers(self) -> int:
        return 2 + (1 if self.model.has_edge else 0)

    @property
    def tier_names(self) -> Tuple[str, ...]:
        if self.model.has_edge:
            return ("devices", "edge", "cloud")
        return ("devices", "cloud")

    def resolved_local_exit(self) -> bool:
        if self.local_exit is None:
            return self.model.has_local_exit
        return bool(self.local_exit)

    def resolved_edge_exit(self) -> bool:
        if self.edge_exit is None:
            return self.model.has_edge
        return bool(self.edge_exit)

    def exit_flags(self) -> Tuple[bool, ...]:
        """Whether each tier (in chain order) evaluates its exit."""
        if self.model.has_edge:
            return (self.resolved_local_exit(), self.resolved_edge_exit(), True)
        return (self.resolved_local_exit(), True)

    def validate(self) -> None:
        if self.local_exit and not self.model.has_local_exit:
            raise ValueError(
                "plan enables the local exit but the model has no local aggregator"
            )
        if self.edge_exit and not self.model.has_edge:
            raise ValueError("plan enables the edge exit but the model has no edge tier")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if self.slo_s is not None and not self.slo_s > 0.0:
            raise ValueError(f"slo_s must be > 0 or None, got {self.slo_s}")
        if self.hedge is not None:
            from ..serving.resilience import HedgePolicy  # deferred: avoids cycle

            if not isinstance(self.hedge, HedgePolicy):
                raise TypeError(
                    f"hedge must be a HedgePolicy or None, got {type(self.hedge).__name__}"
                )
            if self.replicas < 2:
                raise ValueError(
                    "hedge needs replicas >= 2 (hedged offloads go to sibling replicas)"
                )
        for count in self.worker_counts():
            if count < 1:
                raise ValueError(f"worker counts must be >= 1, got {count}")
        self.autoscale_policies()  # validates length
        self.precisions()  # validates length and mode names

    def with_changes(self, **changes) -> "PartitionPlan":
        """A copy of this plan with the given fields replaced."""
        return replace(self, **changes)

    # ------------------------------------------------------------------ #
    # Worker plane
    # ------------------------------------------------------------------ #
    def worker_counts(self) -> Tuple[int, ...]:
        """Per-tier worker counts, broadcasting a single int."""
        if isinstance(self.workers_per_tier, int):
            return (self.workers_per_tier,) * self.num_tiers
        counts = tuple(int(count) for count in self.workers_per_tier)
        if len(counts) != self.num_tiers:
            raise ValueError(
                f"workers_per_tier must have {self.num_tiers} entries, got {len(counts)}"
            )
        return counts

    def autoscale_policies(self) -> Tuple[Optional[AutoscalePolicy], ...]:
        """Per-tier autoscale policies, broadcasting a single policy."""
        if self.autoscale is None:
            return (None,) * self.num_tiers
        if isinstance(self.autoscale, AutoscalePolicy):
            return (self.autoscale,) * self.num_tiers
        policies = tuple(self.autoscale)
        if len(policies) != self.num_tiers:
            raise ValueError(
                f"autoscale must have {self.num_tiers} entries, got {len(policies)}"
            )
        return policies

    @property
    def autoscaled(self) -> bool:
        return any(policy is not None for policy in self.autoscale_policies())

    def precisions(self) -> Tuple[str, ...]:
        """Per-tier compiled compute modes, broadcasting a single mode."""
        from ..compile.ops import PRECISIONS

        if isinstance(self.precision, str):
            modes = (self.precision,) * self.num_tiers
        else:
            modes = tuple(str(mode) for mode in self.precision)
            if len(modes) != self.num_tiers:
                raise ValueError(
                    f"precision must have {self.num_tiers} entries, got {len(modes)}"
                )
        for mode in modes:
            if mode not in PRECISIONS:
                raise ValueError(
                    f"unknown precision {mode!r}; expected one of {PRECISIONS}"
                )
        return modes

    # ------------------------------------------------------------------ #
    # Materialisation
    # ------------------------------------------------------------------ #
    def materialize(self) -> HierarchyDeployment:
        """Create the simulator nodes and links this plan describes.

        The model is *shared*, not copied; calling this repeatedly builds
        independent node/link stacks over the same trained parameters
        (which is how replica groups are stamped out).  Byte-identical to
        the historical :func:`~repro.hierarchy.partition.partition_ddnn`
        wiring for a default-boundary plan.
        """
        from .network import NetworkFabric
        from .node import (
            AggregatorNode,
            CloudComputeNode,
            EdgeComputeNode,
            EndDeviceNode,
        )

        model = self.model
        fabric = NetworkFabric()

        devices = [
            EndDeviceNode(
                f"device-{index}", branch, ops_per_second=self.device_ops_per_second
            )
            for index, branch in enumerate(model.device_branches)
        ]

        local_aggregator = None
        if model.has_local_exit:
            local_aggregator = AggregatorNode(LOCAL_AGGREGATOR_NAME, model.local_aggregator)
            for device in devices:
                self.local_link.connect(fabric, device.name, LOCAL_AGGREGATOR_NAME)

        edges: List[EdgeComputeNode] = []
        if model.has_edge:
            for edge_index, (aggregator, edge_model, group) in enumerate(
                zip(model._edge_aggregators, model.edge_models, model.edge_device_groups)
            ):
                edge = EdgeComputeNode(
                    f"edge-{edge_index}",
                    aggregator,
                    edge_model,
                    device_indices=group,
                    ops_per_second=self.edge_ops_per_second,
                )
                edges.append(edge)
                for device_index in group:
                    self.edge_link.connect(fabric, devices[device_index].name, edge.name)
                self.uplink.connect(fabric, edge.name, CLOUD_NAME)
        else:
            for device in devices:
                self.uplink.connect(fabric, device.name, CLOUD_NAME)

        cloud = CloudComputeNode(
            CLOUD_NAME,
            model.cloud_aggregator,
            model.cloud,
            ops_per_second=self.cloud_ops_per_second,
        )

        return HierarchyDeployment(
            model=model,
            devices=devices,
            local_aggregator=local_aggregator,
            edges=edges,
            cloud=cloud,
            fabric=fabric,
        )

    def retune_links(self, deployment: HierarchyDeployment) -> None:
        """Apply this plan's link specs to an existing deployment in place.

        Used by the live re-partition path: byte/latency accounting history
        stays with the links, only their bandwidth/latency parameters move
        to the new plan's values.
        """
        edge_names = {edge.name for edge in deployment.edges}
        for link in deployment.fabric.links():
            if link.destination == LOCAL_AGGREGATOR_NAME:
                spec = self.local_link
            elif link.destination in edge_names:
                spec = self.edge_link
            else:
                spec = self.uplink
            spec.retune(link)

    def retune_nodes(self, deployment: HierarchyDeployment) -> None:
        """Apply this plan's per-tier ops/s specs to existing nodes in place."""
        for device in deployment.devices:
            device.ops_per_second = float(self.device_ops_per_second)
        for edge in deployment.edges:
            edge.ops_per_second = float(self.edge_ops_per_second)
        deployment.cloud.ops_per_second = float(self.cloud_ops_per_second)
