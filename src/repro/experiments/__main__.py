"""Allow ``python -m repro.experiments`` to invoke the experiment CLI."""

import sys

from .cli import main

sys.exit(main())
