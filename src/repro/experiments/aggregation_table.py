"""Experiment E2 — accuracy of aggregation schemes (paper Table I).

Nine DDNNs are trained, one per (local, cloud) aggregation scheme pair drawn
from {MP, AP, CC}^2, and the accuracy of the local and cloud exit points is
measured on the full test set (every sample classified at that exit), exactly
as in the paper's Table I.
"""

from __future__ import annotations

from itertools import product
from typing import Optional, Sequence, Tuple

from .results import ExperimentResult
from .runner import ExperimentScale, capture_oracle, default_scale, get_dataset, get_trained_ddnn

__all__ = ["run_aggregation_table", "PAPER_TABLE1_ORDER"]

#: Scheme order used in the paper's Table I.
PAPER_TABLE1_ORDER: Tuple[str, ...] = (
    "MP-MP",
    "MP-CC",
    "AP-AP",
    "AP-CC",
    "CC-CC",
    "AP-MP",
    "MP-AP",
    "CC-MP",
    "CC-AP",
)


def run_aggregation_table(
    scale: Optional[ExperimentScale] = None,
    schemes: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    """Train one DDNN per aggregation-scheme pair and report exit accuracies."""
    scale = scale if scale is not None else default_scale()
    schemes = tuple(schemes) if schemes is not None else PAPER_TABLE1_ORDER
    _, test_set = get_dataset(scale)

    result = ExperimentResult(
        name="table1_aggregation",
        paper_reference="Table I",
        columns=["scheme", "local_accuracy_pct", "cloud_accuracy_pct"],
        metadata={"scale": scale.name, "schemes": list(schemes)},
    )
    for scheme in schemes:
        local_scheme, cloud_scheme = scheme.split("-")
        config = scale.ddnn_config(
            local_aggregation=local_scheme, cloud_aggregation=cloud_scheme
        )
        model, _ = get_trained_ddnn(scale, config=config)
        accuracies = capture_oracle(model, test_set).exit_accuracies()
        result.add_row(
            scheme=scheme,
            local_accuracy_pct=100.0 * accuracies["local"],
            cloud_accuracy_pct=100.0 * accuracies["cloud"],
        )
    return result
