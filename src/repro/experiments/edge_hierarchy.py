"""Experiment E9a — three-tier device/edge/cloud configurations (paper Sec. V).

The paper's evaluation uses configuration (c) of Figure 2 (devices + cloud)
and notes that the system "can be generalized to a more elaborated structure
which includes an edge layer" ((d), (e), (f)).  This extension experiment
trains those topologies and reports every exit's accuracy plus the staged
(overall) accuracy, demonstrating vertical scaling across three tiers and
horizontal scaling across multiple edges.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..core.config import DDNNTopology
from .results import ExperimentResult
from .runner import ExperimentScale, capture_oracle, default_scale, get_dataset, get_trained_ddnn

__all__ = ["run_edge_hierarchy", "DEFAULT_TOPOLOGIES"]

#: (figure label, topology name, number of edges) combinations evaluated.
DEFAULT_TOPOLOGIES: Tuple[Tuple[str, str, int], ...] = (
    ("(c) devices + cloud", "devices_cloud", 0),
    ("(e) devices + edge + cloud", "devices_edge_cloud", 1),
    ("(f) devices + 2 edges + cloud", "devices_edges_cloud", 2),
)


def run_edge_hierarchy(
    scale: Optional[ExperimentScale] = None,
    topologies: Optional[Sequence[Tuple[str, str, int]]] = None,
    thresholds: Tuple[float, float] = (0.8, 0.8),
) -> ExperimentResult:
    """Train DDNNs for device-edge-cloud topologies and compare exits."""
    scale = scale if scale is not None else default_scale()
    topologies = tuple(topologies) if topologies is not None else DEFAULT_TOPOLOGIES
    _, test_set = get_dataset(scale)

    result = ExperimentResult(
        name="ext_edge_hierarchy",
        paper_reference="Figure 2 (d)-(f) / Section V",
        columns=[
            "configuration",
            "local_accuracy_pct",
            "edge_accuracy_pct",
            "cloud_accuracy_pct",
            "overall_accuracy_pct",
            "local_exit_pct",
            "edge_exit_pct",
        ],
        metadata={"scale": scale.name, "thresholds": list(thresholds)},
    )
    for label, topology_name, num_edges in topologies:
        config = scale.ddnn_config(
            topology=DDNNTopology.from_name(topology_name, num_edges=max(num_edges, 1))
        )
        model, _ = get_trained_ddnn(scale, config=config)
        oracle = capture_oracle(model, test_set)
        accuracies = oracle.exit_accuracies()
        exit_thresholds = list(thresholds[: model.num_exits - 1])
        staged = oracle.route(exit_thresholds)
        result.add_row(
            configuration=label,
            local_accuracy_pct=100.0 * accuracies.get("local", float("nan")),
            edge_accuracy_pct=100.0 * accuracies.get("edge", float("nan")),
            cloud_accuracy_pct=100.0 * accuracies.get("cloud", float("nan")),
            overall_accuracy_pct=100.0 * staged.overall_accuracy(test_set.labels),
            local_exit_pct=100.0 * staged.exit_fraction("local") if "local" in model.exit_names else 0.0,
            edge_exit_pct=100.0 * staged.exit_fraction("edge") if "edge" in model.exit_names else 0.0,
        )
    return result
