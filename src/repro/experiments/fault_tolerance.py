"""Experiment E6 — fault tolerance under device failures (paper Figure 10).

A six-device MP-CC DDNN is trained once; then, for each device in turn, that
device is failed (its views are blanked, exactly what the network sees for an
absent object) and the system's Local, Cloud and Overall accuracies are
re-measured.  The failed device's individual accuracy is reported alongside,
as in the paper's figure.  A second sweep removes an increasing number of the
best devices to show graceful degradation (discussed in Section IV-G).
"""

from __future__ import annotations

from typing import Dict, Optional

from .results import ExperimentResult
from .runner import ExperimentScale, capture_oracle, default_scale, get_dataset, get_trained_ddnn
from .scaling_devices import compute_individual_accuracies

__all__ = ["run_fault_tolerance", "run_multi_device_failures"]


def run_fault_tolerance(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    individual: Optional[Dict[int, float]] = None,
) -> ExperimentResult:
    """Reproduce Figure 10: accuracy with each single end device failed."""
    scale = scale if scale is not None else default_scale()
    _, test_set = get_dataset(scale)
    model, _ = get_trained_ddnn(scale)
    if individual is None:
        individual = compute_individual_accuracies(scale)

    result = ExperimentResult(
        name="fig10_fault_tolerance",
        paper_reference="Figure 10",
        columns=[
            "failed_device",
            "individual_accuracy_pct",
            "local_accuracy_pct",
            "cloud_accuracy_pct",
            "overall_accuracy_pct",
            "local_exit_pct",
        ],
        metadata={"scale": scale.name, "threshold": threshold},
    )

    for device_index in range(test_set.num_devices):
        degraded = test_set.with_failed_devices([device_index])
        # One forward of the degraded set answers both the per-exit and the
        # staged measures (previously two forwards per failed device).
        oracle = capture_oracle(model, degraded)
        exit_accuracy = oracle.exit_accuracies()
        staged = oracle.route(threshold)
        result.add_row(
            failed_device=device_index + 1,
            individual_accuracy_pct=100.0 * individual.get(device_index, float("nan")),
            local_accuracy_pct=100.0 * exit_accuracy["local"],
            cloud_accuracy_pct=100.0 * exit_accuracy["cloud"],
            overall_accuracy_pct=100.0 * staged.overall_accuracy(degraded.labels),
            local_exit_pct=100.0 * staged.local_exit_fraction,
        )
    return result


def run_multi_device_failures(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    max_failures: Optional[int] = None,
) -> ExperimentResult:
    """Graceful degradation: fail an increasing number of devices (Sec. IV-G)."""
    scale = scale if scale is not None else default_scale()
    _, test_set = get_dataset(scale)
    model, _ = get_trained_ddnn(scale)
    individual = compute_individual_accuracies(scale)
    # Fail the strongest devices first — the paper's worst case.
    order = sorted(individual, key=individual.get, reverse=True)
    max_failures = test_set.num_devices - 1 if max_failures is None else max_failures

    result = ExperimentResult(
        name="multi_device_failures",
        paper_reference="Section IV-G",
        columns=[
            "num_failed",
            "failed_devices",
            "local_accuracy_pct",
            "cloud_accuracy_pct",
            "overall_accuracy_pct",
        ],
        metadata={"scale": scale.name, "threshold": threshold},
    )
    for count in range(0, max_failures + 1):
        failed = order[:count]
        degraded = test_set.with_failed_devices(failed) if failed else test_set
        oracle = capture_oracle(model, degraded)
        exit_accuracy = oracle.exit_accuracies()
        staged = oracle.route(threshold)
        result.add_row(
            num_failed=count,
            failed_devices=",".join(str(d + 1) for d in failed) if failed else "-",
            local_accuracy_pct=100.0 * exit_accuracy["local"],
            cloud_accuracy_pct=100.0 * exit_accuracy["cloud"],
            overall_accuracy_pct=100.0 * staged.overall_accuracy(degraded.labels),
        )
    return result
