"""Experiment S5 — the elastic tier plane under a diurnal load ramp.

Two studies over the :class:`~repro.hierarchy.plan.PartitionPlan` machinery
this repo's elastic refactor introduced:

* **diurnal ramp** — the same trained model served through three fabric
  configurations against an identical sinusoidal
  :class:`~repro.serving.loadgen.DiurnalProcess` arrival stream (trough
  below one worker's capacity, crest needing the full worker budget), with
  a bounded ingress queue and shed-local admission:

  - ``static-min`` — one worker per tier, all day: cheap, but the crest
    overloads it and the tail latency / shed rate show it;
  - ``static-peak`` — the peak worker budget per tier, all day: the
    latency floor, at maximum provisioning cost;
  - ``elastic`` — starts at one worker and lets the
    :class:`~repro.serving.autoscale.Autoscaler` move each tier between
    the watermarks, so the crest is served at peak capacity and the
    trough releases it.

  The acceptance bar is the elastic row matching the fully-provisioned
  static row at the tail (``p95(elastic) <= p95(static-peak)``) while
  provisioning fewer worker-seconds; the run *raises* if elastic is worse,
  so a written table is itself evidence.

* **mid-run repartition** — a live fabric serving a request stream has its
  section boundary moved by :meth:`~repro.serving.fabric.DistributedServingFabric.apply_plan`
  (local exit disabled → devices become pure feature extractors)
  mid-burst.  Every request queued at the handoff is served under the new
  plan, and the post-handoff routing (prediction + exit per request) must
  be byte-identical to a fabric freshly built at the new boundary —
  mismatches, drops and duplicates all raise.

Everything runs on the simulated backend, so rows are deterministic; the
metadata still records the visible CPU count for parity with the other
serving studies.
"""

from __future__ import annotations

from typing import Optional

from ..hierarchy.plan import AutoscalePolicy, PartitionPlan
from ..serving import (
    BatchingPolicy,
    DistributedServingFabric,
    DiurnalProcess,
    ServiceModel,
    admission_policy,
)
from .parallel_serving import available_cpu_count
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn

__all__ = [
    "DEFAULT_PEAK_WORKERS",
    "run_elastic_serving",
]

DEFAULT_PEAK_WORKERS = 3


def _routing(responses, after: float = float("-inf")) -> list:
    """Per-request (id, prediction, exit) triples completed after ``after``."""
    return sorted(
        (r.request_id, r.prediction, r.exit_index, r.exit_name)
        for r in responses
        if r.completion_time > after
    )


def run_elastic_serving(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    peak_workers: int = DEFAULT_PEAK_WORKERS,
    num_requests: int = 240,
    max_batch_size: int = 4,
    capacity: int = 32,
    seed: int = 0,
) -> ExperimentResult:
    """Measure static-vs-elastic tails and mid-run repartition identity."""
    scale = scale if scale is not None else default_scale()
    if peak_workers < 2:
        raise ValueError(f"peak_workers must be >= 2, got {peak_workers}")
    if num_requests < 8:
        raise ValueError(f"num_requests must be >= 8, got {num_requests}")

    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)
    views = test_set.images
    targets = [int(label) for label in test_set.labels]

    # Machine-independent service times: one device-tier worker sustains
    # ~cap rps on full batches; the diurnal crest offers peak_workers times
    # the trough, so static-min drowns at the crest while the peak budget
    # keeps up with headroom.
    service = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.004)
    one_worker_rps = service.capacity_rps(max_batch_size)
    base_rate = 0.6 * one_worker_rps
    peak_rate = 0.8 * peak_workers * one_worker_rps
    batching = BatchingPolicy(max_batch_size=max_batch_size, max_wait_s=0.004)
    # Scale up on the first sign of backlog (a queued request *is* the
    # evidence), release a worker after a sustained lull.
    policy = AutoscalePolicy(
        min_workers=1,
        max_workers=peak_workers,
        high_watermark=1,
        low_watermark=0,
        cooldown_s=0.5,
        step=peak_workers - 1,
    )

    result = ExperimentResult(
        name="elastic_serving",
        paper_reference="Elastic tier plane (diurnal ramp + live re-partition)",
        columns=[
            "sweep",
            "config",
            "workers",
            "served",
            "shed_rate",
            "p50_ms",
            "p95_ms",
            "peak_workers",
            "detail",
        ],
        metadata={
            "scale": scale.name,
            "threshold": threshold,
            "num_requests": num_requests,
            "peak_worker_budget": peak_workers,
            "capacity": capacity,
            "base_rate_rps": base_rate,
            "peak_rate_rps": peak_rate,
            "one_worker_rps": one_worker_rps,
            "seed": seed,
            "cpu_count": available_cpu_count(),
            "backend": "simulated",
            "note": (
                "simulated backend: rows are deterministic; elastic p95 must "
                "not exceed static-peak p95 (asserted at run time)"
            ),
        },
    )

    # ------------------------------------------------------------------ #
    # Diurnal ramp: identical arrival stream, three provisioning schemes.
    period = 2.0 * num_requests / (base_rate + peak_rate)  # ~one full cycle

    def _ramp(config: str) -> dict:
        if config == "static-min":
            plan = PartitionPlan(model, workers_per_tier=1)
        elif config == "static-peak":
            plan = PartitionPlan(model, workers_per_tier=peak_workers)
        else:
            plan = PartitionPlan(model, workers_per_tier=1, autoscale=policy)
        fabric = DistributedServingFabric.from_plan(
            plan,
            threshold,
            batching=batching,
            service_models=[service] * plan.num_tiers,
            capacity=capacity,
            admission=admission_policy("shed-local"),
        )
        process = DiurnalProcess(base_rate, peak_rate, period_s=period, seed=seed)
        report = fabric.open_loop(
            process, views, targets=targets, num_requests=num_requests
        )
        scaler = fabric.autoscaler
        return {
            "served": report.served,
            "shed": report.shed_fraction,
            "p50_ms": 1e3 * report.p50_latency_s,
            "p95_ms": 1e3 * report.p95_latency_s,
            "peak": max(scaler.peak_workers) if scaler is not None else max(
                plan.worker_counts()
            ),
            "trajectory": list(scaler.trajectory) if scaler is not None else [],
        }

    ramp = {config: _ramp(config) for config in ("static-min", "static-peak", "elastic")}
    for config, row in ramp.items():
        workers = {
            "static-min": "1",
            "static-peak": str(peak_workers),
            "elastic": f"1..{peak_workers}",
        }[config]
        result.add_row(
            sweep="diurnal",
            config=config,
            workers=workers,
            served=row["served"],
            shed_rate=row["shed"],
            p50_ms=row["p50_ms"],
            p95_ms=row["p95_ms"],
            peak_workers=row["peak"],
            detail=f"{len(row['trajectory'])} scale events",
        )
    result.metadata["elastic_trajectory"] = [
        (round(t, 4), tier, n) for t, tier, n in ramp["elastic"]["trajectory"]
    ]
    if ramp["elastic"]["p95_ms"] > ramp["static-peak"]["p95_ms"]:
        raise RuntimeError(
            f"elastic p95 ({ramp['elastic']['p95_ms']:.3f} ms) exceeds the "
            f"equal-peak-budget static p95 ({ramp['static-peak']['p95_ms']:.3f} ms) "
            "— the autoscaler failed to track the diurnal crest"
        )

    # ------------------------------------------------------------------ #
    # Mid-run repartition: move the boundary on a live fabric mid-burst and
    # compare post-handoff routing against a fabric born at the new boundary.
    plan_a = PartitionPlan(model)
    plan_b = plan_a.with_changes(local_exit=False)
    burst = min(num_requests, len(views))
    gap = 1.0 / (1.5 * one_worker_rps)  # mild overload so a backlog exists
    switch_at = burst * gap / 2.0
    # The same modelled service times on both fabrics (they change *when*
    # things happen, never what is computed) — sustained 1.5x overload
    # guarantees requests are queued when the boundary moves.
    tier_services = [service] * plan_a.num_tiers

    live = DistributedServingFabric.from_plan(
        plan_a, threshold, batching=batching, service_models=tier_services
    )
    for index in range(burst):
        live.submit(views[index], target=targets[index], at=index * gap)
    outcome = {}
    live.events.schedule(
        switch_at, lambda now: outcome.update(report=live.apply_plan(plan_b, now=now))
    )
    live.run_until_idle(drain=True)
    handoff = live.last_repartition
    assert handoff is not None

    fresh = DistributedServingFabric.from_plan(
        plan_b, threshold, batching=batching, service_models=tier_services
    )
    for index in range(burst):
        fresh.submit(views[index], target=targets[index], at=index * gap)
    fresh.run_until_idle(drain=True)

    live_ids = [r.request_id for r in live.responses]
    if len(live_ids) != burst or len(set(live_ids)) != burst:
        raise RuntimeError(
            f"repartition dropped or duplicated requests: {burst} submitted, "
            f"{len(live_ids)} answered ({len(set(live_ids))} unique)"
        )
    if handoff.total_requeued == 0:
        raise RuntimeError(
            "repartition study found no queued requests at the handoff — "
            "the boundary move was not exercised under load"
        )
    after = _routing(live.responses, after=handoff.time)
    after_ids = {row[0] for row in after}
    reference = [row for row in _routing(fresh.responses) if row[0] in after_ids]
    if after != reference:
        mismatches = sum(1 for a, b in zip(after, reference) if a != b)
        raise RuntimeError(
            f"post-handoff routing diverged from the freshly-built fabric at "
            f"the new boundary on {mismatches}/{len(after)} requests"
        )
    pre = burst - len(after)
    result.add_row(
        sweep="repartition",
        config="local-exit→off",
        workers="1",
        served=burst,
        shed_rate=0.0,
        p50_ms=0.0,
        p95_ms=0.0,
        peak_workers=1,
        detail=(
            f"pre={pre} post={len(after)} requeued={handoff.total_requeued} "
            f"match=yes dropped=0 duplicated=0"
        ),
    )
    result.metadata["repartition"] = {
        "switch_at_s": switch_at,
        "handoff_at_s": handoff.time,
        "requeued": handoff.requeued,
        "synchronous": outcome.get("report") is not None,
        "post_handoff_requests": len(after),
    }
    return result
