"""Experiment E7 — communication reduction vs raw offloading (paper Sec. IV-H).

The paper compares the DDNN's average per-sample communication (Eq. 1 at the
chosen threshold) against offloading the raw 32x32 RGB image (3072 bytes) and
reports an over-20x reduction.  This experiment reproduces that comparison
and also reports the cloud-only baseline's accuracy so the trade-off is
visible: the DDNN keeps (or improves) accuracy while transmitting a small
fraction of the bytes.
"""

from __future__ import annotations

from typing import Optional

from ..baselines.cloud_only import CloudOnlyBaseline
from ..core.communication import raw_offload_bytes
from .results import ExperimentResult
from .runner import ExperimentScale, capture_oracle, default_scale, get_dataset, get_trained_ddnn

__all__ = ["run_communication_reduction"]


def run_communication_reduction(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    include_cloud_baseline: bool = True,
) -> ExperimentResult:
    """DDNN bytes/sample and reduction factor vs the raw-offload baseline."""
    scale = scale if scale is not None else default_scale()
    train_set, test_set = get_dataset(scale)
    model, _ = get_trained_ddnn(scale)

    oracle = capture_oracle(model, test_set)
    staged = oracle.route(threshold)
    ddnn_bytes = oracle.communication_bytes(staged)
    raw_bytes = raw_offload_bytes(model.config.input_channels, model.config.input_size)

    result = ExperimentResult(
        name="sec4h_communication_reduction",
        paper_reference="Section IV-H",
        columns=[
            "system",
            "bytes_per_sample",
            "overall_accuracy_pct",
            "local_exit_pct",
            "reduction_factor",
        ],
        metadata={"scale": scale.name, "threshold": threshold},
    )
    result.add_row(
        system="ddnn",
        bytes_per_sample=ddnn_bytes,
        overall_accuracy_pct=100.0 * staged.overall_accuracy(test_set.labels),
        local_exit_pct=100.0 * staged.local_exit_fraction,
        reduction_factor=raw_bytes / ddnn_bytes,
    )

    if include_cloud_baseline:
        baseline = CloudOnlyBaseline(
            num_devices=model.config.num_devices,
            num_classes=model.config.num_classes,
            input_channels=model.config.input_channels,
            input_size=model.config.input_size,
            device_filters=model.config.device_filters,
            cloud_filters=model.config.cloud_filters,
            cloud_conv_blocks=model.config.cloud_conv_blocks,
            cloud_hidden_units=model.config.cloud_hidden_units,
            seed=model.config.seed,
        )
        baseline.fit(train_set, scale.training_config())
        evaluation = baseline.evaluate(test_set)
        result.add_row(
            system="cloud_offload_raw",
            bytes_per_sample=evaluation.bytes_per_device_per_sample,
            overall_accuracy_pct=100.0 * evaluation.accuracy,
            local_exit_pct=0.0,
            reduction_factor=1.0,
        )
    return result
