"""Experiment E9b — mixed-precision cloud (paper Section VI, future work).

The paper keeps every NN layer binary but observes that binary layers are
only *required* on the end devices; the cloud could use floating-point
layers.  This extension trains the same MP-CC architecture twice — once with
a binary cloud section and once with a float (standard) cloud section — and
compares the exit accuracies, reproducing the mixed-precision scheme the
authors propose as future work.

Since the compiled stack grew kernel-level compute modes (PR 9), each table
row also cross-checks the *kernel-side* precisions on the same trained
model: the ``float32`` compiled mode must route in agreement with the fp64
oracle (its ≥99.9% tolerance guarantee) and the ``bitpacked`` mode must
reproduce the fp64 logits bit for bit — so the paper-side mixed-precision
scheme (which layers are binary) and the kernel-side compute modes (what
dtype the GEMMs run in) are validated against each other in one place.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..compile import routing_agreement
from .results import ExperimentResult
from .runner import ExperimentScale, capture_oracle, default_scale, get_dataset, get_trained_ddnn

__all__ = ["run_mixed_precision"]


def run_mixed_precision(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
) -> ExperimentResult:
    """Binary cloud vs floating-point cloud with binary end devices."""
    scale = scale if scale is not None else default_scale()
    _, test_set = get_dataset(scale)

    result = ExperimentResult(
        name="ext_mixed_precision",
        paper_reference="Section VI (mixed precision)",
        columns=[
            "cloud_precision",
            "local_accuracy_pct",
            "cloud_accuracy_pct",
            "overall_accuracy_pct",
            "fp32_overall_accuracy_pct",
            "fp32_routing_agreement",
            "bitpacked_identical",
        ],
        metadata={"scale": scale.name, "threshold": threshold},
    )
    for label, binary_cloud in (("binary", True), ("float", False)):
        config = scale.ddnn_config(binary_cloud=binary_cloud)
        model, _ = get_trained_ddnn(scale, config=config)
        oracle = capture_oracle(model, test_set)
        accuracies = oracle.exit_accuracies()
        staged = oracle.route(threshold)

        # Kernel-side compute modes on the same trained model: fp32 carries
        # a routing-agreement tolerance, bitpacked must be bit-identical.
        fp32_oracle = capture_oracle(model, test_set, precision="float32")
        packed_oracle = capture_oracle(model, test_set, precision="bitpacked")
        fp32_staged = fp32_oracle.route(threshold)
        agreement = routing_agreement(oracle.logits, fp32_oracle.logits)
        packed_identical = np.array_equal(oracle.logits, packed_oracle.logits)

        result.add_row(
            cloud_precision=label,
            local_accuracy_pct=100.0 * accuracies["local"],
            cloud_accuracy_pct=100.0 * accuracies["cloud"],
            overall_accuracy_pct=100.0 * staged.overall_accuracy(test_set.labels),
            fp32_overall_accuracy_pct=100.0
            * fp32_staged.overall_accuracy(test_set.labels),
            fp32_routing_agreement=float(agreement),
            bitpacked_identical="yes" if packed_identical else "no",
        )
    return result
