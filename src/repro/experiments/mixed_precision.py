"""Experiment E9b — mixed-precision cloud (paper Section VI, future work).

The paper keeps every NN layer binary but observes that binary layers are
only *required* on the end devices; the cloud could use floating-point
layers.  This extension trains the same MP-CC architecture twice — once with
a binary cloud section and once with a float (standard) cloud section — and
compares the exit accuracies, reproducing the mixed-precision scheme the
authors propose as future work.
"""

from __future__ import annotations

from typing import Optional

from .results import ExperimentResult
from .runner import ExperimentScale, capture_oracle, default_scale, get_dataset, get_trained_ddnn

__all__ = ["run_mixed_precision"]


def run_mixed_precision(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
) -> ExperimentResult:
    """Binary cloud vs floating-point cloud with binary end devices."""
    scale = scale if scale is not None else default_scale()
    _, test_set = get_dataset(scale)

    result = ExperimentResult(
        name="ext_mixed_precision",
        paper_reference="Section VI (mixed precision)",
        columns=[
            "cloud_precision",
            "local_accuracy_pct",
            "cloud_accuracy_pct",
            "overall_accuracy_pct",
        ],
        metadata={"scale": scale.name, "threshold": threshold},
    )
    for label, binary_cloud in (("binary", True), ("float", False)):
        config = scale.ddnn_config(binary_cloud=binary_cloud)
        model, _ = get_trained_ddnn(scale, config=config)
        oracle = capture_oracle(model, test_set)
        accuracies = oracle.exit_accuracies()
        staged = oracle.route(threshold)
        result.add_row(
            cloud_precision=label,
            local_accuracy_pct=100.0 * accuracies["local"],
            cloud_accuracy_pct=100.0 * accuracies["cloud"],
            overall_accuracy_pct=100.0 * staged.overall_accuracy(test_set.labels),
        )
    return result
