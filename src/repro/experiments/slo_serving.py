"""Experiment S7 — end-to-end SLO budgets and hedged offloads under chaos.

The chaos study (:mod:`~repro.experiments.chaos_serving`) shows the fabric
*survives* faults; this one asks what surviving costs the tail, and what an
explicit end-to-end budget buys back.  One identical Poisson trace is
served under the chaos scenarios three times:

* ``no-slo`` — PR-8 resilience only: offload deadlines, retry ladders,
  circuit breaking, failover.  Requests carry no end-to-end budget, so a
  request can spend the whole worst-case recovery ladder in the tail.
* ``deadline`` — every request carries a
  :class:`~repro.serving.resilience.Deadline` (``slo_s``): expired
  requests are retired from tier queues *before* burning compute, retry
  ladders are clipped to the remaining budget, and batches form
  earliest-deadline-first.  The tail is capped near the budget.
* ``deadline+hedge`` — additionally, an offload that has consumed a
  :class:`~repro.serving.resilience.HedgePolicy` fraction of its budget
  without delivering is speculatively re-sent to a sibling replica stack
  via the :class:`~repro.serving.balancer.LoadBalancer`; first arrival
  wins, the loser is cancelled, hedge bytes are honestly charged.

The run *raises* (rather than records) when the SLO plane fails its
contract: every (mode, scenario) must answer every request exactly once;
no expired request may consume a remote compute slot
(``expired_compute == 0``); the fault-free baselines must show zero
expiries, zero retries and zero hedges; hedging must *strictly* improve
the chaos p99 against deadline-only at equal answer count on the
link-chaos scenarios; deadline propagation must strictly improve the
worker-crash p99 against no-slo (queue retirement caps the blackout
tail); and every cell must replay byte-identically — same seed, fresh
fabrics → identical per-request accounting *including hedge decisions and
deadline flags*.

A separate wall-clock smoke (:func:`run_wallclock_slo_smoke`) runs the
same machinery — chaos schedule, retry policy, deadlines — on the
``thread`` backend against a real :class:`~repro.serving.clock.WallClock`
with tolerance-based assertions, so the SLO plane is exercised outside
the simulated-clock comfort zone.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..hierarchy.faults import ChaosSchedule, LinkFlap, LinkLoss, LinkOutage, WorkerCrash
from ..hierarchy.plan import PartitionPlan
from ..serving import (
    BatchingPolicy,
    CircuitBreaker,
    DistributedServingFabric,
    HedgePolicy,
    LoadBalancer,
    PoissonProcess,
    RetryPolicy,
    ServiceModel,
)
from .chaos_serving import _uplink_delay_estimate
from .parallel_serving import available_cpu_count
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn

__all__ = [
    "DEFAULT_MODES",
    "DEFAULT_SCENARIOS",
    "run_slo_serving",
    "run_wallclock_slo_smoke",
]

DEFAULT_MODES = ("no-slo", "deadline", "deadline+hedge")
DEFAULT_SCENARIOS = ("none", "flaky-uplink", "cloud-partition", "worker-crash")

#: Hedge trigger as a fraction of the offload group's remaining budget.
#: It must sit between one healthy delivery (<= deadline/2 of a budget of
#: eight deadlines, so the fault-free baseline sends zero hedges) and the
#: first attempt's timeout (so a hedge preempts the retry ladder instead
#: of merely racing its failover).
HEDGE_TRIGGER_FRACTION = 0.1


def _accounting(responses) -> List[tuple]:
    """Per-request accounting tuple determinism is asserted over — includes
    the SLO plane's flags, so hedge routing and deadline retirement must
    replay exactly, not just predictions."""
    return sorted(
        (
            r.request_id,
            r.prediction,
            r.exit_index,
            r.exit_name,
            r.degraded,
            r.retries,
            r.hedged,
            r.deadline_exceeded,
            r.completion_time,
            r.bytes_transferred,
        )
        for r in responses
    )


def run_slo_serving(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    num_requests: int = 160,
    max_batch_size: int = 4,
    seed: int = 0,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
    modes: Sequence[str] = DEFAULT_MODES,
) -> ExperimentResult:
    """Serve one trace per (mode, scenario); assert the SLO plane's contract."""
    scale = scale if scale is not None else default_scale()
    if num_requests < 16:
        raise ValueError(f"num_requests must be >= 16, got {num_requests}")
    unknown = [s for s in scenarios if s not in DEFAULT_SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenarios {unknown} (choose from {DEFAULT_SCENARIOS})")
    unknown = [m for m in modes if m not in DEFAULT_MODES]
    if unknown:
        raise ValueError(f"unknown modes {unknown} (choose from {DEFAULT_MODES})")
    if "none" not in scenarios:
        scenarios = ("none",) + tuple(scenarios)
    modes = tuple(m for m in DEFAULT_MODES if m in modes)  # canonical order

    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)
    views = test_set.images
    targets = [int(label) for label in test_set.labels]

    # Same machine-independent constants as the chaos study, so the two
    # tables are comparable cell for cell.
    service = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.004)
    rate = 0.5 * service.capacity_rps(max_batch_size)
    horizon = num_requests / rate
    batching = BatchingPolicy(max_batch_size=max_batch_size, max_wait_s=0.004)

    transfer = _uplink_delay_estimate(PartitionPlan(model).materialize())
    deadline = max(2.0 * transfer, 0.04)
    policy = RetryPolicy(
        deadline_s=deadline,
        max_retries=3,
        backoff_base_s=deadline / 2.0,
        backoff_multiplier=2.0,
        backoff_max_s=4.0 * deadline,
        jitter_s=deadline / 10.0,
        seed=seed,
    )
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=2.5 * deadline)
    # The end-to-end budget: generous against one healthy journey, tight
    # against the retry ladder's worst case — so the budget only ever binds
    # when chaos is actually eating the slack.
    slo_s = 8.0 * deadline
    hedge = HedgePolicy(trigger_fraction=HEDGE_TRIGGER_FRACTION, max_hedges=1)

    flap_period = max(horizon / 5.0, 4.0 * deadline)
    flap_down = min(1.25 * deadline, 0.45 * flap_period)
    partition = (0.25 * horizon, 0.75 * horizon)
    # Unlike the chaos study, the blackout must *outlast* the budget —
    # a crash window shorter than slo_s is invisible to the deadline plane
    # (queued work just waits it out and still answers in budget).
    crash = (0.30 * horizon, 0.30 * horizon + max(0.25 * horizon, 1.5 * slo_s))

    def _schedule(scenario: str, uplink_to: str, top_tier: str) -> Optional[ChaosSchedule]:
        if scenario == "none":
            return None
        if scenario == "flaky-uplink":
            return ChaosSchedule(
                flaps=[
                    LinkFlap(
                        period_s=flap_period,
                        down_s=flap_down,
                        destination=uplink_to,
                        start=0.1 * horizon,
                        end=0.9 * horizon,
                    )
                ],
                losses=[
                    LinkLoss(
                        probability=0.08,
                        destination=uplink_to,
                        start=0.1 * horizon,
                        end=0.9 * horizon,
                    )
                ],
                seed=seed,
            )
        if scenario == "cloud-partition":
            return ChaosSchedule(
                outages=[
                    LinkOutage(destination=uplink_to, start=partition[0], end=partition[1])
                ],
                seed=seed,
            )
        return ChaosSchedule(
            crashes=[WorkerCrash(tier=top_tier, start=crash[0], end=crash[1])],
            seed=seed,
        )

    # Requests *submitted inside the fault window* are the population the
    # SLO machinery acts on; gating on their tail (rather than the whole
    # trace's) keeps the assertions meaningful at any trace length, where
    # the global p99 quantile can land on an unaffected request.
    windows = {
        "none": (0.0, float("inf")),
        "flaky-uplink": (0.1 * horizon, 0.9 * horizon),
        "cloud-partition": partition,
        "worker-crash": crash,
    }

    def _window_p99(report, scenario: str) -> float:
        lo, hi = windows[scenario]
        latencies = [
            r.latency_s for r in report.responses if lo <= r.submit_time <= hi
        ]
        if not latencies:
            raise RuntimeError(
                f"no requests were submitted inside the '{scenario}' fault "
                f"window [{lo:.3f}, {hi:.3f}]s — the chaos never touched the "
                "trace, so the SLO plane went unexercised"
            )
        return float(np.percentile(np.asarray(latencies), 99))

    def _run(mode: str, scenario: str) -> Dict:
        use_deadline = mode != "no-slo"
        use_hedge = mode == "deadline+hedge"
        # Identical two-replica topology in every mode, so compute capacity
        # is equal and the measured differences are the SLO plane alone.
        # All traffic enters replica 0 (where chaos strikes); replica 1 only
        # ever sees hedge copies.
        plan = PartitionPlan(
            model,
            replicas=2,
            slo_s=slo_s if use_deadline else None,
            hedge=hedge if use_hedge else None,
        )
        balancer = LoadBalancer.from_plan(
            plan,
            threshold,
            strategy="round-robin",
            batching=batching,
            service_models=[service] * plan.num_tiers,
            offload=policy,
            breaker=breaker,
            edf=use_deadline,
        )
        origin = balancer.replicas[0]
        schedule = _schedule(scenario, origin.tier_names[-1], origin.tier_names[-1])
        if schedule is not None:
            origin.attach_chaos(schedule)
        arrivals = PoissonProcess(rate_rps=rate, seed=seed + 1)
        for count, when in zip(range(num_requests), arrivals):
            index = count % len(views)
            origin.submit(views[index], target=targets[index], at=when)
        balancer.run_until_idle(drain=True)
        report = balancer.report(duration_s=origin.clock.now)
        ids = [r.request_id for r in report.responses]
        if report.served != num_requests or len(set(ids)) != num_requests:
            raise RuntimeError(
                f"slo cell ({mode}, {scenario}) dropped or duplicated requests: "
                f"{num_requests} offered, {report.served} answered "
                f"({len(set(ids))} unique) — every request must be answered "
                "exactly once, expired or not"
            )
        resilience = report.metadata["resilience"]
        if resilience["expired_compute"] != 0:
            raise RuntimeError(
                f"slo cell ({mode}, {scenario}) let {resilience['expired_compute']} "
                "expired request(s) burn a remote compute slot — expired work "
                "must be retired at batch formation, not computed"
            )
        # A hit answers strictly inside the budget with its intended (not
        # deadline-retired) result; a request retired *at* its budget has
        # latency == slo_s and must not count as both hit and expired.
        hit = (
            sum(
                1
                for r in report.responses
                if not r.deadline_exceeded and r.latency_s < slo_s
            )
            / report.served
        )
        return {
            "report": report,
            "accounting": _accounting(report.responses),
            "resilience": resilience,
            "breakers": report.metadata["breakers"],
            "hit_rate": hit,
            "window_p99_s": _window_p99(report, scenario),
            "lost_messages": origin.deployment.fabric.lost_messages,
        }

    result = ExperimentResult(
        name="slo_serving",
        paper_reference=(
            "End-to-end SLO plane over the fault-tolerant fabric (Section "
            "IV-G online): deadline propagation across tiers + hedged "
            "offloads to sibling replicas"
        ),
        columns=[
            "mode",
            "scenario",
            "served",
            "p50_ms",
            "p99_ms",
            "chaos_p99_ms",
            "hit_pct",
            "expired_pct",
            "degraded_pct",
            "retries",
            "hedges",
            "hedge_wins",
            "hedge_kb",
        ],
        metadata={
            "scale": scale.name,
            "threshold": threshold,
            "num_requests": num_requests,
            "offered_rate_rps": rate,
            "horizon_s": horizon,
            "slo_s": slo_s,
            "deadline_s": deadline,
            "hedge_trigger_fraction": hedge.trigger_fraction,
            "max_hedges": hedge.max_hedges,
            "worst_case_recovery_s": policy.worst_case_delay_s(),
            "uplink_transfer_estimate_s": transfer,
            "flap": {"period_s": flap_period, "down_s": flap_down},
            "partition_window_s": list(partition),
            "crash_window_s": list(crash),
            "seed": seed,
            "cpu_count": available_cpu_count(),
            "backend": "simulated",
            "note": (
                "hit_pct = answers within the end-to-end budget slo_s; every "
                "cell asserted exactly-once, zero expired-compute, and "
                "byte-reproducible under its seed (hedge decisions and "
                "deadline flags included); hedging must strictly beat "
                "deadline-only chaos_p99 (tail over requests submitted in "
                "the fault window) on link-chaos scenarios, and deadline "
                "propagation must strictly beat no-slo chaos_p99 and hit "
                "rate on worker-crash"
            ),
        },
    )

    outcomes: Dict[tuple, Dict] = {}
    for mode in modes:
        for scenario in scenarios:
            first = _run(mode, scenario)
            second = _run(mode, scenario)
            if first["accounting"] != second["accounting"]:
                diverged = sum(
                    1
                    for a, b in zip(first["accounting"], second["accounting"])
                    if a != b
                )
                raise RuntimeError(
                    f"slo cell ({mode}, {scenario}) is not deterministic under "
                    f"seed {seed}: {diverged}/{num_requests} per-request "
                    "accounting tuples (incl. hedge/deadline flags) differ "
                    "between two fresh simulated runs"
                )
            outcomes[(mode, scenario)] = first
            report = first["report"]
            resilience = first["resilience"]
            result.add_row(
                mode=mode,
                scenario=scenario,
                served=report.served,
                p50_ms=1e3 * report.p50_latency_s,
                p99_ms=1e3 * report.p99_latency_s,
                chaos_p99_ms=1e3 * first["window_p99_s"],
                hit_pct=100.0 * first["hit_rate"],
                expired_pct=100.0 * report.deadline_exceeded_fraction,
                degraded_pct=100.0 * report.degraded_fraction,
                retries=report.retry_total,
                hedges=report.hedge_total,
                hedge_wins=resilience["hedge_wins"],
                hedge_kb=report.hedge_bytes / 1e3,
            )

    # -- fault-free baselines never touch the SLO recovery machinery ------ #
    for mode in modes:
        baseline = outcomes[(mode, "none")]
        report = baseline["report"]
        resilience = baseline["resilience"]
        if report.retry_total or report.degraded_fraction:
            raise RuntimeError(
                f"fault-free baseline of mode '{mode}' retried or degraded "
                f"(retries={report.retry_total}, "
                f"degraded={report.degraded_fraction:.3f})"
            )
        if mode != "no-slo" and resilience["deadline_expired"]:
            raise RuntimeError(
                f"fault-free baseline of mode '{mode}' expired "
                f"{resilience['deadline_expired']} request(s) — the budget "
                f"({slo_s:.4f}s) is too tight for healthy journeys"
            )
        if report.hedge_total:
            raise RuntimeError(
                f"fault-free baseline of mode '{mode}' sent "
                f"{report.hedge_total} hedge(s) — the trigger fraction "
                f"({hedge.trigger_fraction}) fires before one healthy delivery"
            )
    if outcomes[(modes[0], "none")]["report"].offload_fraction <= 0.0:
        raise RuntimeError(
            f"threshold {threshold} offloads nothing at the baseline — the "
            "SLO plane would be unexercised; lower the threshold"
        )

    # -- hedging must strictly improve the link-chaos tail ---------------- #
    # Gated on the in-window tail (chaos_p99_ms): hedging's claim is about
    # the requests the fault actually touched, and the whole-trace p99
    # quantile can land on an unaffected request at some trace lengths.
    if "deadline" in modes and "deadline+hedge" in modes:
        for scenario in ("flaky-uplink", "cloud-partition"):
            if scenario not in scenarios:
                continue
            plain = outcomes[("deadline", scenario)]
            hedged = outcomes[("deadline+hedge", scenario)]
            if hedged["report"].served != plain["report"].served:
                raise RuntimeError(
                    f"hedging changed the answer count on '{scenario}' "
                    f"({hedged['report'].served} vs {plain['report'].served}) "
                    "— p99 comparison is meaningless"
                )
            if not hedged["window_p99_s"] < plain["window_p99_s"]:
                raise RuntimeError(
                    f"hedging did not strictly improve '{scenario}' in-window "
                    f"p99: {1e3 * hedged['window_p99_s']:.2f}ms (hedged) vs "
                    f"{1e3 * plain['window_p99_s']:.2f}ms (deadline-only) at "
                    f"{hedged['report'].served} answers each"
                )
            if hedged["report"].hedge_total == 0:
                raise RuntimeError(
                    f"'{scenario}' sent zero hedges — the trigger never fired, "
                    "so the improvement (if any) is not hedging"
                )

    # -- deadline propagation must cap the worker-crash blackout tail ----- #
    if "no-slo" in modes and "deadline" in modes and "worker-crash" in scenarios:
        unbounded = outcomes[("no-slo", "worker-crash")]
        bounded = outcomes[("deadline", "worker-crash")]
        if not bounded["hit_rate"] > unbounded["hit_rate"]:
            raise RuntimeError(
                "deadline propagation did not strictly improve the "
                f"worker-crash hit rate: {100 * bounded['hit_rate']:.1f}% "
                f"(deadline) vs {100 * unbounded['hit_rate']:.1f}% (no-slo) — "
                "retiring expired work should protect the not-yet-expired "
                "backlog"
            )
        if not bounded["window_p99_s"] < unbounded["window_p99_s"]:
            raise RuntimeError(
                "deadline propagation did not strictly improve the "
                f"worker-crash in-window p99: "
                f"{1e3 * bounded['window_p99_s']:.2f}ms (deadline) vs "
                f"{1e3 * unbounded['window_p99_s']:.2f}ms (no-slo) — queue "
                "retirement should cap the blackout tail"
            )
        if outcomes[("deadline", "worker-crash")]["resilience"]["deadline_expired"] == 0:
            raise RuntimeError(
                "the worker-crash window expired nothing under deadlines — "
                "the blackout never intersected a queued budget, so the "
                "retirement path went unexercised"
            )

    result.metadata["resilience_stats"] = {
        f"{mode}/{scenario}": outcome["resilience"]
        for (mode, scenario), outcome in outcomes.items()
    }
    result.metadata["breakers"] = {
        f"{mode}/{scenario}": outcome["breakers"]
        for (mode, scenario), outcome in outcomes.items()
    }
    result.metadata["hit_rates"] = {
        f"{mode}/{scenario}": outcome["hit_rate"]
        for (mode, scenario), outcome in outcomes.items()
    }
    return result


def run_wallclock_slo_smoke(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    num_requests: int = 24,
    seed: int = 0,
) -> Dict:
    """Chaos + deadlines on the ``thread`` backend under a real WallClock.

    The simulated table above proves the semantics; this smoke proves the
    same machinery holds up when time is real: worker-crash windows open
    and close at wall-clock boundaries, offload retry timers genuinely
    wait, and expiry timers retire queued requests mid-run.  Assertions
    are tolerance-based (real scheduling jitters); the exactly-once and
    honest-flag invariants are exact on any machine.  Returns a dict of
    the measured facts for the caller to print or assert on further.
    """
    scale = scale if scale is not None else default_scale()
    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)
    views = test_set.images
    targets = [int(label) for label in test_set.labels]

    plan = PartitionPlan(model)
    transfer = _uplink_delay_estimate(plan.materialize())
    deadline = max(2.0 * transfer, 0.04)
    policy = RetryPolicy(
        deadline_s=deadline,
        max_retries=2,
        backoff_base_s=deadline / 2.0,
        backoff_multiplier=2.0,
        backoff_max_s=2.0 * deadline,
        jitter_s=deadline / 10.0,
        seed=seed,
    )
    # The budget must be generous against one healthy journey (~tens of ms
    # on the tiny model) yet clearly shorter than the blackout, so queued
    # requests genuinely expire on the wall clock and are retired mid-crash.
    slo_s = 0.25
    crash = (0.15, 0.70)  # real seconds: the cloud tier goes dark mid-run
    fabric = DistributedServingFabric.from_plan(
        plan,
        threshold,
        batching=BatchingPolicy(max_batch_size=4, max_wait_s=0.004),
        backend="thread",
        compile=True,
        offload=policy,
        slo_s=slo_s,
        edf=True,
    )
    try:
        fabric.attach_chaos(
            ChaosSchedule(
                crashes=[
                    WorkerCrash(tier=fabric.tier_names[-1], start=crash[0], end=crash[1])
                ],
                losses=[
                    LinkLoss(
                        probability=0.3,
                        destination=fabric.tier_names[-1],
                        start=0.0,
                        end=crash[0],
                    )
                ],
                seed=seed,
            )
        )
        started = fabric.clock.now
        gap = 0.01
        for count in range(num_requests):
            index = count % len(views)
            fabric.submit(
                views[index], target=targets[index], at=started + count * gap
            )
        responses = fabric.run_until_idle(drain=True)
        elapsed = fabric.clock.now - started
    finally:
        fabric.close()

    ids = [r.request_id for r in responses]
    if len(responses) != num_requests or len(set(ids)) != num_requests:
        raise RuntimeError(
            f"wall-clock smoke dropped or duplicated requests: {num_requests} "
            f"offered, {len(responses)} answered ({len(set(ids))} unique)"
        )
    stats = fabric.resilience_stats
    if stats.expired_compute != 0:
        raise RuntimeError(
            f"wall-clock smoke let {stats.expired_compute} expired request(s) "
            "burn a compute slot"
        )
    # Honest flags, exact on any machine: deadline_exceeded is equivalent to
    # finishing at/after submit + slo (both sides measured on the same clock).
    epsilon = 1e-9
    for r in responses:
        late = r.latency_s >= slo_s - epsilon
        if r.deadline_exceeded != late and abs(r.latency_s - slo_s) > 1e-6:
            raise RuntimeError(
                f"wall-clock smoke flag mismatch on request {r.request_id}: "
                f"latency {r.latency_s:.4f}s vs budget {slo_s}s but "
                f"deadline_exceeded={r.deadline_exceeded}"
            )
    # Tolerance bounds: the run must outlast the crash window (the restart
    # boundary fires on the wall clock) and the budget machinery must keep
    # the tail within budget + blackout + generous real-scheduling slack.
    if elapsed < crash[1] - 0.05:  # sleep-until can undershoot by a sliver
        raise RuntimeError(
            f"wall-clock smoke finished at {elapsed:.3f}s, before the crash "
            f"window closed at {crash[1]}s — chaos boundaries were not applied "
            "on the wall clock"
        )
    if stats.deadline_expired == 0:
        raise RuntimeError(
            "wall-clock smoke expired nothing: every request submitted into "
            f"the {crash[1] - crash[0]:.2f}s blackout carries a {slo_s}s "
            "budget, so queued work must be retired by wall-clock expiry "
            "timers mid-crash"
        )
    worst = max(r.latency_s for r in responses)
    tail_bound = slo_s + (crash[1] - crash[0]) + 2.0
    if worst > tail_bound:
        raise RuntimeError(
            f"wall-clock smoke worst latency {worst:.3f}s exceeds the "
            f"tolerance bound {tail_bound:.3f}s"
        )
    return {
        "served": len(responses),
        "elapsed_s": elapsed,
        "worst_latency_s": worst,
        "deadline_expired": stats.deadline_expired,
        "retries": stats.retries,
        "failovers": stats.failovers,
        "degraded": sum(1 for r in responses if r.degraded),
        "deadline_exceeded": sum(1 for r in responses if r.deadline_exceeded),
        "cpu_count": available_cpu_count(),
    }
