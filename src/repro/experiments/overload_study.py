"""Experiment S2 — tail latency under open-loop overload with admission control.

The serving-throughput experiment (S1) measures a *closed* system: the
driver submits a fixed backlog and drains it, so the server can never fall
behind.  The paper's end devices are the opposite — an **open-loop** stream
that keeps arriving whether or not the serving tier keeps up.  This study
drives :class:`~repro.serving.server.DDNNServer` with a seeded Poisson
arrival process on a simulated clock and an affine service-time model
(deterministic, machine-independent latencies; real model predictions) and
sweeps offered load against serving capacity:

* ``unbounded`` — today's default FIFO queue: every request is eventually
  served, but past saturation the backlog (and therefore p95/p99 latency)
  grows without bound — shown directly by the run-length sweep rows;
* ``reject`` / ``drop-oldest`` / ``shed-local`` — a bounded queue with each
  admission policy: tail latency stays pinned under the configured bound
  while the reject/drop/shed rate absorbs the excess load.

Rows report p50/p95/p99 latency, admission rates, and the analytic latency
bound implied by the queue capacity (``p95_bound_ms``); the benchmark
harness records the table as ``benchmarks/results/overload_tail_latency.txt``.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

from ..serving import (
    BatchingPolicy,
    DDNNServer,
    LoadGenerator,
    LoadReport,
    PoissonProcess,
    ServiceModel,
    SimulatedClock,
    admission_policy,
)
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn

__all__ = [
    "DEFAULT_LOAD_MULTIPLIERS",
    "DEFAULT_POLICIES",
    "run_overload_study",
    "queue_latency_bound_s",
]

#: Offered load as multiples of the measured serving capacity.
DEFAULT_LOAD_MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)

#: "unbounded" is the no-admission baseline; the rest are bounded-queue policies.
DEFAULT_POLICIES = ("unbounded", "reject", "drop-oldest", "shed-local")


def queue_latency_bound_s(
    capacity: int, policy: BatchingPolicy, service_model: ServiceModel
) -> float:
    """Worst-case sojourn time a bounded queue can impose on an admitted request.

    An admitted request finds at most ``capacity - 1`` requests ahead of it;
    they drain in at most ``ceil(capacity / B)`` full batches, plus one
    batch the worker may already be busy with, plus the batching policy's
    ``max_wait_s`` hold.
    """
    batches = math.ceil(capacity / policy.max_batch_size) + 1
    return batches * service_model.batch_time_s(policy.max_batch_size) + policy.max_wait_s


def _run_one(
    model,
    test_set,
    threshold: float,
    policy_name: str,
    batching: BatchingPolicy,
    service_model: ServiceModel,
    capacity: int,
    offered_rps: float,
    num_requests: int,
    seed: int,
    compiled: bool = False,
) -> LoadReport:
    clock = SimulatedClock()
    server = DDNNServer(
        model,
        threshold,
        policy=batching,
        clock=clock,
        capacity=None if policy_name == "unbounded" else capacity,
        admission=None if policy_name == "unbounded" else admission_policy(policy_name),
        compile=compiled,
    )
    generator = LoadGenerator(
        server,
        PoissonProcess(offered_rps, seed=seed),
        test_set.images,
        targets=test_set.labels,
        service_model=service_model,
    )
    return generator.run(num_requests)


def run_overload_study(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    capacity: int = 48,
    max_batch_size: int = 16,
    max_wait_s: float = 0.005,
    load_multipliers: Sequence[float] = DEFAULT_LOAD_MULTIPLIERS,
    policies: Sequence[str] = DEFAULT_POLICIES,
    num_requests: int = 400,
    growth_lengths: Optional[Tuple[int, ...]] = None,
    service_model: Optional[ServiceModel] = None,
    seed: int = 0,
    compiled: bool = True,
) -> ExperimentResult:
    """Sweep offered load x admission policy; add a run-length sweep for the
    unbounded baseline at 2x capacity (the divergence demonstration).

    ``growth_lengths`` defaults to ``(num_requests // 2, num_requests,
    2 * num_requests)`` so one knob scales the whole study (the CI smoke
    job runs it tiny).

    ``compiled`` selects the forward path the server's real inference runs
    on.  The tabulated latencies come from the deterministic affine
    ``service_model`` either way (machine-independent rows); when compiled,
    the metadata additionally records a *measured* eager vs compiled
    service-time calibration so the end-to-end capacity lift of the
    compiled path is on the record.
    """
    scale = scale if scale is not None else default_scale()
    if num_requests < 2:
        raise ValueError("num_requests must be >= 2")
    if growth_lengths is None:
        growth_lengths = (max(num_requests // 2, 2), num_requests, 2 * num_requests)
    service_model = service_model if service_model is not None else ServiceModel()
    batching = BatchingPolicy(max_batch_size=max_batch_size, max_wait_s=max_wait_s)
    capacity_rps = service_model.capacity_rps(max_batch_size)
    bound_s = queue_latency_bound_s(capacity, batching, service_model)

    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)

    calibration = {}
    if compiled:
        # Real wall-clock calibration of both forward paths on this machine:
        # the end-to-end capacity lift the compiled path buys the server.
        calibration_batch = max(2, min(32, len(test_set)))
        eager_model = ServiceModel.measure(
            DDNNServer(model, threshold), test_set.images[0], batch_size=calibration_batch
        )
        compiled_model = ServiceModel.measure(
            DDNNServer(model, threshold, compile=True),
            test_set.images[0],
            batch_size=calibration_batch,
        )
        calibration = {
            "measured_eager_batch_ms": 1e3 * eager_model.batch_time_s(max_batch_size),
            "measured_compiled_batch_ms": 1e3 * compiled_model.batch_time_s(max_batch_size),
            "measured_capacity_lift": (
                compiled_model.capacity_rps(max_batch_size)
                / eager_model.capacity_rps(max_batch_size)
            ),
        }

    reference = "Overload study (open-loop serving)"
    if calibration:
        # Rows below use the deterministic simulated service model; the real
        # measured win of the compiled forward goes on the record here.
        reference += (
            f" — compiled forward, measured capacity lift "
            f"{calibration['measured_capacity_lift']:.1f}x"
        )
    result = ExperimentResult(
        name="overload_tail_latency",
        paper_reference=reference,
        columns=[
            "policy",
            "offered_x",
            "offered_rps",
            "requests",
            "served",
            "reject_pct",
            "drop_pct",
            "shed_pct",
            "p50_ms",
            "p95_ms",
            "p99_ms",
            "p95_bound_ms",
        ],
        metadata={
            "scale": scale.name,
            "threshold": threshold,
            "capacity": capacity,
            "max_batch_size": max_batch_size,
            "max_wait_s": max_wait_s,
            "service_batch_overhead_s": service_model.batch_overhead_s,
            "service_per_sample_s": service_model.per_sample_s,
            "capacity_rps": capacity_rps,
            "num_requests": num_requests,
            "growth_lengths": tuple(growth_lengths),
            "seed": seed,
            "forward_path": "compiled" if compiled else "eager",
            **calibration,
        },
    )

    def _add_row(policy_name: str, multiplier: float, requests: int, report: LoadReport) -> None:
        result.add_row(
            policy=policy_name,
            offered_x=multiplier,
            offered_rps=multiplier * capacity_rps,
            requests=requests,
            served=report.served,
            reject_pct=100.0 * report.reject_rate,
            drop_pct=100.0 * report.drop_rate,
            shed_pct=100.0 * report.shed_rate,
            p50_ms=1e3 * report.p50_latency_s,
            p95_ms=1e3 * report.p95_latency_s,
            p99_ms=1e3 * report.p99_latency_s,
            p95_bound_ms=float("inf") if policy_name == "unbounded" else 1e3 * bound_s,
        )

    for policy_name in policies:
        for multiplier_index, multiplier in enumerate(load_multipliers):
            report = _run_one(
                model,
                test_set,
                threshold,
                policy_name,
                batching,
                service_model,
                capacity,
                offered_rps=multiplier * capacity_rps,
                num_requests=num_requests,
                seed=seed + multiplier_index,
                compiled=compiled,
            )
            _add_row(policy_name, multiplier, num_requests, report)

    # Divergence demonstration: the unbounded baseline at 2x capacity,
    # re-run with growing run lengths.  Bounded policies' p95 is flat in run
    # length (pinned by the capacity bound above); the unbounded p95 scales
    # with it.  Same arrival seed for every length, so the shorter runs are
    # prefixes of the longer ones.
    for length in growth_lengths:
        report = _run_one(
            model,
            test_set,
            threshold,
            "unbounded",
            batching,
            service_model,
            capacity,
            offered_rps=2.0 * capacity_rps,
            num_requests=length,
            seed=seed + 1000,
            compiled=compiled,
        )
        _add_row("unbounded", 2.0, length, report)
    return result
