"""Experiment S6 — the serving fabric under runtime fault injection.

The paper's fault-tolerance study (Section IV-G, Fig. 10) removes end
devices *offline* and measures the surviving system's accuracy.  This
experiment asks the online question the serving fabric must answer: what
happens to a live request stream when the network or the workers fail
*mid-run*?  An identical Poisson trace is served under four scenarios:

* ``none`` — the fault-free baseline (resilience armed, never triggered);
* ``flaky-uplink`` — the uplink to the top tier flaps (periodic dark
  windows) and drops messages; deadline timeouts retry with backoff and
  mostly bridge the gaps, a few offloads fail over to the local exit;
* ``cloud-partition`` — the top tier is unreachable for the middle half of
  the run; every offload in the window degrades to the origin tier's own
  exit (after the circuit breaker opens, without even burning a deadline),
  and cloud service resumes when the partition heals;
* ``worker-crash`` — every worker of the top tier crashes for a window and
  restarts; links stay up, so offloads queue at the dark tier and drain on
  restart — latency bulges, nothing degrades.

The run *raises* (rather than records) when resilience fails: every
scenario must answer every request exactly once (zero hangs, drops or
duplicates), the ``none`` scenario must show zero degraded answers and
zero retries, link-chaos scenarios must keep p95 within the no-chaos p95
plus the retry policy's worst-case delay bound (every failover is answered
by then), the partition must actually degrade a nonzero fraction, and
every scenario must replay byte-identically — same seed, fresh fabric →
identical per-request accounting — on the simulated backend.

The recorded table carries p95, degraded fraction, retry counts and the
accuracy delta against the fault-free baseline: graceful degradation as a
measured quantity, exactly in the spirit of the paper's Fig. 10 but for
the *runtime* failure axis.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..hierarchy.faults import ChaosSchedule, LinkFlap, LinkLoss, LinkOutage, WorkerCrash
from ..hierarchy.partition import CLOUD_NAME
from ..hierarchy.plan import PartitionPlan
from ..serving import (
    BatchingPolicy,
    CircuitBreaker,
    DistributedServingFabric,
    PoissonProcess,
    RetryPolicy,
    ServiceModel,
)
from .parallel_serving import available_cpu_count
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn

__all__ = ["DEFAULT_SCENARIOS", "run_chaos_serving"]

DEFAULT_SCENARIOS = ("none", "flaky-uplink", "cloud-partition", "worker-crash")


def _uplink_delay_estimate(deployment) -> float:
    """Worst single-offload transfer time in the deployment (per attempt).

    The offload deadline must comfortably exceed this or the fault-free
    baseline would time out its own healthy transfers.
    """
    fabric = deployment.fabric
    destination_of = {}
    if deployment.edges:
        for edge in deployment.edges:
            for device_index in edge.device_indices:
                destination_of[device_index] = edge.name
    worst = 0.0
    for index, device in enumerate(deployment.devices):
        destination = destination_of.get(index, CLOUD_NAME)
        link = fabric.link(device.name, destination)
        worst = max(worst, link.transfer_time(device.feature_bytes()))
    for edge in deployment.edges:
        link = fabric.link(edge.name, CLOUD_NAME)
        worst = max(worst, link.transfer_time(edge.feature_bytes()))
    return worst


def _accounting(responses) -> List[tuple]:
    """The per-request accounting tuple determinism is asserted over."""
    return sorted(
        (
            r.request_id,
            r.prediction,
            r.exit_index,
            r.exit_name,
            r.degraded,
            r.retries,
            r.shed,
            r.completion_time,
        )
        for r in responses
    )


def run_chaos_serving(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    num_requests: int = 160,
    max_batch_size: int = 4,
    seed: int = 0,
    scenarios: Sequence[str] = DEFAULT_SCENARIOS,
) -> ExperimentResult:
    """Serve one trace under injected faults; assert graceful degradation."""
    scale = scale if scale is not None else default_scale()
    if num_requests < 16:
        raise ValueError(f"num_requests must be >= 16, got {num_requests}")
    unknown = [s for s in scenarios if s not in DEFAULT_SCENARIOS]
    if unknown:
        raise ValueError(f"unknown scenarios {unknown} (choose from {DEFAULT_SCENARIOS})")
    if "none" not in scenarios:
        scenarios = ("none",) + tuple(scenarios)  # the baseline anchors every bar

    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)
    views = test_set.images
    targets = [int(label) for label in test_set.labels]

    plan = PartitionPlan(model)
    # Machine-independent service times (same constants as the other serving
    # studies); offered load sits at half of one worker's capacity so the
    # latency bulges measured under chaos are the faults, not overload.
    service = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.004)
    one_worker_rps = service.capacity_rps(max_batch_size)
    rate = 0.5 * one_worker_rps
    horizon = num_requests / rate
    batching = BatchingPolicy(max_batch_size=max_batch_size, max_wait_s=0.004)

    # The deadline scales with the deployment's actual uplink cost, so the
    # fault-free baseline never times out a healthy transfer at any scale.
    transfer = _uplink_delay_estimate(plan.materialize())
    deadline = max(2.0 * transfer, 0.04)
    policy = RetryPolicy(
        deadline_s=deadline,
        max_retries=3,
        backoff_base_s=deadline / 2.0,
        backoff_multiplier=2.0,
        backoff_max_s=4.0 * deadline,
        jitter_s=deadline / 10.0,
        seed=seed,
    )
    breaker = CircuitBreaker(failure_threshold=3, reset_timeout_s=2.5 * deadline)

    # Fault windows: the partition/crash windows track the trace horizon,
    # while the flap cycle tracks the deadline (a flap shorter than one
    # deadline would be invisible to the retry machinery).
    flap_period = max(horizon / 5.0, 4.0 * deadline)
    flap_down = min(1.25 * deadline, 0.45 * flap_period)
    partition = (0.25 * horizon, 0.75 * horizon)
    crash = (0.30 * horizon, 0.55 * horizon)

    def _schedule(scenario: str, uplink_to: str, top_tier: str) -> Optional[ChaosSchedule]:
        if scenario == "none":
            return None
        if scenario == "flaky-uplink":
            return ChaosSchedule(
                flaps=[
                    LinkFlap(
                        period_s=flap_period,
                        down_s=flap_down,
                        destination=uplink_to,
                        start=0.1 * horizon,
                        end=0.9 * horizon,
                    )
                ],
                losses=[
                    LinkLoss(
                        probability=0.08,
                        destination=uplink_to,
                        start=0.1 * horizon,
                        end=0.9 * horizon,
                    )
                ],
                seed=seed,
            )
        if scenario == "cloud-partition":
            return ChaosSchedule(
                outages=[
                    LinkOutage(
                        destination=uplink_to, start=partition[0], end=partition[1]
                    )
                ],
                seed=seed,
            )
        return ChaosSchedule(
            crashes=[WorkerCrash(tier=top_tier, start=crash[0], end=crash[1])],
            seed=seed,
        )

    def _run(scenario: str) -> Dict:
        fabric = DistributedServingFabric.from_plan(
            plan,
            threshold,
            batching=batching,
            service_models=[service] * plan.num_tiers,
            offload=policy,
            breaker=breaker,
        )
        schedule = _schedule(scenario, fabric.tier_names[-1], fabric.tier_names[-1])
        if schedule is not None:
            fabric.attach_chaos(schedule)
        report = fabric.open_loop(
            PoissonProcess(rate_rps=rate, seed=seed + 1),
            views,
            targets=targets,
            num_requests=num_requests,
        )
        ids = [r.request_id for r in report.responses]
        if report.served != num_requests or len(set(ids)) != num_requests:
            raise RuntimeError(
                f"chaos scenario '{scenario}' dropped or duplicated requests: "
                f"{num_requests} offered, {report.served} answered "
                f"({len(set(ids))} unique) — the fabric must answer every "
                "request exactly once, degraded or not"
            )
        stats = fabric.admission_stats
        if stats.rejected or stats.dropped or stats.shed:
            raise RuntimeError(
                f"chaos scenario '{scenario}' shed/rejected at the unbounded "
                f"ingress ({stats}) — accounting is broken"
            )
        return {
            "report": report,
            "accounting": _accounting(report.responses),
            "resilience": fabric.resilience_stats.as_dict(),
            "lost_messages": fabric.deployment.fabric.lost_messages,
            # Uniform observability block (also on report.metadata): breaker
            # end states plus how often each tripped/recovered.
            "breakers": fabric.report_metadata()["breakers"],
        }

    result = ExperimentResult(
        name="chaos_serving",
        paper_reference=(
            "Runtime fault plane (Section IV-G's fault tolerance, online): "
            "chaos injection + offload deadlines/retries + failover to local exits"
        ),
        columns=[
            "scenario",
            "served",
            "degraded_pct",
            "retries",
            "failovers",
            "p50_ms",
            "p95_ms",
            "accuracy",
            "acc_delta",
            "detail",
        ],
        metadata={
            "scale": scale.name,
            "threshold": threshold,
            "num_requests": num_requests,
            "offered_rate_rps": rate,
            "horizon_s": horizon,
            "deadline_s": deadline,
            "max_retries": policy.max_retries,
            "backoff_base_s": policy.backoff_base_s,
            "jitter_s": policy.jitter_s,
            "worst_case_recovery_s": policy.worst_case_delay_s(),
            "breaker": {
                "failure_threshold": breaker.failure_threshold,
                "reset_timeout_s": breaker.reset_timeout_s,
            },
            "uplink_transfer_estimate_s": transfer,
            "flap": {"period_s": flap_period, "down_s": flap_down},
            "partition_window_s": list(partition),
            "crash_window_s": list(crash),
            "seed": seed,
            "cpu_count": available_cpu_count(),
            "backend": "simulated",
            "note": (
                "simulated backend: every scenario is asserted byte-reproducible "
                "under its seed (two fresh runs, identical per-request "
                "degraded/retry accounting), answers every request exactly "
                "once, and keeps p95 within the no-chaos p95 plus the retry "
                "policy's worst-case recovery bound (link scenarios) or the "
                "crash window plus drain (worker-crash)"
            ),
        },
    )

    outcomes: Dict[str, Dict] = {}
    for scenario in scenarios:
        first = _run(scenario)
        second = _run(scenario)
        if first["accounting"] != second["accounting"]:
            diverged = sum(
                1 for a, b in zip(first["accounting"], second["accounting"]) if a != b
            )
            raise RuntimeError(
                f"chaos scenario '{scenario}' is not deterministic under seed "
                f"{seed}: {diverged}/{num_requests} per-request accounting "
                "tuples differ between two fresh simulated runs"
            )
        outcomes[scenario] = first

    baseline = outcomes["none"]["report"]
    if baseline.degraded_fraction or baseline.retry_total:
        raise RuntimeError(
            "the fault-free baseline produced degraded answers or retries "
            f"(degraded={baseline.degraded_fraction:.3f}, "
            f"retries={baseline.retry_total}) — the deadline "
            f"({policy.deadline_s:.4f}s) is too tight for the deployment's "
            f"healthy transfers (~{transfer:.4f}s)"
        )
    if baseline.offload_fraction <= 0.0:
        raise RuntimeError(
            f"threshold {threshold} offloads nothing at the baseline, so the "
            "chaos scenarios would exercise no offload path — lower the "
            "threshold"
        )

    recovery = policy.worst_case_delay_s()
    slack = 0.05  # float/eventing slack on top of the analytic bounds
    bounds = {
        "flaky-uplink": baseline.p95_latency_s + recovery + slack,
        "cloud-partition": baseline.p95_latency_s + recovery + slack,
        # Links stay up: queued offloads wait out the crash window, then the
        # post-restart backlog drains at the capacity surplus.
        "worker-crash": baseline.p95_latency_s
        + (crash[1] - crash[0]) * 2.0
        + recovery
        + slack,
    }
    for scenario, outcome in outcomes.items():
        report = outcome["report"]
        bound = bounds.get(scenario)
        if bound is not None and report.p95_latency_s > bound:
            raise RuntimeError(
                f"chaos scenario '{scenario}' p95 {report.p95_latency_s:.4f}s "
                f"exceeds its graceful-degradation bound {bound:.4f}s"
            )
        accuracy = report.accuracy if report.accuracy is not None else 0.0
        base_acc = baseline.accuracy if baseline.accuracy is not None else 0.0
        resilience = outcome["resilience"]
        result.add_row(
            scenario=scenario,
            served=report.served,
            degraded_pct=100.0 * report.degraded_fraction,
            retries=report.retry_total,
            failovers=resilience["failovers"],
            p50_ms=1e3 * report.p50_latency_s,
            p95_ms=1e3 * report.p95_latency_s,
            accuracy=accuracy,
            acc_delta=accuracy - base_acc,
            detail=(
                f"lost={outcome['lost_messages']} "
                f"timeouts={resilience['timeouts']} "
                f"fast_fails={resilience['breaker_fast_fails']} "
                "breakers="
                + (
                    ",".join(
                        f"{link}:{info['state']}/{info['transitions']}"
                        for link, info in sorted(outcome["breakers"].items())
                    )
                    or "-"
                )
            ),
        )

    if "cloud-partition" in outcomes:
        partition_report = outcomes["cloud-partition"]["report"]
        if partition_report.degraded_fraction <= 0.0:
            raise RuntimeError(
                "the cloud-partition scenario degraded nothing — the outage "
                "window never intersected an offload, so the failover path "
                "went unexercised"
            )
    if "flaky-uplink" in outcomes and outcomes["flaky-uplink"]["report"].retry_total == 0:
        raise RuntimeError(
            "the flaky-uplink scenario never retried — the flap/loss windows "
            "never intersected an offload, so the retry path went unexercised"
        )

    result.metadata["resilience_stats"] = {
        scenario: outcome["resilience"] for scenario, outcome in outcomes.items()
    }
    result.metadata["breakers"] = {
        scenario: outcome["breakers"] for scenario, outcome in outcomes.items()
    }
    return result
