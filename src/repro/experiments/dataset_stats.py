"""Experiment E1 — class distribution per device (paper Figure 6)."""

from __future__ import annotations

from typing import Optional

from ..datasets.mvmc import class_distribution_per_device
from ..datasets.shapes import CLASS_NAMES
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset

__all__ = ["run_dataset_stats"]


def run_dataset_stats(scale: Optional[ExperimentScale] = None) -> ExperimentResult:
    """Count person / bus / car / not-present samples per device (Fig. 6).

    The paper's figure shows the training-split distribution; this experiment
    reports both splits' training portion, which is what the joint training
    actually sees.
    """
    scale = scale if scale is not None else default_scale()
    train_set, _ = get_dataset(scale)
    distribution = class_distribution_per_device(train_set)

    result = ExperimentResult(
        name="fig6_dataset_stats",
        paper_reference="Figure 6",
        columns=["device", *CLASS_NAMES, "not-present", "total"],
        metadata={"scale": scale.name, "train_samples": len(train_set)},
    )
    for device_index in range(train_set.num_devices):
        counts = {name: int(distribution[name][device_index]) for name in CLASS_NAMES}
        not_present = int(distribution["not-present"][device_index])
        result.add_row(
            device=device_index + 1,
            **counts,
            **{"not-present": not_present},
            total=sum(counts.values()) + not_present,
        )
    return result
