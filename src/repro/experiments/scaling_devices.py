"""Experiment E4 — accuracy as end devices are added (paper Figure 8).

Devices are added one at a time in order of their *individual* accuracy
(worst first), and for each device count a DDNN is trained over just those
devices.  The experiment reports the four curves of Figure 8: Individual
(the newly added device's standalone accuracy), Local, Cloud (each exit
classifying 100% of samples) and Overall (staged inference at the default
threshold).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..baselines.individual import individual_accuracies
from .results import ExperimentResult
from .runner import ExperimentScale, capture_oracle, default_scale, get_dataset, get_trained_ddnn

__all__ = ["run_scaling_devices", "compute_individual_accuracies"]


_INDIVIDUAL_CACHE: Dict[tuple, Dict[int, float]] = {}


def compute_individual_accuracies(scale: Optional[ExperimentScale] = None) -> Dict[int, float]:
    """Standalone accuracy of each device's individual model (paper Sec. III-F).

    Cached per scale: Figures 8 and 10 both need these baselines, and the
    devices' individual models do not depend on the DDNN under test.
    """
    scale = scale if scale is not None else default_scale()
    key = (
        scale.name,
        scale.train_samples,
        scale.test_samples,
        scale.data_seed,
        scale.num_devices,
        scale.device_filters,
        scale.individual_epochs,
        scale.model_seed,
    )
    if key not in _INDIVIDUAL_CACHE:
        train_set, test_set = get_dataset(scale)
        _INDIVIDUAL_CACHE[key] = individual_accuracies(
            train_set,
            test_set,
            filters=scale.device_filters,
            config=scale.training_config(epochs=scale.individual_epochs),
        )
    return _INDIVIDUAL_CACHE[key]


def run_scaling_devices(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
) -> ExperimentResult:
    """Reproduce Figure 8: accuracy versus the number of end devices."""
    scale = scale if scale is not None else default_scale()
    train_set, test_set = get_dataset(scale)

    individual = compute_individual_accuracies(scale)
    ordered_devices = sorted(individual, key=individual.get)

    result = ExperimentResult(
        name="fig8_scaling_devices",
        paper_reference="Figure 8",
        columns=[
            "num_devices",
            "added_device",
            "individual_accuracy_pct",
            "local_accuracy_pct",
            "cloud_accuracy_pct",
            "overall_accuracy_pct",
            "local_exit_pct",
        ],
        metadata={
            "scale": scale.name,
            "threshold": threshold,
            "device_order": [d + 1 for d in ordered_devices],
            "individual_accuracy": {d + 1: individual[d] for d in individual},
        },
    )

    for count in range(1, len(ordered_devices) + 1):
        selected = ordered_devices[:count]
        subset_train = train_set.select_devices(selected)
        subset_test = test_set.select_devices(selected)
        config = scale.ddnn_config(num_devices=count)
        # A fresh cache key per device subset: encode the subset in the seed.
        config = type(config)(**{**config.__dict__, "seed": scale.model_seed + 100 * count})
        model, _ = _train_for_subset(scale, config, subset_train)

        oracle = capture_oracle(model, subset_test)
        exit_accuracy = oracle.exit_accuracies()
        staged = oracle.route(threshold)
        result.add_row(
            num_devices=count,
            added_device=selected[-1] + 1,
            individual_accuracy_pct=100.0 * individual[selected[-1]],
            local_accuracy_pct=100.0 * exit_accuracy["local"],
            cloud_accuracy_pct=100.0 * exit_accuracy["cloud"],
            overall_accuracy_pct=100.0 * staged.overall_accuracy(subset_test.labels),
            local_exit_pct=100.0 * staged.local_exit_fraction,
        )
    return result


_SUBSET_CACHE: Dict[tuple, tuple] = {}


def _train_for_subset(scale: ExperimentScale, config, subset_train):
    """Train a DDNN on a device subset, caching by (scale, config) identity."""
    key = (
        scale.name,
        scale.train_samples,
        scale.epochs,
        config.num_devices,
        config.seed,
        config.scheme,
        config.device_filters,
    )
    if key not in _SUBSET_CACHE:
        from .runner import train_fresh_ddnn

        _SUBSET_CACHE[key] = train_fresh_ddnn(scale, config=config, train_set=subset_train)
    return _SUBSET_CACHE[key]
