"""Experiment S3 — compiled inference fast path vs the eager forward.

The serving stack (PR 1-2) is forward-pass-bound: every micro-batch runs
``ExitCascade.run_model`` through the autograd :class:`~repro.nn.tensor.Tensor`
stack.  This experiment measures the :mod:`repro.compile` inference plans —
BatchNorm folding, conv/activation fusion, pre-packed binarized weights and
a reused buffer arena — against the eager path on the same trained DDNN,
across serving-relevant batch sizes and across the compiled *precision
modes* (``float64`` exact, ``float32`` tolerance, ``bitpacked`` XNOR
binary blocks).

For each (batch size, mode) it reports wall time, samples/second, the
speedup over eager and the routing fidelity, and verifies each mode's
equivalence guarantee up front via
:func:`~repro.compile.verify_compiled`.  Two headline numbers are asserted
at run time:

* ``metadata["reference_speedup"]`` — the exact-mode compiled speedup over
  eager at batch size ``REFERENCE_BATCH_SIZE`` (single-sample serving
  latency, where the eager path's per-op Python overhead hurts most);
* ``metadata["fp32_reference_speedup"]`` — fp32 over fp64 at the batch-1
  *kernel reference config* (:data:`FP32_REFERENCE_CHANNELS`), a float
  conv stack wide enough that kernel work (GEMM + memory bandwidth), not
  per-op numpy dispatch, dominates batch-1 wall time.  Must clear
  :data:`FP32_REFERENCE_FLOOR`.

The scale's own model is also compared end-to-end per batch size
(``fp32_speedup_vs_fp64`` metadata) — honestly: at CI scale the model is
tiny and batch-1 wall time is dominated by mode-independent dispatch, so
the end-to-end batch-1 ratio sits well below the kernel-level ratio (the
``fp32_batch1_note`` metadata records this when it happens).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..compile import PRECISIONS, compile_plan, verify_compiled
from ..core.cascade import ExitCascade
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn

__all__ = [
    "DEFAULT_BATCH_SIZES",
    "DEFAULT_PRECISIONS",
    "FP32_REFERENCE_CHANNELS",
    "FP32_REFERENCE_FLOOR",
    "REFERENCE_BATCH_SIZE",
    "run_compiled_forward",
]

#: Batch sizes measured (serving micro-batch regime plus one bulk size).
DEFAULT_BATCH_SIZES = (1, 8, 64)

#: The batch size whose speedup is the headline ``reference_speedup``.
REFERENCE_BATCH_SIZE = 1

#: Precision modes measured by default (every compiled compute mode).
DEFAULT_PRECISIONS = PRECISIONS

#: Conv widths of the batch-1 fp32-vs-fp64 kernel reference stack.
FP32_REFERENCE_CHANNELS = (48, 96)

#: Required fp32-over-fp64 speedup at the batch-1 kernel reference config.
FP32_REFERENCE_FLOOR = 1.3


def _fp32_reference_speedup(timing_rounds: int, iterations: int = 40) -> float:
    """Measured fp32-over-fp64 speedup at the batch-1 kernel reference.

    The reference is a float conv stack (:data:`FP32_REFERENCE_CHANNELS`)
    compiled per mode and driven at batch 1: wide enough that GEMM and
    memory bandwidth dominate wall time, so the measurement reflects the
    reduced-precision kernels rather than the mode-independent per-op
    dispatch floor a tiny CI-scale DDNN sits on at batch 1.  Deterministic
    weights/input (fixed seed) keep the workload identical across modes.
    """
    from ..nn.blocks import ConvPBlock

    rng = np.random.default_rng(7)
    stack = []
    previous = 3
    for channels in FP32_REFERENCE_CHANNELS:
        stack.append(ConvPBlock(previous, channels, binary=False, rng=rng))
        previous = channels
    x = rng.standard_normal((1, 3, 32, 32))

    walls = {}
    for mode in ("float64", "float32"):
        plan = compile_plan(stack, name=f"fp32-reference-{mode}", precision=mode)
        plan(x)  # warm: binds the arena program for this shape
        best = float("inf")
        for _ in range(timing_rounds):
            started = time.perf_counter()
            for _ in range(iterations):
                plan(x)
            best = min(best, (time.perf_counter() - started) / iterations)
        walls[mode] = best
    return walls["float64"] / walls["float32"]


def run_compiled_forward(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    repeats: int = 2,
    timing_rounds: int = 3,
    precisions: Sequence[str] = DEFAULT_PRECISIONS,
) -> ExperimentResult:
    """Benchmark eager vs compiled staged inference on the trained DDNN.

    ``repeats`` passes over the test set form the measured stream (long
    enough to be stable at CI scale); each (path, batch size) cell is timed
    ``timing_rounds`` times and the fastest round is kept, suppressing
    scheduler noise in the ratios.  ``precisions`` selects the compiled
    compute modes measured alongside the eager baseline; each mode's
    guarantee is verified up front.
    """
    scale = scale if scale is not None else default_scale()
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if timing_rounds < 1:
        raise ValueError("timing_rounds must be at least 1")
    precisions = list(precisions)
    for mode in precisions:
        if mode not in PRECISIONS:
            raise ValueError(
                f"unknown precision {mode!r}; expected one of {PRECISIONS}"
            )
    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)
    views = np.concatenate([test_set.images] * repeats, axis=0)

    cascades = {
        mode: ExitCascade.for_model(model, threshold, precision=mode)
        for mode in precisions
    }
    base_cascade = next(iter(cascades.values()))

    # Each mode's numerical guarantee, checked up front on a real batch
    # (against the same cached plan the timed runs use).
    probe = test_set.images[: min(64, len(test_set))]
    max_logit_diff = {
        mode: verify_compiled(model, cascade.compiled_for(model), probe)
        for mode, cascade in cascades.items()
    }

    result = ExperimentResult(
        name="compiled_forward",
        paper_reference="Compiled inference fast path (extension)",
        columns=[
            "path",
            "precision",
            "batch_size",
            "samples",
            "wall_s",
            "throughput_sps",
            "speedup_vs_eager",
            "routing_identical",
            "routing_agreement",
        ],
        metadata={
            "scale": scale.name,
            "threshold": threshold,
            "repeats": repeats,
            "timing_rounds": timing_rounds,
            "test_samples": len(test_set),
            "reference_batch_size": REFERENCE_BATCH_SIZE,
            "precisions": ",".join(precisions),
            "max_abs_logit_diff": max_logit_diff.get("float64", max(max_logit_diff.values())),
            **{
                f"max_abs_logit_diff_{mode}": diff
                for mode, diff in max_logit_diff.items()
            },
        },
    )

    reference_speedup = None
    fp32_vs_fp64 = {}
    for batch_size in batch_sizes:
        timings = {}
        routings = {}
        paths = ["eager"] + [f"compiled:{mode}" for mode in precisions]
        for path in paths:
            mode = path.split(":", 1)[1] if ":" in path else None
            cascade = base_cascade if mode is None else cascades[mode]
            wall = float("inf")
            routed = None
            for _ in range(timing_rounds):
                started = time.perf_counter()
                routed = cascade.run_model(
                    model, views, batch_size=batch_size, compile=(mode is not None)
                )
                wall = min(wall, time.perf_counter() - started)
            timings[path] = wall
            routings[path] = routed

        eager = routings["eager"]
        for path in paths:
            mode = path.split(":", 1)[1] if ":" in path else None
            routed = routings[path]
            identical = np.array_equal(
                eager.predictions, routed.predictions
            ) and np.array_equal(eager.exit_indices, routed.exit_indices)
            agreement = float(
                np.mean(
                    (eager.predictions == routed.predictions)
                    & (eager.exit_indices == routed.exit_indices)
                )
                if len(views)
                else 1.0
            )
            if mode in (None, "float64", "bitpacked") and not identical:
                # Exact modes (and the eager self-row) must match eager
                # routing byte for byte; float32 is tolerance-mode and its
                # (grid-pooled) agreement floor is enforced by the up-front
                # verify_compiled call instead.
                raise AssertionError(
                    f"{path} routing diverged from eager at batch size {batch_size}"
                )

            wall = timings[path]
            speedup = timings["eager"] / wall if wall > 0 else float("inf")
            result.add_row(
                path="eager" if mode is None else "compiled",
                precision="float64" if mode is None else mode,
                batch_size=batch_size,
                samples=len(views),
                wall_s=wall,
                throughput_sps=len(views) / wall if wall > 0 else float("inf"),
                speedup_vs_eager=speedup,
                routing_identical="yes" if identical else "no",
                routing_agreement=agreement,
            )
            if mode == "float64" and batch_size == REFERENCE_BATCH_SIZE:
                reference_speedup = speedup

        if "compiled:float64" in timings and "compiled:float32" in timings:
            fp32_vs_fp64[batch_size] = (
                timings["compiled:float64"] / timings["compiled:float32"]
                if timings["compiled:float32"] > 0
                else float("inf")
            )

    if reference_speedup is None and result.rows:
        # Reference cell not measured: fall back to the best exact compiled row.
        reference_speedup = max(
            row["speedup_vs_eager"]
            for row in result.rows
            if row["path"] == "compiled" and row["precision"] == "float64"
        )
    result.metadata["reference_speedup"] = reference_speedup

    for batch_size, ratio in fp32_vs_fp64.items():
        result.metadata[f"fp32_speedup_vs_fp64_b{batch_size}"] = ratio

    if "float32" in precisions:
        fp32_reference = _fp32_reference_speedup(timing_rounds)
        result.metadata["fp32_reference_speedup"] = fp32_reference
        result.metadata["fp32_reference_channels"] = ",".join(
            str(c) for c in FP32_REFERENCE_CHANNELS
        )
        if fp32_reference < FP32_REFERENCE_FLOOR:
            raise AssertionError(
                f"fp32 kernel reference speedup {fp32_reference:.2f}x is below "
                f"the {FP32_REFERENCE_FLOOR}x floor at the batch-1 reference "
                f"config (conv widths {FP32_REFERENCE_CHANNELS})"
            )
        end_to_end = fp32_vs_fp64.get(REFERENCE_BATCH_SIZE)
        if end_to_end is not None and end_to_end < FP32_REFERENCE_FLOOR:
            # Honest accounting: the scale's model at batch 1 can be
            # dispatch-bound (tiny arrays, mode-independent per-op cost),
            # in which case the end-to-end ratio sits below the kernel
            # ratio.  Record it rather than hiding it.
            result.metadata["fp32_batch1_note"] = (
                f"end-to-end fp32/fp64 at batch 1 is {end_to_end:.2f}x on the "
                f"'{scale.name}' scale model: batch-1 wall time there is "
                "dominated by mode-independent numpy dispatch and pooling, "
                "not by the GEMM/bandwidth work the fp32 kernels accelerate"
            )
    return result
