"""Experiment S3 — compiled inference fast path vs the eager forward.

The serving stack (PR 1-2) is forward-pass-bound: every micro-batch runs
``ExitCascade.run_model`` through the autograd :class:`~repro.nn.tensor.Tensor`
stack.  This experiment measures the :mod:`repro.compile` inference plans —
BatchNorm folding, conv/activation fusion, pre-packed binarized weights and
a reused buffer arena — against the eager path on the same trained DDNN,
across serving-relevant batch sizes.

For each batch size it reports wall time, samples/second and the compiled
speedup, and verifies the equivalence guarantee: exit routing must be
byte-identical and per-exit logits allclose at float32-level tolerance.
The *reference configuration* for the headline claim is batch size
``REFERENCE_BATCH_SIZE`` (single-sample serving latency, where the eager
path's per-op Python overhead hurts most); its speedup is exported as
``metadata["reference_speedup"]``.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..compile import verify_compiled
from ..core.cascade import ExitCascade
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn

__all__ = ["DEFAULT_BATCH_SIZES", "REFERENCE_BATCH_SIZE", "run_compiled_forward"]

#: Batch sizes measured (serving micro-batch regime plus one bulk size).
DEFAULT_BATCH_SIZES = (1, 8, 64)

#: The batch size whose speedup is the headline ``reference_speedup``.
REFERENCE_BATCH_SIZE = 1


def run_compiled_forward(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    repeats: int = 2,
    timing_rounds: int = 3,
) -> ExperimentResult:
    """Benchmark eager vs compiled staged inference on the trained DDNN.

    ``repeats`` passes over the test set form the measured stream (long
    enough to be stable at CI scale); each (path, batch size) cell is timed
    ``timing_rounds`` times and the fastest round is kept, suppressing
    scheduler noise in the ratios.
    """
    scale = scale if scale is not None else default_scale()
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if timing_rounds < 1:
        raise ValueError("timing_rounds must be at least 1")
    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)
    views = np.concatenate([test_set.images] * repeats, axis=0)

    cascade = ExitCascade.for_model(model, threshold)

    # The numerical-equivalence guarantee, checked up front on a real batch
    # (against the same cached plan the timed runs use).
    probe = test_set.images[: min(64, len(test_set))]
    max_logit_diff = verify_compiled(model, cascade.compiled_for(model), probe)

    result = ExperimentResult(
        name="compiled_forward",
        paper_reference="Compiled inference fast path (extension)",
        columns=[
            "path",
            "batch_size",
            "samples",
            "wall_s",
            "throughput_sps",
            "speedup_vs_eager",
            "routing_identical",
        ],
        metadata={
            "scale": scale.name,
            "threshold": threshold,
            "repeats": repeats,
            "timing_rounds": timing_rounds,
            "test_samples": len(test_set),
            "reference_batch_size": REFERENCE_BATCH_SIZE,
            "max_abs_logit_diff": max_logit_diff,
        },
    )

    reference_speedup = None
    for batch_size in batch_sizes:
        timings = {}
        routings = {}
        for path in ("eager", "compiled"):
            wall = float("inf")
            routed = None
            for _ in range(timing_rounds):
                started = time.perf_counter()
                routed = cascade.run_model(
                    model, views, batch_size=batch_size, compile=(path == "compiled")
                )
                wall = min(wall, time.perf_counter() - started)
            timings[path] = wall
            routings[path] = routed

        identical = np.array_equal(
            routings["eager"].predictions, routings["compiled"].predictions
        ) and np.array_equal(
            routings["eager"].exit_indices, routings["compiled"].exit_indices
        )
        if not identical:
            raise AssertionError(
                f"compiled routing diverged from eager at batch size {batch_size}"
            )

        for path in ("eager", "compiled"):
            wall = timings[path]
            speedup = timings["eager"] / wall if wall > 0 else float("inf")
            result.add_row(
                path=path,
                batch_size=batch_size,
                samples=len(views),
                wall_s=wall,
                throughput_sps=len(views) / wall if wall > 0 else float("inf"),
                speedup_vs_eager=speedup,
                routing_identical="yes" if identical else "no",
            )
            if path == "compiled" and batch_size == REFERENCE_BATCH_SIZE:
                reference_speedup = speedup

    if reference_speedup is None and result.rows:
        # Reference batch size not measured: fall back to the best compiled row.
        reference_speedup = max(
            row["speedup_vs_eager"] for row in result.rows if row["path"] == "compiled"
        )
    result.metadata["reference_speedup"] = reference_speedup
    return result
