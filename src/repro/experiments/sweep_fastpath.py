"""Benchmark — forward-once threshold sweeps vs the per-threshold eager loop.

Before the :class:`~repro.core.oracle.ExitOracle`, every threshold grid cost
one full eager forward of the dataset *per grid point*: the Table II sweep
ran 8 forwards, the Figure 9 exit-rate calibration 21 — per configuration.
The oracle runs one compiled forward and answers the whole grid with
vectorized numpy routing.  This benchmark times both paths on the same
grids, checks the per-point results agree exactly, and records the speedup
(the CI bar is >=10x for the 8-point Table II grid).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from ..core.inference import StagedInferenceEngine
from ..core.oracle import ExitOracle
from ..core.threshold import DEFAULT_GRID
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn
from .threshold_sweep import PAPER_TABLE2_THRESHOLDS

__all__ = ["run_sweep_fastpath", "DEFAULT_SWEEP_GRIDS", "REFERENCE_GRID"]

#: (label, thresholds) grids measured by the benchmark.
DEFAULT_SWEEP_GRIDS: Tuple[Tuple[str, Tuple[float, ...]], ...] = (
    ("table2_8pt", tuple(PAPER_TABLE2_THRESHOLDS)),
    ("calibration_21pt", tuple(DEFAULT_GRID)),
)

#: Grid whose speedup is the recorded reference (the CI >=10x bar).
REFERENCE_GRID = "table2_8pt"


def _eager_sweep(model, test_set, thresholds: Sequence[float]):
    """The seed per-threshold pattern: one fresh eager engine per point."""
    rows = []
    for threshold in thresholds:
        engine = StagedInferenceEngine(model, float(threshold))
        inference = engine.run(test_set)
        rows.append(
            (
                inference.local_exit_fraction,
                inference.overall_accuracy(test_set.labels),
                engine.communication_bytes(inference),
            )
        )
    return rows


def _oracle_sweep(model, test_set, thresholds: Sequence[float], compile: bool = True):
    """Forward-once path: one capture + one vectorized sweep."""
    oracle = ExitOracle.capture(model, test_set, compile=compile)
    table = oracle.sweep(thresholds)
    return [
        (point.local_exit_fraction, point.overall_accuracy, point.communication_bytes)
        for point in table.points()
    ]


def _best_time(func, rounds: int) -> Tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        value = func()
        best = min(best, time.perf_counter() - start)
    return best, value


def run_sweep_fastpath(
    scale: Optional[ExperimentScale] = None,
    grids: Optional[Sequence[Tuple[str, Sequence[float]]]] = None,
    timing_rounds: int = 3,
) -> ExperimentResult:
    """Time oracle sweeps against the per-threshold eager re-run."""
    scale = scale if scale is not None else default_scale()
    grids = tuple(grids) if grids is not None else DEFAULT_SWEEP_GRIDS
    _, test_set = get_dataset(scale)
    model, _ = get_trained_ddnn(scale)

    # Warm the process-wide plan cache so timed oracle rounds measure the
    # steady state (capture + vectorized sweep), not one-off compilation.
    ExitOracle.capture(model, test_set, compile=True)

    result = ExperimentResult(
        name="threshold_sweep_fastpath",
        paper_reference="Table II / Figure 9 eval loops",
        columns=[
            "grid",
            "points",
            "eager_forwards",
            "eager_wall_s",
            "oracle_wall_s",
            "speedup",
        ],
        metadata={"scale": scale.name, "timing_rounds": timing_rounds},
    )

    for label, thresholds in grids:
        thresholds = tuple(float(t) for t in thresholds)
        eager_s, eager_rows = _best_time(lambda: _eager_sweep(model, test_set, thresholds), timing_rounds)
        oracle_s, oracle_rows = _best_time(lambda: _oracle_sweep(model, test_set, thresholds), timing_rounds)

        # Correctness gate, on the *same* numeric path as the eager loop: an
        # eager-captured oracle must reproduce the per-threshold engine rows
        # bit for bit (this is the vectorized-routing guarantee and can never
        # be timing- or rounding-flaky).  The compiled capture that was timed
        # above is compared informationally — its logits carry float-rounding
        # differences from BN folding, so a borderline sample could in
        # principle flip a grid point without the fast path being wrong.
        eager_oracle_rows = _oracle_sweep(model, test_set, thresholds, compile=False)
        for eager_row, oracle_row in zip(eager_rows, eager_oracle_rows):
            if not np.allclose(eager_row, oracle_row, rtol=0.0, atol=0.0):
                raise AssertionError(
                    f"oracle sweep diverged from eager loop on grid '{label}': "
                    f"{eager_row} vs {oracle_row}"
                )
        compiled_matches = all(
            np.allclose(eager_row, oracle_row, rtol=0.0, atol=0.0)
            for eager_row, oracle_row in zip(eager_rows, oracle_rows)
        )
        result.metadata.setdefault("compiled_matches_eager", {})[label] = compiled_matches

        speedup = eager_s / oracle_s if oracle_s > 0 else float("inf")
        result.add_row(
            grid=label,
            points=len(thresholds),
            eager_forwards=len(thresholds),
            eager_wall_s=eager_s,
            oracle_wall_s=oracle_s,
            speedup=speedup,
        )
        if label == REFERENCE_GRID:
            result.metadata["reference_speedup"] = speedup

    return result
