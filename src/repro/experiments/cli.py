"""Command-line entry point for regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run table2_fig7_threshold_sweep --scale ci
    python -m repro.experiments run all --scale paper --output-dir results/
    python -m repro.experiments serve-bench --max-batch-size 32 --repeats 4
    python -m repro.experiments load-bench --policy reject --offered-x 2.0
    python -m repro.experiments infer-bench --batch-size 1 --batch-size 64
    python -m repro.experiments dist-bench --workers 1 --workers 4 --offered-x 2.0
    python -m repro.experiments dist-bench --backend thread --workers 2
    python -m repro.experiments parallel-bench --workers 1 --workers 4
    python -m repro.experiments elastic-bench --peak-workers 3
    python -m repro.experiments chaos-bench --num-requests 160
    python -m repro.experiments slo-bench --num-requests 160
    python -m repro.experiments slo-bench --wallclock-smoke
    python -m repro.experiments sweep-bench --timing-rounds 3

Each experiment prints its table (the same rows the paper reports) and can
optionally write it to a text file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from . import EXPERIMENT_REGISTRY
from .runner import ci_scale, paper_scale

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the DDNN paper's tables and figures.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run_parser = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run_parser.add_argument(
        "experiment",
        help="experiment id from 'list', or 'all'",
    )
    run_parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="experiment scale: 'ci' (fast, default) or 'paper' (680/171 samples, 100 epochs)",
    )
    run_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write each experiment's table as <name>.txt",
    )

    serve_parser = subparsers.add_parser(
        "serve-bench",
        help="benchmark online serving: dynamic micro-batching vs sequential",
    )
    serve_parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="experiment scale for the model and request stream",
    )
    serve_parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="local-exit entropy threshold used by the cascade",
    )
    serve_parser.add_argument(
        "--max-batch-size",
        type=int,
        action="append",
        dest="batch_sizes",
        default=None,
        help="micro-batch ceiling to measure (repeatable; default: 8, 32 and 64)",
    )
    serve_parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="passes over the test set forming the request stream",
    )
    serve_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write the serving table as serving_throughput.txt",
    )

    load_parser = subparsers.add_parser(
        "load-bench",
        help="open-loop overload study: tail latency vs offered load per admission policy",
    )
    load_parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="experiment scale for the model and request stream",
    )
    load_parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="local-exit entropy threshold used by the cascade",
    )
    load_parser.add_argument(
        "--capacity",
        type=int,
        default=48,
        help="request-queue bound used by the admission policies",
    )
    load_parser.add_argument(
        "--max-batch-size",
        type=int,
        default=16,
        help="micro-batch ceiling of the serving policy",
    )
    load_parser.add_argument(
        "--num-requests",
        type=int,
        default=400,
        help="arrivals per run (the divergence sweep uses n/2, n and 2n)",
    )
    load_parser.add_argument(
        "--offered-x",
        type=float,
        action="append",
        dest="load_multipliers",
        default=None,
        help="offered load as a multiple of capacity (repeatable; default: 0.5 1.0 2.0 4.0)",
    )
    load_parser.add_argument(
        "--policy",
        action="append",
        dest="policies",
        choices=("unbounded", "reject", "drop-oldest", "shed-local"),
        default=None,
        help="admission policy to study (repeatable; default: all four)",
    )
    load_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for the arrival processes",
    )
    load_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write the table as overload_tail_latency.txt",
    )
    load_parser.add_argument(
        "--eager",
        action="store_true",
        help="run the server's forwards on the eager path (default: compiled)",
    )

    dist_parser = subparsers.add_parser(
        "dist-bench",
        help="distributed serving fabric: p95 latency / offload fraction vs workers, bandwidth, threshold",
    )
    dist_parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="experiment scale for the model and request stream",
    )
    dist_parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="base local-exit entropy threshold used by the cascade",
    )
    dist_parser.add_argument(
        "--workers",
        type=int,
        action="append",
        dest="worker_counts",
        default=None,
        help="workers per tier to measure (repeatable; default: 1, 2 and 4)",
    )
    dist_parser.add_argument(
        "--bandwidth-x",
        type=float,
        action="append",
        dest="bandwidth_scales",
        default=None,
        help="link-bandwidth scale factors to measure (repeatable; default: 0.5 and 0.25)",
    )
    dist_parser.add_argument(
        "--sweep-threshold",
        type=float,
        action="append",
        dest="threshold_sweep",
        default=None,
        help="extra exit thresholds to measure (repeatable; default: 0.5 and 0.95)",
    )
    dist_parser.add_argument(
        "--offered-x",
        type=float,
        default=1.5,
        help="offered load as a multiple of one device-tier worker's capacity",
    )
    dist_parser.add_argument(
        "--num-requests",
        type=int,
        default=240,
        help="open-loop arrivals per row",
    )
    dist_parser.add_argument(
        "--max-batch-size",
        type=int,
        default=8,
        help="micro-batch ceiling of every tier's batching policy",
    )
    dist_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="base seed for the arrival processes",
    )
    dist_parser.add_argument(
        "--compiled",
        action="store_true",
        help="run tier forwards on per-worker compiled plans (default: eager)",
    )
    dist_parser.add_argument(
        "--backend",
        choices=("simulated", "thread"),
        default="simulated",
        help="worker-pool backend: deterministic simulated slots (default) or "
        "real thread-pool workers on wall-clock time (implies --compiled)",
    )
    dist_parser.add_argument(
        "--calibrate",
        action="store_true",
        help="use plan-timing-calibrated service models in the rows (machine-dependent)",
    )
    dist_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write the table as distributed_serving.txt",
    )

    parallel_parser = subparsers.add_parser(
        "parallel-bench",
        help="wall-clock parallel serving: thread-pool worker scaling + backend equivalence",
    )
    parallel_parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="experiment scale for the model and request stream",
    )
    parallel_parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="local-exit entropy threshold used by the cascade",
    )
    parallel_parser.add_argument(
        "--workers",
        type=int,
        action="append",
        dest="worker_counts",
        default=None,
        help="thread worker counts to measure (repeatable; default: 1, 2 and 4)",
    )
    parallel_parser.add_argument(
        "--num-requests",
        type=int,
        default=96,
        help="batch-1 requests per scaling row",
    )
    parallel_parser.add_argument(
        "--rounds",
        type=int,
        default=2,
        help="timed rounds per scaling row (fastest kept)",
    )
    parallel_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write the table as parallel_serving.txt",
    )

    elastic_parser = subparsers.add_parser(
        "elastic-bench",
        help="elastic tier plane: static-vs-elastic diurnal tails + mid-run repartition identity",
    )
    elastic_parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="experiment scale for the model and request stream",
    )
    elastic_parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="local-exit entropy threshold used by the cascade",
    )
    elastic_parser.add_argument(
        "--peak-workers",
        type=int,
        default=3,
        help="peak worker budget per tier (static-peak count, elastic max)",
    )
    elastic_parser.add_argument(
        "--num-requests",
        type=int,
        default=240,
        help="diurnal arrivals per configuration",
    )
    elastic_parser.add_argument(
        "--max-batch-size",
        type=int,
        default=4,
        help="micro-batch ceiling of every tier's batching policy",
    )
    elastic_parser.add_argument(
        "--capacity",
        type=int,
        default=32,
        help="ingress queue bound used by the shed-local admission policy",
    )
    elastic_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the diurnal arrival process",
    )
    elastic_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write the table as elastic_serving.txt",
    )

    chaos_parser = subparsers.add_parser(
        "chaos-bench",
        help="runtime fault plane: one trace under link flaps / partition / worker crashes",
    )
    chaos_parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="experiment scale for the model and request stream",
    )
    chaos_parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="local-exit entropy threshold used by the cascade",
    )
    chaos_parser.add_argument(
        "--num-requests",
        type=int,
        default=160,
        help="Poisson arrivals served under every chaos scenario",
    )
    chaos_parser.add_argument(
        "--max-batch-size",
        type=int,
        default=4,
        help="micro-batch ceiling of every tier's batching policy",
    )
    chaos_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the arrival process, chaos draws and retry jitter",
    )
    chaos_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write the table as chaos_serving.txt",
    )

    slo_parser = subparsers.add_parser(
        "slo-bench",
        help="end-to-end SLO plane: deadlines + hedged offloads vs the chaos scenarios",
    )
    slo_parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="experiment scale for the model and request stream",
    )
    slo_parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="local-exit entropy threshold used by the cascade",
    )
    slo_parser.add_argument(
        "--num-requests",
        type=int,
        default=160,
        help="Poisson arrivals served under every (mode, scenario) cell",
    )
    slo_parser.add_argument(
        "--max-batch-size",
        type=int,
        default=4,
        help="micro-batch ceiling of every tier's batching policy",
    )
    slo_parser.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed for the arrival process, chaos draws and retry jitter",
    )
    slo_parser.add_argument(
        "--wallclock-smoke",
        action="store_true",
        help="instead of the simulated table, run the thread-backend chaos + "
        "deadline smoke against a real wall clock",
    )
    slo_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write the table as slo_serving.txt",
    )

    infer_parser = subparsers.add_parser(
        "infer-bench",
        help="benchmark the compiled inference fast path against the eager forward",
    )
    infer_parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="experiment scale for the model and measured stream",
    )
    infer_parser.add_argument(
        "--threshold",
        type=float,
        default=0.8,
        help="local-exit entropy threshold used by the cascade",
    )
    infer_parser.add_argument(
        "--batch-size",
        type=int,
        action="append",
        dest="batch_sizes",
        default=None,
        help="batch size to measure (repeatable; default: 1, 8 and 64)",
    )
    infer_parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="passes over the test set forming the measured stream",
    )
    infer_parser.add_argument(
        "--timing-rounds",
        type=int,
        default=3,
        help="timed rounds per cell (fastest kept)",
    )
    infer_parser.add_argument(
        "--precision",
        choices=("float64", "float32", "bitpacked"),
        action="append",
        dest="precisions",
        default=None,
        help="compiled compute mode to measure (repeatable; default: all three)",
    )
    infer_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write the table as compiled_forward.txt",
    )

    sweep_parser = subparsers.add_parser(
        "sweep-bench",
        help="benchmark forward-once oracle threshold sweeps vs the per-threshold eager loop",
    )
    sweep_parser.add_argument(
        "--scale",
        choices=("ci", "paper"),
        default="ci",
        help="experiment scale for the model and swept dataset",
    )
    sweep_parser.add_argument(
        "--threshold",
        type=float,
        action="append",
        dest="thresholds",
        default=None,
        help="custom grid threshold (repeatable; default: Table II grid + 21-point calibration grid)",
    )
    sweep_parser.add_argument(
        "--timing-rounds",
        type=int,
        default=3,
        help="timed rounds per path (fastest kept)",
    )
    sweep_parser.add_argument(
        "--output-dir",
        type=Path,
        default=None,
        help="directory to write the table as threshold_sweep_fastpath.txt",
    )
    return parser


def _run_one(name: str, scale, output_dir: Optional[Path]) -> None:
    runner = EXPERIMENT_REGISTRY[name]
    result = runner(scale)
    text = result.to_text()
    print(text)
    print()
    if output_dir is not None:
        output_dir.mkdir(parents=True, exist_ok=True)
        (output_dir / f"{result.name}.txt").write_text(text + "\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for name in EXPERIMENT_REGISTRY:
            print(name)
        return 0

    if args.command == "serve-bench":
        from .serving_benchmark import DEFAULT_BATCH_SIZES, run_serving_throughput

        scale = paper_scale() if args.scale == "paper" else ci_scale()
        batch_sizes = args.batch_sizes if args.batch_sizes else DEFAULT_BATCH_SIZES
        result = run_serving_throughput(
            scale,
            threshold=args.threshold,
            batch_sizes=batch_sizes,
            repeats=args.repeats,
        )
        text = result.to_text()
        print(text)
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{result.name}.txt").write_text(text + "\n")
        return 0

    if args.command == "load-bench":
        from .overload_study import (
            DEFAULT_LOAD_MULTIPLIERS,
            DEFAULT_POLICIES,
            run_overload_study,
        )

        scale = paper_scale() if args.scale == "paper" else ci_scale()
        result = run_overload_study(
            scale,
            threshold=args.threshold,
            capacity=args.capacity,
            max_batch_size=args.max_batch_size,
            load_multipliers=args.load_multipliers or DEFAULT_LOAD_MULTIPLIERS,
            policies=args.policies or DEFAULT_POLICIES,
            num_requests=args.num_requests,
            seed=args.seed,
            compiled=not args.eager,
        )
        text = result.to_text()
        print(text)
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{result.name}.txt").write_text(text + "\n")
        return 0

    if args.command == "dist-bench":
        from .distributed_serving import (
            DEFAULT_BANDWIDTH_SCALES,
            DEFAULT_THRESHOLD_SWEEP,
            DEFAULT_WORKER_COUNTS,
            run_distributed_serving,
        )

        scale = paper_scale() if args.scale == "paper" else ci_scale()
        result = run_distributed_serving(
            scale,
            threshold=args.threshold,
            worker_counts=args.worker_counts or DEFAULT_WORKER_COUNTS,
            bandwidth_scales=args.bandwidth_scales or DEFAULT_BANDWIDTH_SCALES,
            threshold_sweep=args.threshold_sweep or DEFAULT_THRESHOLD_SWEEP,
            offered_x=args.offered_x,
            num_requests=args.num_requests,
            max_batch_size=args.max_batch_size,
            seed=args.seed,
            compiled=args.compiled,
            calibrate=args.calibrate,
            backend=args.backend,
        )
        text = result.to_text()
        print(text)
        print(
            "plan-timing calibration: "
            f"overhead {result.metadata['measured_plan_batch_overhead_ms']:.3f} ms, "
            f"per-sample {result.metadata['measured_plan_per_sample_ms']:.3f} ms "
            f"({result.metadata['service_calibration']} rows)"
        )
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{result.name}.txt").write_text(text + "\n")
        return 0

    if args.command == "parallel-bench":
        from .parallel_serving import DEFAULT_PARALLEL_WORKER_COUNTS, run_parallel_serving

        scale = paper_scale() if args.scale == "paper" else ci_scale()
        result = run_parallel_serving(
            scale,
            threshold=args.threshold,
            worker_counts=args.worker_counts or DEFAULT_PARALLEL_WORKER_COUNTS,
            num_requests=args.num_requests,
            rounds=args.rounds,
        )
        text = result.to_text()
        print(text)
        print(
            f"cpu_count={result.metadata['cpu_count']}; wall-clock rows are "
            "machine-dependent (see metadata note)"
        )
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{result.name}.txt").write_text(text + "\n")
        return 0

    if args.command == "elastic-bench":
        from .elastic_serving import run_elastic_serving

        scale = paper_scale() if args.scale == "paper" else ci_scale()
        result = run_elastic_serving(
            scale,
            threshold=args.threshold,
            peak_workers=args.peak_workers,
            num_requests=args.num_requests,
            max_batch_size=args.max_batch_size,
            capacity=args.capacity,
            seed=args.seed,
        )
        text = result.to_text()
        print(text)
        print(
            f"elastic trajectory ({len(result.metadata['elastic_trajectory'])} "
            f"scale events): {result.metadata['elastic_trajectory']}"
        )
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{result.name}.txt").write_text(text + "\n")
        return 0

    if args.command == "chaos-bench":
        from .chaos_serving import run_chaos_serving

        scale = paper_scale() if args.scale == "paper" else ci_scale()
        result = run_chaos_serving(
            scale,
            threshold=args.threshold,
            num_requests=args.num_requests,
            max_batch_size=args.max_batch_size,
            seed=args.seed,
        )
        text = result.to_text()
        print(text)
        stats = result.metadata["resilience_stats"]
        print(
            "resilience accounting: "
            + "; ".join(
                f"{scenario}: {values}" for scenario, values in stats.items()
            )
        )
        print(
            "breakers: "
            + "; ".join(
                f"{scenario}: {values or '-'}"
                for scenario, values in result.metadata["breakers"].items()
            )
        )
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{result.name}.txt").write_text(text + "\n")
        return 0

    if args.command == "slo-bench":
        from .slo_serving import run_slo_serving, run_wallclock_slo_smoke

        scale = paper_scale() if args.scale == "paper" else ci_scale()
        if args.wallclock_smoke:
            facts = run_wallclock_slo_smoke(
                scale, threshold=args.threshold, seed=args.seed
            )
            print(
                "wall-clock slo smoke (thread backend): "
                + ", ".join(f"{key}={value}" for key, value in sorted(facts.items()))
            )
            return 0
        result = run_slo_serving(
            scale,
            threshold=args.threshold,
            num_requests=args.num_requests,
            max_batch_size=args.max_batch_size,
            seed=args.seed,
        )
        text = result.to_text()
        print(text)
        stats = result.metadata["resilience_stats"]
        print(
            "resilience accounting: "
            + "; ".join(f"{cell}: {values}" for cell, values in stats.items())
        )
        print(
            "breakers: "
            + "; ".join(
                f"{cell}: {values or '-'}"
                for cell, values in result.metadata["breakers"].items()
            )
        )
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{result.name}.txt").write_text(text + "\n")
        return 0

    if args.command == "infer-bench":
        from .compiled_forward import DEFAULT_BATCH_SIZES as INFER_BATCH_SIZES
        from .compiled_forward import DEFAULT_PRECISIONS, run_compiled_forward

        scale = paper_scale() if args.scale == "paper" else ci_scale()
        result = run_compiled_forward(
            scale,
            threshold=args.threshold,
            batch_sizes=args.batch_sizes or INFER_BATCH_SIZES,
            repeats=args.repeats,
            timing_rounds=args.timing_rounds,
            precisions=args.precisions or DEFAULT_PRECISIONS,
        )
        text = result.to_text()
        print(text)
        print(
            f"reference speedup (batch {result.metadata['reference_batch_size']}): "
            f"{result.metadata['reference_speedup']:.2f}x, "
            f"max |logit diff| {result.metadata['max_abs_logit_diff']:.2e}"
        )
        fp32_reference = result.metadata.get("fp32_reference_speedup")
        if fp32_reference is not None:
            print(f"fp32 kernel reference speedup (batch 1): {fp32_reference:.2f}x")
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{result.name}.txt").write_text(text + "\n")
        return 0

    if args.command == "sweep-bench":
        from .sweep_fastpath import DEFAULT_SWEEP_GRIDS, run_sweep_fastpath

        scale = paper_scale() if args.scale == "paper" else ci_scale()
        grids = (
            (("custom", tuple(args.thresholds)),) if args.thresholds else DEFAULT_SWEEP_GRIDS
        )
        result = run_sweep_fastpath(scale, grids=grids, timing_rounds=args.timing_rounds)
        text = result.to_text()
        print(text)
        if "reference_speedup" in result.metadata:
            print(
                f"reference speedup ({result.metadata.get('scale')} scale, Table II grid): "
                f"{result.metadata['reference_speedup']:.1f}x"
            )
        if args.output_dir is not None:
            args.output_dir.mkdir(parents=True, exist_ok=True)
            (args.output_dir / f"{result.name}.txt").write_text(text + "\n")
        return 0

    scale = paper_scale() if args.scale == "paper" else ci_scale()
    if args.experiment == "all":
        names: List[str] = list(EXPERIMENT_REGISTRY)
    elif args.experiment in EXPERIMENT_REGISTRY:
        names = [args.experiment]
    else:
        parser.error(
            f"unknown experiment '{args.experiment}'; run 'list' to see the available ids"
        )
        return 2  # unreachable, parser.error raises SystemExit

    for name in names:
        _run_one(name, scale, args.output_dir)
    return 0


if __name__ == "__main__":
    sys.exit(main())
