"""Experiment E5 — accuracy vs communication as device size grows (paper Figure 9).

The number of filters in the end-device ConvP blocks is swept; for each
setting the local exit threshold is chosen so that roughly 75% of samples
exit locally (as in the paper), and the experiment reports local, cloud and
overall accuracy against the communication cost of Eq. 1.  The per-device
memory footprint is also recorded to check the paper's "< 2 KB" constraint.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.threshold import threshold_for_exit_rate
from .results import ExperimentResult
from .runner import ExperimentScale, capture_oracle, default_scale, get_dataset, get_trained_ddnn

__all__ = ["run_cloud_offloading", "DEFAULT_FILTER_SWEEP"]

#: Device filter counts swept in the reproduction of Figure 9.
DEFAULT_FILTER_SWEEP = (1, 2, 4, 8)


def run_cloud_offloading(
    scale: Optional[ExperimentScale] = None,
    filter_sweep: Optional[Sequence[int]] = None,
    target_local_exit: float = 0.75,
) -> ExperimentResult:
    """Reproduce Figure 9: accuracy and communication vs device filters."""
    scale = scale if scale is not None else default_scale()
    filter_sweep = tuple(filter_sweep) if filter_sweep is not None else DEFAULT_FILTER_SWEEP
    train_set, test_set = get_dataset(scale)

    result = ExperimentResult(
        name="fig9_cloud_offloading",
        paper_reference="Figure 9",
        columns=[
            "device_filters",
            "threshold",
            "local_exit_pct",
            "communication_bytes",
            "local_accuracy_pct",
            "cloud_accuracy_pct",
            "overall_accuracy_pct",
            "device_memory_bytes",
        ],
        metadata={"scale": scale.name, "target_local_exit": target_local_exit},
    )

    for filters in filter_sweep:
        config = scale.ddnn_config(device_filters=filters)
        model, _ = get_trained_ddnn(scale, config=config)
        # Pick the threshold whose local exit rate is closest to the target,
        # calibrating on the training split (acting as validation).  The
        # oracle makes the whole 21-point calibration one forward pass.
        search = threshold_for_exit_rate(
            model, train_set, target_local_exit, oracle=capture_oracle(model, train_set)
        )
        threshold = search.best_threshold

        # One test-set forward answers the exit accuracies, the staged
        # routing and the communication cost (previously two forwards).
        oracle = capture_oracle(model, test_set)
        exit_accuracy = oracle.exit_accuracies()
        staged = oracle.route(threshold)
        result.add_row(
            device_filters=filters,
            threshold=threshold,
            local_exit_pct=100.0 * staged.local_exit_fraction,
            communication_bytes=oracle.communication_bytes(staged),
            local_accuracy_pct=100.0 * exit_accuracy["local"],
            cloud_accuracy_pct=100.0 * exit_accuracy["cloud"],
            overall_accuracy_pct=100.0 * staged.overall_accuracy(test_set.labels),
            device_memory_bytes=max(model.device_memory_bytes()),
        )
    return result
