"""Experiment S4 — wall-clock parallel serving on real thread-pool workers.

Every other serving study in this repo reports *simulated* time: workers
are bookkeeping slots on a discrete-event loop and no two forwards ever
execute together.  This study measures the real thing — the
``backend="thread"`` worker pools behind :class:`~repro.serving.server.DDNNServer`
and :class:`~repro.serving.fabric.DistributedServingFabric` running
per-worker :class:`~repro.compile.CompiledDDNN` plan bundles on a
:class:`~concurrent.futures.ThreadPoolExecutor` — and answers two
questions:

* **equivalence** — the thread backend must route every request exactly
  like the deterministic simulated backend (same prediction and exit index
  per request, at any worker count).  The rows record the cross-check and
  the run *raises* on any mismatch, so a passing table is itself evidence.
  Entropy *floats* are deliberately left out of the byte-for-byte check:
  real timing changes which requests share an upper-tier batch, and BLAS
  kernels pick shape-dependent summation orders, so per-row logits (and
  hence entropies) wobble by a few ULPs across batch compositions while
  the decisions they induce stay identical.
* **scaling** — wall-clock throughput versus worker count (1/2/4 threads)
  on compiled batch-1 forwards.  The forwards are GEMM-dominated numpy
  kernels that release the GIL, so on a multi-core machine throughput
  scales with threads; a deliberately heavier-than-CI model keeps the
  per-forward cost compute-bound rather than Python-overhead-bound.

Wall-clock rows are machine-dependent by nature; the metadata records the
visible CPU count so a reader (or the benchmark's scaling assertion) can
judge the speedups against the cores that were actually available.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Sequence

from ..core.ddnn import build_ddnn
from ..hierarchy.partition import LinkSpec, partition_ddnn
from ..serving import BatchingPolicy, DDNNServer, DistributedServingFabric
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn

__all__ = [
    "DEFAULT_PARALLEL_WORKER_COUNTS",
    "available_cpu_count",
    "run_parallel_serving",
]

DEFAULT_PARALLEL_WORKER_COUNTS = (1, 2, 4)

#: Heavier-than-CI model geometry for the scaling rows: wide enough that a
#: batch-1 forward is dominated by GIL-releasing GEMMs (~5-10 ms) instead of
#: Python dispatch, so thread scaling reflects the hardware.
SCALING_MODEL_OVERRIDES = dict(device_filters=24, cloud_filters=48, cloud_hidden_units=256)

#: Effectively-free links for the scaling fabric: the study measures compute
#: concurrency, not simulated transfer delays.
FAST_LINK = LinkSpec(bandwidth_bytes_per_s=1e15, latency_s=0.0)


def available_cpu_count() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


def _routing(responses) -> list:
    """Per-request (id, prediction, exit) triples, in request order.

    Deliberately excludes the entropy float: real timing changes upper-tier
    batch composition, and BLAS kernels are shape-dependent at the
    few-ULP level, so entropies agree only to ~1e-12 across backends while
    decisions and exit indices match exactly.
    """
    return [
        (r.request_id, r.prediction, r.exit_index)
        for r in sorted(responses, key=lambda r: r.request_id)
    ]


def run_parallel_serving(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    worker_counts: Sequence[int] = DEFAULT_PARALLEL_WORKER_COUNTS,
    num_requests: int = 96,
    rounds: int = 2,
) -> ExperimentResult:
    """Measure thread-backend routing equivalence and wall-clock scaling."""
    scale = scale if scale is not None else default_scale()
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    worker_counts = [int(count) for count in worker_counts]
    if any(count < 1 for count in worker_counts):
        raise ValueError(f"worker counts must be >= 1, got {worker_counts}")

    _, test_set = get_dataset(scale)
    result = ExperimentResult(
        name="parallel_serving",
        paper_reference="Wall-clock parallel serving (thread-pool workers)",
        columns=[
            "sweep",
            "backend",
            "workers",
            "requests",
            "wall_ms",
            "throughput_rps",
            "speedup_x",
            "routing_match",
        ],
        metadata={
            "scale": scale.name,
            "threshold": threshold,
            "num_requests": num_requests,
            "rounds": rounds,
            "cpu_count": available_cpu_count(),
            "scaling_model": dict(SCALING_MODEL_OVERRIDES),
            "note": (
                "wall-clock rows are machine-dependent; interpret speedup_x "
                "against cpu_count"
            ),
        },
    )

    # ------------------------------------------------------------------ #
    # Equivalence: the trained CI model served through the fabric on the
    # deterministic simulated backend, then on real threads at every worker
    # count — routing must match byte for byte.
    model, _ = get_trained_ddnn(scale)
    reference = None
    equivalence_plans = [("simulated", 2)] + [("thread", count) for count in worker_counts]
    for backend, workers in equivalence_plans:
        fabric = DistributedServingFabric(
            partition_ddnn(model),
            threshold,
            workers_per_tier=workers,
            batching=BatchingPolicy(max_batch_size=8),
            compile=True,
            backend=backend,
        )
        try:
            start = time.perf_counter()
            responses = fabric.serve_dataset(test_set)
            wall = time.perf_counter() - start
        finally:
            fabric.close()
        routing = _routing(responses)
        if reference is None:
            reference = routing
            match = "ref"
        elif routing == reference:
            match = "yes"
        else:
            mismatches = sum(1 for a, b in zip(routing, reference) if a != b)
            raise RuntimeError(
                f"thread backend ({workers} workers) routed {mismatches}/"
                f"{len(reference)} requests differently from the simulated "
                "backend — the backends must be byte-identical"
            )
        result.add_row(
            sweep="equivalence",
            backend=backend,
            workers=workers,
            requests=len(responses),
            wall_ms=1e3 * wall,
            throughput_rps=len(responses) / wall if wall > 0 else 0.0,
            speedup_x=0.0,
            routing_match=match,
        )

    # ------------------------------------------------------------------ #
    # Scaling: untrained heavy model (weights don't matter for timing),
    # batch-1 compiled forwards, best-of-rounds wall clock.
    heavy = build_ddnn(scale.ddnn_config(**SCALING_MODEL_OVERRIDES))
    heavy.eval()
    requests = [test_set.images[index % len(test_set)] for index in range(num_requests)]

    def _server_run(workers: int) -> float:
        server = DDNNServer(
            heavy,
            threshold,
            policy=BatchingPolicy.sequential(),
            compile=True,
            workers=workers,
            backend="thread",
        )
        try:
            best = float("inf")
            for _ in range(rounds):
                start = time.perf_counter()
                for views in requests:
                    server.submit(views)
                server.run_until_drained()
                best = min(best, time.perf_counter() - start)
            return best
        finally:
            server.close()

    def _fabric_run(workers: int) -> float:
        best = float("inf")
        for _ in range(rounds):
            fabric = DistributedServingFabric(
                partition_ddnn(
                    heavy, local_link=FAST_LINK, uplink=FAST_LINK, edge_link=FAST_LINK
                ),
                threshold,
                workers_per_tier=workers,
                batching=BatchingPolicy(max_batch_size=1),
                compile=True,
                backend="thread",
            )
            try:
                start = time.perf_counter()
                fabric.submit_many(requests)
                fabric.run_until_idle(drain=True)
                best = min(best, time.perf_counter() - start)
            finally:
                fabric.close()
        return best

    for sweep, runner in (("server", _server_run), ("fabric", _fabric_run)):
        base_rps = None
        for workers in worker_counts:
            wall = runner(workers)
            rps = num_requests / wall
            if base_rps is None:
                base_rps = rps
            result.add_row(
                sweep=sweep,
                backend="thread",
                workers=workers,
                requests=num_requests,
                wall_ms=1e3 * wall,
                throughput_rps=rps,
                speedup_x=rps / base_rps,
                routing_match="-",
            )
    return result
