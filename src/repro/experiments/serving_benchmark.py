"""Experiment S1 — online serving throughput under dynamic micro-batching.

The paper's deployment serves a continuous stream of requests from end
devices; the win of the exit cascade is throughput and latency under load.
This experiment measures the :class:`~repro.serving.server.DDNNServer`
draining the MVMC test traffic in several modes:

* ``sequential`` — batch-size-1 serving (the naive request-at-a-time
  baseline);
* ``dynamic-N`` — micro-batching with ``max_batch_size = N``.

Each mode is measured on both forward paths — ``eager`` (the autograd
Tensor stack) and ``compiled`` (the :mod:`repro.compile` fused inference
plans) — so the table shows the batching win *and* the end-to-end compiled
win.  For each row it reports wall time, requests/second, the speedup over
that path's sequential baseline, service latency percentiles and the
per-exit traffic split.  Accuracy is also reported as a guard: neither
batching nor compilation may change a single prediction (the cascade is
numerically batch-size invariant and the compiled path routing-identical).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..serving import BatchingPolicy, DDNNServer
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn

__all__ = ["DEFAULT_BATCH_SIZES", "DEFAULT_PATHS", "run_serving_throughput"]

#: Micro-batch ceilings measured against the sequential baseline.
DEFAULT_BATCH_SIZES = (8, 32, 64)

#: Forward paths measured for every serving mode.
DEFAULT_PATHS = ("eager", "compiled")


def run_serving_throughput(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    repeats: int = 2,
    timing_rounds: int = 3,
    paths: Sequence[str] = DEFAULT_PATHS,
) -> ExperimentResult:
    """Benchmark sequential vs dynamically-batched online serving.

    ``repeats`` controls how many passes over the test set form the request
    stream, so the measurement window is long enough to be stable at CI
    scale.  Each mode is drained ``timing_rounds`` times and the fastest
    round is reported, which suppresses scheduler noise in the ratio.
    ``paths`` selects the forward paths; eager rows come first so existing
    consumers of the table keep their row ordering.
    """
    scale = scale if scale is not None else default_scale()
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if timing_rounds < 1:
        raise ValueError("timing_rounds must be at least 1")
    for path in paths:
        if path not in ("eager", "compiled"):
            raise ValueError(f"unknown forward path '{path}'")
    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)

    result = ExperimentResult(
        name="serving_throughput",
        paper_reference="Serving (Sec. III-F online)",
        columns=[
            "path",
            "mode",
            "max_batch_size",
            "requests",
            "wall_s",
            "throughput_rps",
            "speedup_vs_sequential",
            "mean_latency_ms",
            "p95_latency_ms",
            "mean_batch",
            "local_exit_pct",
            "accuracy_pct",
        ],
        metadata={
            "scale": scale.name,
            "threshold": threshold,
            "repeats": repeats,
            "timing_rounds": timing_rounds,
            "test_samples": len(test_set),
            "paths": tuple(paths),
        },
    )

    policies = [("sequential", BatchingPolicy.sequential())]
    for size in batch_sizes:
        policies.append((f"dynamic-{size}", BatchingPolicy(max_batch_size=size, max_wait_s=0.0)))

    baseline_predictions: Optional[np.ndarray] = None
    best_throughput = {path: 0.0 for path in paths}
    for path in paths:
        sequential_throughput: Optional[float] = None
        for mode, policy in policies:
            wall = float("inf")
            for _ in range(timing_rounds):
                server = DDNNServer(
                    model, threshold, policy=policy, compile=(path == "compiled")
                )
                for _ in range(repeats):
                    for index in range(len(test_set)):
                        server.submit(
                            test_set.images[index],
                            client_id="bench",
                            target=int(test_set.labels[index]),
                        )
                started = time.perf_counter()
                responses = server.run_until_drained()
                wall = min(wall, time.perf_counter() - started)

            responses.sort(key=lambda response: response.request_id)
            predictions = np.array([response.prediction for response in responses])
            if baseline_predictions is None:
                baseline_predictions = predictions
            elif not np.array_equal(predictions, baseline_predictions):
                raise AssertionError(
                    f"{path} mode {mode} changed predictions — serving must be "
                    "batch-size invariant and compiled-path identical"
                )

            throughput = len(responses) / wall if wall > 0 else float("inf")
            if sequential_throughput is None:
                sequential_throughput = throughput
            best_throughput[path] = max(best_throughput[path], throughput)
            snapshot = server.snapshot()
            latencies = np.array([response.latency_s for response in responses])
            targets = np.array([response.target for response in responses])
            result.add_row(
                path=path,
                mode=mode,
                max_batch_size=policy.max_batch_size,
                requests=len(responses),
                wall_s=wall,
                throughput_rps=throughput,
                speedup_vs_sequential=throughput / sequential_throughput,
                mean_latency_ms=1e3 * float(latencies.mean()),
                p95_latency_ms=1e3 * float(np.percentile(latencies, 95)),
                mean_batch=snapshot.mean_batch_size,
                local_exit_pct=100.0 * snapshot.exit_fractions.get("local", 0.0),
                accuracy_pct=100.0 * float(np.mean(predictions == targets)),
            )
    if "eager" in best_throughput and "compiled" in best_throughput and best_throughput["eager"]:
        result.metadata["compiled_vs_eager_best"] = (
            best_throughput["compiled"] / best_throughput["eager"]
        )
    return result
