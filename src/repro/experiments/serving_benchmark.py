"""Experiment S1 — online serving throughput under dynamic micro-batching.

The paper's deployment serves a continuous stream of requests from end
devices; the win of the exit cascade is throughput and latency under load.
This experiment measures the :class:`~repro.serving.server.DDNNServer`
draining the MVMC test traffic in several modes:

* ``sequential`` — batch-size-1 serving (the naive request-at-a-time
  baseline);
* ``dynamic-N`` — micro-batching with ``max_batch_size = N``.

For each mode it reports wall time, requests/second, the speedup over the
sequential baseline, service latency percentiles and the per-exit traffic
split.  Accuracy is also reported as a guard: batching must not change a
single prediction (the cascade is numerically batch-size invariant).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

import numpy as np

from ..serving import BatchingPolicy, DDNNServer
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn

__all__ = ["DEFAULT_BATCH_SIZES", "run_serving_throughput"]

#: Micro-batch ceilings measured against the sequential baseline.
DEFAULT_BATCH_SIZES = (8, 32, 64)


def run_serving_throughput(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    repeats: int = 2,
    timing_rounds: int = 3,
) -> ExperimentResult:
    """Benchmark sequential vs dynamically-batched online serving.

    ``repeats`` controls how many passes over the test set form the request
    stream, so the measurement window is long enough to be stable at CI
    scale.  Each mode is drained ``timing_rounds`` times and the fastest
    round is reported, which suppresses scheduler noise in the ratio.
    """
    scale = scale if scale is not None else default_scale()
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    if timing_rounds < 1:
        raise ValueError("timing_rounds must be at least 1")
    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)

    result = ExperimentResult(
        name="serving_throughput",
        paper_reference="Serving (Sec. III-F online)",
        columns=[
            "mode",
            "max_batch_size",
            "requests",
            "wall_s",
            "throughput_rps",
            "speedup_vs_sequential",
            "mean_latency_ms",
            "p95_latency_ms",
            "mean_batch",
            "local_exit_pct",
            "accuracy_pct",
        ],
        metadata={
            "scale": scale.name,
            "threshold": threshold,
            "repeats": repeats,
            "timing_rounds": timing_rounds,
            "test_samples": len(test_set),
        },
    )

    policies = [("sequential", BatchingPolicy.sequential())]
    for size in batch_sizes:
        policies.append((f"dynamic-{size}", BatchingPolicy(max_batch_size=size, max_wait_s=0.0)))

    sequential_throughput: Optional[float] = None
    baseline_predictions: Optional[np.ndarray] = None
    for mode, policy in policies:
        wall = float("inf")
        for _ in range(timing_rounds):
            server = DDNNServer(model, threshold, policy=policy)
            for _ in range(repeats):
                for index in range(len(test_set)):
                    server.submit(
                        test_set.images[index],
                        client_id="bench",
                        target=int(test_set.labels[index]),
                    )
            started = time.perf_counter()
            responses = server.run_until_drained()
            wall = min(wall, time.perf_counter() - started)

        responses.sort(key=lambda response: response.request_id)
        predictions = np.array([response.prediction for response in responses])
        if baseline_predictions is None:
            baseline_predictions = predictions
        elif not np.array_equal(predictions, baseline_predictions):
            raise AssertionError(f"mode {mode} changed predictions — cascade not batch-invariant")

        throughput = len(responses) / wall if wall > 0 else float("inf")
        if sequential_throughput is None:
            sequential_throughput = throughput
        snapshot = server.snapshot()
        latencies = np.array([response.latency_s for response in responses])
        targets = np.array([response.target for response in responses])
        result.add_row(
            mode=mode,
            max_batch_size=policy.max_batch_size,
            requests=len(responses),
            wall_s=wall,
            throughput_rps=throughput,
            speedup_vs_sequential=throughput / sequential_throughput,
            mean_latency_ms=1e3 * float(latencies.mean()),
            p95_latency_ms=1e3 * float(np.percentile(latencies, 95)),
            mean_batch=snapshot.mean_batch_size,
            local_exit_pct=100.0 * snapshot.exit_fractions.get("local", 0.0),
            accuracy_pct=100.0 * float(np.mean(predictions == targets)),
        )
    return result
