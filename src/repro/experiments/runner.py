"""Shared infrastructure for the experiment harness.

Every experiment needs a dataset and (usually) one or more trained DDNNs.
Because several tables/figures of the paper reuse the same trained model
(the MP-CC six-device DDNN), this module provides a small in-process cache so
benchmark runs train each configuration only once.

Experiments are parameterised by an :class:`ExperimentScale`:

* ``paper_scale()`` matches the paper (680/171 samples, 100 epochs);
* ``ci_scale()`` is a reduced setting that preserves the qualitative trends
  while keeping the full benchmark suite runnable on a laptop in minutes.

The active default scale is chosen by the ``REPRO_SCALE`` environment
variable (``ci`` or ``paper``), defaulting to ``ci``.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

from ..core.config import DDNNConfig, TrainingConfig
from ..core.ddnn import DDNN, build_ddnn
from ..core.training import DDNNTrainer
from ..datasets.mvmc import MVMCDataset, load_mvmc_splits

__all__ = [
    "ExperimentScale",
    "ci_scale",
    "paper_scale",
    "default_scale",
    "get_dataset",
    "get_trained_ddnn",
    "train_fresh_ddnn",
    "capture_oracle",
    "clear_cache",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Size knobs shared by all experiments.

    Attributes
    ----------
    train_samples, test_samples:
        Dataset split sizes.
    epochs, batch_size:
        Joint-training hyper-parameters.
    num_devices:
        Number of end devices (6 in the paper).
    device_filters:
        Filters per device ConvP block (4 in the paper's threshold study).
    cloud_filters, cloud_conv_blocks, cloud_hidden_units:
        Cloud section geometry.
    individual_epochs:
        Epochs used for the per-device individual baselines.
    data_seed, model_seed:
        Seeds for the dataset generator and parameter initialisation.
    """

    name: str = "ci"
    train_samples: int = 200
    test_samples: int = 80
    epochs: int = 18
    batch_size: int = 32
    num_devices: int = 6
    device_filters: int = 4
    cloud_filters: int = 8
    cloud_conv_blocks: int = 2
    cloud_hidden_units: int = 32
    individual_epochs: int = 18
    data_seed: int = 7
    model_seed: int = 1

    def ddnn_config(self, **overrides) -> DDNNConfig:
        """A DDNN architecture config at this scale, with overrides applied."""
        base = dict(
            num_devices=self.num_devices,
            device_filters=self.device_filters,
            cloud_filters=self.cloud_filters,
            cloud_conv_blocks=self.cloud_conv_blocks,
            cloud_hidden_units=self.cloud_hidden_units,
            seed=self.model_seed,
        )
        base.update(overrides)
        return DDNNConfig(**base)

    def training_config(self, **overrides) -> TrainingConfig:
        """A training config at this scale, with overrides applied."""
        base = dict(epochs=self.epochs, batch_size=self.batch_size, seed=self.model_seed)
        base.update(overrides)
        return TrainingConfig(**base)


def ci_scale() -> ExperimentScale:
    """Reduced scale used by default for tests and benchmark harnesses."""
    return ExperimentScale(name="ci")


def paper_scale() -> ExperimentScale:
    """The paper's scale: 680/171 samples, 100 epochs, 6 devices."""
    return ExperimentScale(
        name="paper",
        train_samples=680,
        test_samples=171,
        epochs=100,
        batch_size=32,
        num_devices=6,
        device_filters=4,
        cloud_filters=16,
        cloud_conv_blocks=2,
        cloud_hidden_units=64,
        individual_epochs=100,
    )


def default_scale() -> ExperimentScale:
    """Scale selected by the ``REPRO_SCALE`` environment variable."""
    choice = os.environ.get("REPRO_SCALE", "ci").lower()
    if choice == "paper":
        return paper_scale()
    if choice == "ci":
        return ci_scale()
    raise ValueError(f"REPRO_SCALE must be 'ci' or 'paper', got '{choice}'")


# --------------------------------------------------------------------------- #
# In-process caches
# --------------------------------------------------------------------------- #
_DATASET_CACHE: Dict[Tuple, Tuple[MVMCDataset, MVMCDataset]] = {}
_MODEL_CACHE: Dict[Tuple, Tuple[DDNN, DDNNTrainer]] = {}
#: (id(model), id(dataset), eager flag, batch size) -> (model, dataset,
#: oracle), for datasets owned by _DATASET_CACHE only.  The model/dataset
#: references double-check identity against recycled ids and keep the key
#: owners alive, mirroring _MODEL_CACHE's lifetime.
_ORACLE_CACHE: Dict[Tuple, Tuple] = {}
#: Guards the oracle memo (lookup, cacheability probe, insert, clear) so
#: concurrent captures from worker threads can't corrupt the dict; the
#: capture itself runs outside the lock, so a lost race costs one extra
#: forward, never a stall.
_ORACLE_LOCK = threading.RLock()


def clear_cache() -> None:
    """Drop all cached datasets, trained models and captured oracles."""
    _DATASET_CACHE.clear()
    _MODEL_CACHE.clear()
    with _ORACLE_LOCK:
        _ORACLE_CACHE.clear()


def get_dataset(scale: ExperimentScale) -> Tuple[MVMCDataset, MVMCDataset]:
    """Train/test splits for a scale (cached)."""
    key = (scale.train_samples, scale.test_samples, scale.data_seed, scale.num_devices)
    if key not in _DATASET_CACHE:
        from ..datasets.mvmc import DEFAULT_DEVICE_PROFILES

        profiles = DEFAULT_DEVICE_PROFILES[: scale.num_devices]
        if len(profiles) < scale.num_devices:
            raise ValueError(
                f"scale requests {scale.num_devices} devices but only "
                f"{len(DEFAULT_DEVICE_PROFILES)} device profiles are defined"
            )
        _DATASET_CACHE[key] = load_mvmc_splits(
            train_samples=scale.train_samples,
            test_samples=scale.test_samples,
            profiles=profiles,
            seed=scale.data_seed,
        )
    return _DATASET_CACHE[key]


def _config_key(config: DDNNConfig, training: TrainingConfig, scale: ExperimentScale) -> Tuple:
    return (
        scale.train_samples,
        scale.test_samples,
        scale.data_seed,
        config.num_devices,
        config.num_classes,
        config.device_filters,
        config.device_conv_blocks,
        config.cloud_filters,
        config.cloud_conv_blocks,
        config.cloud_hidden_units,
        config.edge_filters,
        config.edge_conv_blocks,
        config.local_aggregation,
        config.cloud_aggregation,
        config.edge_aggregation,
        config.binary_devices,
        config.binary_cloud,
        config.binary_edge,
        config.topology.name,
        config.topology.num_edges,
        config.seed,
        training.epochs,
        training.batch_size,
        training.learning_rate,
        tuple(training.exit_weights) if training.exit_weights is not None else None,
        training.seed,
    )


def train_fresh_ddnn(
    scale: ExperimentScale,
    config: Optional[DDNNConfig] = None,
    training: Optional[TrainingConfig] = None,
    train_set: Optional[MVMCDataset] = None,
) -> Tuple[DDNN, DDNNTrainer]:
    """Train a DDNN without touching the cache (always retrains)."""
    config = config if config is not None else scale.ddnn_config()
    training = training if training is not None else scale.training_config()
    if train_set is None:
        train_set, _ = get_dataset(scale)
    model = build_ddnn(config)
    trainer = DDNNTrainer(model, training)
    trainer.fit(train_set)
    return model, trainer


def get_trained_ddnn(
    scale: ExperimentScale,
    config: Optional[DDNNConfig] = None,
    training: Optional[TrainingConfig] = None,
) -> Tuple[DDNN, DDNNTrainer]:
    """Train (or fetch from cache) a DDNN for the given configuration."""
    config = config if config is not None else scale.ddnn_config()
    training = training if training is not None else scale.training_config()
    key = _config_key(config, training, scale)
    if key not in _MODEL_CACHE:
        _MODEL_CACHE[key] = train_fresh_ddnn(scale, config, training)
    return _MODEL_CACHE[key]


def capture_oracle(
    model: DDNN, dataset: MVMCDataset, batch_size: int = 64, precision: str = "float64"
):
    """Forward-once :class:`~repro.core.oracle.ExitOracle` for an experiment.

    The offline harness defaults to the compiled fast path (one
    :mod:`repro.compile` plan forward per dataset, plans memoized
    process-wide); set ``REPRO_EAGER_EVAL=1`` to force the eager forward,
    e.g. when bisecting a compiled-path discrepancy.  Compiled logits agree
    with eager at float32-level tolerance, and routing has matched
    byte-for-byte on every model and table in this suite (the experiment
    benchmarks assert table identity).

    Captures over the splits :func:`get_dataset` owns are memoized per
    (model, dataset) identity, so experiments sharing the cached default
    model and test split (``run all``, the benchmark suite in one process)
    pay the forward once, like :func:`get_trained_ddnn` pays training once.
    Throwaway datasets (failed-device copies, device subsets) are captured
    without caching — a fresh object per call could never hit and would pin
    its logit block forever.  The harness never retrains a cached model in
    place; :func:`clear_cache` drops captured oracles along with the models
    they describe.
    """
    from ..core.oracle import ExitOracle

    eager = os.environ.get("REPRO_EAGER_EVAL", "").lower() in ("1", "true", "yes")
    # The weights version (bumped by DDNNTrainer.train_epoch) keys retrained
    # models away from their pre-training captures.
    key = (
        id(model),
        id(dataset),
        eager,
        batch_size,
        precision,
        getattr(model, "_weights_version", 0),
    )
    # The whole lookup-capture-insert runs under one lock: the capture
    # forwards through the process-wide compiled plan for ``model``, whose
    # preallocated scratch arenas are single-threaded, so concurrent
    # captures of the same model would corrupt each other's logits.
    # Serializing here also means a memo stampede pays the forward once.
    with _ORACLE_LOCK:
        cacheable = any(
            dataset is split for pair in _DATASET_CACHE.values() for split in pair
        )
        if cacheable:
            entry = _ORACLE_CACHE.get(key)
            if entry is not None and entry[0] is model and entry[1] is dataset:
                return entry[2]
        oracle = ExitOracle.capture(
            model,
            dataset,
            batch_size=batch_size,
            compile=not eager,
            precision=precision,
        )
        if cacheable:
            _ORACLE_CACHE[key] = (model, dataset, oracle)
        return oracle
