"""``repro.experiments`` — one module per table/figure of the paper.

Each ``run_*`` function returns an
:class:`~repro.experiments.results.ExperimentResult` whose rows mirror the
paper's table/figure; ``EXPERIMENT_REGISTRY`` maps experiment ids to the
functions so the benchmark harness and ``examples/`` scripts can enumerate
them.
"""

from typing import Callable, Dict

from .aggregation_table import PAPER_TABLE1_ORDER, run_aggregation_table
from .chaos_serving import DEFAULT_SCENARIOS, run_chaos_serving
from .cloud_offloading import DEFAULT_FILTER_SWEEP, run_cloud_offloading
from .communication_reduction import run_communication_reduction
from .compiled_forward import REFERENCE_BATCH_SIZE, run_compiled_forward
from .dataset_stats import run_dataset_stats
from .distributed_serving import (
    DEFAULT_BANDWIDTH_SCALES,
    DEFAULT_THRESHOLD_SWEEP,
    DEFAULT_WORKER_COUNTS,
    run_distributed_serving,
)
from .edge_hierarchy import run_edge_hierarchy
from .elastic_serving import DEFAULT_PEAK_WORKERS, run_elastic_serving
from .fault_tolerance import run_fault_tolerance, run_multi_device_failures
from .mixed_precision import run_mixed_precision
from .overload_study import (
    DEFAULT_LOAD_MULTIPLIERS,
    DEFAULT_POLICIES,
    queue_latency_bound_s,
    run_overload_study,
)
from .parallel_serving import (
    DEFAULT_PARALLEL_WORKER_COUNTS,
    available_cpu_count,
    run_parallel_serving,
)
from .results import ExperimentResult, format_table
from .runner import (
    ExperimentScale,
    capture_oracle,
    ci_scale,
    clear_cache,
    default_scale,
    get_dataset,
    get_trained_ddnn,
    paper_scale,
    train_fresh_ddnn,
)
from .scaling_devices import compute_individual_accuracies, run_scaling_devices
from .serving_benchmark import DEFAULT_BATCH_SIZES, run_serving_throughput
from .slo_serving import DEFAULT_MODES, run_slo_serving, run_wallclock_slo_smoke
from .sweep_fastpath import DEFAULT_SWEEP_GRIDS, REFERENCE_GRID, run_sweep_fastpath
from .threshold_sweep import PAPER_TABLE2_THRESHOLDS, run_threshold_sweep
from .weight_ablation import run_weight_ablation

#: Experiment id -> callable producing its ExperimentResult.
EXPERIMENT_REGISTRY: Dict[str, Callable[..., ExperimentResult]] = {
    "fig6_dataset_stats": run_dataset_stats,
    "table1_aggregation": run_aggregation_table,
    "table2_fig7_threshold_sweep": run_threshold_sweep,
    "fig8_scaling_devices": run_scaling_devices,
    "fig9_cloud_offloading": run_cloud_offloading,
    "fig10_fault_tolerance": run_fault_tolerance,
    "sec4h_communication_reduction": run_communication_reduction,
    "ablation_exit_weights": run_weight_ablation,
    "ext_edge_hierarchy": run_edge_hierarchy,
    "ext_mixed_precision": run_mixed_precision,
    "serving_throughput": run_serving_throughput,
    "overload_tail_latency": run_overload_study,
    "compiled_forward": run_compiled_forward,
    "distributed_serving": run_distributed_serving,
    "parallel_serving": run_parallel_serving,
    "elastic_serving": run_elastic_serving,
    "chaos_serving": run_chaos_serving,
    "slo_serving": run_slo_serving,
    "threshold_sweep_fastpath": run_sweep_fastpath,
}

__all__ = [
    "ExperimentResult",
    "format_table",
    "ExperimentScale",
    "ci_scale",
    "paper_scale",
    "default_scale",
    "get_dataset",
    "get_trained_ddnn",
    "train_fresh_ddnn",
    "capture_oracle",
    "clear_cache",
    "run_dataset_stats",
    "run_aggregation_table",
    "PAPER_TABLE1_ORDER",
    "run_threshold_sweep",
    "PAPER_TABLE2_THRESHOLDS",
    "run_scaling_devices",
    "compute_individual_accuracies",
    "run_cloud_offloading",
    "DEFAULT_FILTER_SWEEP",
    "run_fault_tolerance",
    "run_multi_device_failures",
    "run_communication_reduction",
    "run_weight_ablation",
    "run_edge_hierarchy",
    "run_mixed_precision",
    "run_serving_throughput",
    "DEFAULT_BATCH_SIZES",
    "run_compiled_forward",
    "REFERENCE_BATCH_SIZE",
    "run_overload_study",
    "DEFAULT_LOAD_MULTIPLIERS",
    "DEFAULT_POLICIES",
    "queue_latency_bound_s",
    "run_distributed_serving",
    "DEFAULT_WORKER_COUNTS",
    "DEFAULT_BANDWIDTH_SCALES",
    "DEFAULT_THRESHOLD_SWEEP",
    "run_parallel_serving",
    "DEFAULT_PARALLEL_WORKER_COUNTS",
    "available_cpu_count",
    "run_elastic_serving",
    "DEFAULT_PEAK_WORKERS",
    "run_chaos_serving",
    "DEFAULT_SCENARIOS",
    "run_slo_serving",
    "run_wallclock_slo_smoke",
    "DEFAULT_MODES",
    "run_sweep_fastpath",
    "DEFAULT_SWEEP_GRIDS",
    "REFERENCE_GRID",
    "EXPERIMENT_REGISTRY",
]
