"""Experiment E8 — exit-weight sensitivity ablation (paper Section IV-A).

The paper trains with equal weights for the local and cloud exit losses and
notes that heavily weighting either exit "did not significantly change the
accuracy of the system".  This ablation reproduces that check by training the
same MP-CC architecture with equal, local-heavy and cloud-heavy weights and
reporting the exit accuracies of each run.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from .results import ExperimentResult
from .runner import ExperimentScale, capture_oracle, default_scale, get_dataset, get_trained_ddnn

__all__ = ["run_weight_ablation", "DEFAULT_WEIGHTINGS"]

#: (name, (local weight, cloud weight)) settings compared in the ablation.
DEFAULT_WEIGHTINGS: Tuple[Tuple[str, Tuple[float, float]], ...] = (
    ("equal", (1.0, 1.0)),
    ("local-heavy", (4.0, 1.0)),
    ("cloud-heavy", (1.0, 4.0)),
)


def run_weight_ablation(
    scale: Optional[ExperimentScale] = None,
    weightings: Optional[Sequence[Tuple[str, Tuple[float, float]]]] = None,
    threshold: float = 0.8,
) -> ExperimentResult:
    """Train the default DDNN under different exit-loss weightings."""
    scale = scale if scale is not None else default_scale()
    weightings = tuple(weightings) if weightings is not None else DEFAULT_WEIGHTINGS
    _, test_set = get_dataset(scale)

    result = ExperimentResult(
        name="ablation_exit_weights",
        paper_reference="Section IV-A (weight sensitivity)",
        columns=[
            "weighting",
            "local_weight",
            "cloud_weight",
            "local_accuracy_pct",
            "cloud_accuracy_pct",
            "overall_accuracy_pct",
        ],
        metadata={"scale": scale.name, "threshold": threshold},
    )
    for name, (local_weight, cloud_weight) in weightings:
        training = scale.training_config(exit_weights=(local_weight, cloud_weight))
        model, _ = get_trained_ddnn(scale, training=training)
        oracle = capture_oracle(model, test_set)
        accuracies = oracle.exit_accuracies()
        staged = oracle.route(threshold)
        result.add_row(
            weighting=name,
            local_weight=local_weight,
            cloud_weight=cloud_weight,
            local_accuracy_pct=100.0 * accuracies["local"],
            cloud_accuracy_pct=100.0 * accuracies["cloud"],
            overall_accuracy_pct=100.0 * staged.overall_accuracy(test_set.labels),
        )
    return result
