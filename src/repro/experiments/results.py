"""Result containers and plain-text table rendering for the experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table"]


@dataclass
class ExperimentResult:
    """Rows produced by one experiment (one table or figure of the paper).

    Attributes
    ----------
    name:
        Experiment identifier, e.g. ``"table1_aggregation"``.
    paper_reference:
        The table/figure of the paper this reproduces, e.g. ``"Table I"``.
    columns:
        Ordered column names.
    rows:
        One dictionary per row; keys are column names.
    metadata:
        Anything else worth recording (scale, thresholds, seeds, ...).
    """

    name: str
    paper_reference: str
    columns: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, **values: Any) -> None:
        """Append a row; values outside ``columns`` are rejected."""
        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; expected {self.columns}")
        self.rows.append(values)

    def column(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise KeyError(f"unknown column '{name}'")
        return [row.get(name) for row in self.rows]

    def to_text(self) -> str:
        """Render as an aligned plain-text table (paper-style)."""
        return format_table(self.columns, self.rows, title=f"{self.paper_reference} — {self.name}")


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    columns: Sequence[str],
    rows: Sequence[Dict[str, Any]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width text table."""
    rendered_rows = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(r[i]) for r in rendered_rows)) if rendered_rows else len(str(column))
        for i, column in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in rendered_rows:
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)))
    return "\n".join(lines)
