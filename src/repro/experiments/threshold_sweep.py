"""Experiment E3 — exit-threshold sweep (paper Table II and Figure 7).

A single MP-CC DDNN is trained and the local-exit entropy threshold ``T`` is
swept; for each value the experiment reports the fraction of samples exited
locally, the overall accuracy and the average per-device communication cost
of Eq. 1 — the three columns of the paper's Table II (Figure 7 plots the
same sweep).

The sweep runs on the forward-once :class:`~repro.core.oracle.ExitOracle`:
the test set is forwarded exactly once (compiled) and every threshold row is
vectorized routing over the cached entropies, instead of one full eager
forward per threshold.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .results import ExperimentResult
from .runner import ExperimentScale, capture_oracle, default_scale, get_dataset, get_trained_ddnn

__all__ = ["run_threshold_sweep", "PAPER_TABLE2_THRESHOLDS"]

#: Threshold values reported in the paper's Table II.
PAPER_TABLE2_THRESHOLDS = (0.1, 0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)


def run_threshold_sweep(
    scale: Optional[ExperimentScale] = None,
    thresholds: Optional[Sequence[float]] = None,
) -> ExperimentResult:
    """Sweep the local exit threshold of a trained MP-CC DDNN."""
    scale = scale if scale is not None else default_scale()
    thresholds = tuple(thresholds) if thresholds is not None else PAPER_TABLE2_THRESHOLDS
    _, test_set = get_dataset(scale)
    model, _ = get_trained_ddnn(scale)

    result = ExperimentResult(
        name="table2_fig7_threshold_sweep",
        paper_reference="Table II / Figure 7",
        columns=[
            "threshold",
            "local_exit_pct",
            "overall_accuracy_pct",
            "communication_bytes",
        ],
        metadata={"scale": scale.name, "scheme": model.config.scheme},
    )
    oracle = capture_oracle(model, test_set)
    for point in oracle.sweep(thresholds).points():
        result.add_row(
            threshold=point.threshold,
            local_exit_pct=100.0 * point.local_exit_fraction,
            overall_accuracy_pct=100.0 * point.overall_accuracy,
            communication_bytes=point.communication_bytes,
        )
    return result
