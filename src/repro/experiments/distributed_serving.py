"""Experiment S3 — distributed serving over the tier-aware fabric.

The overload study (S2) stresses a *single* serving tier.  This study runs
the full distributed picture the paper argues for: requests enter at the
device tier, exit locally when confident, and are offloaded up the
hierarchy as messages over bandwidth/latency-modelled links, served by a
configurable number of workers per tier
(:class:`~repro.serving.fabric.DistributedServingFabric`).

Three sweeps, all open-loop Poisson arrivals at a fixed multiple of one
worker's device-tier capacity (deterministic simulated time, real model
predictions):

* **worker count** — with one worker the device tier saturates and p95
  diverges toward the run length; doubling workers restores a bounded tail
  without touching the model or thresholds;
* **uplink bandwidth** — shrinking the tier links' bandwidth inflates every
  offloaded request's transfer delay, so the p95 gap between local and
  offloaded answers widens while the offload *fraction* stays fixed;
* **exit threshold** — a lower local threshold offloads more traffic,
  shifting answers between the local and upper classifiers (the paper's
  Table 2 knob, now visible end-to-end in serving terms: offload fraction,
  bytes per request, tail latency and accuracy all move together).

A final pair of rows shows **adaptive shedding**
(:class:`~repro.serving.fabric.AdaptiveThreshold`): under device-tier queue
pressure the local exit threshold is raised instead of rejecting requests —
p95 collapses back to the local-exit latency while accuracy degrades only
by the (small) gap between the local and full-cascade answers on the shed
tail.

Latency rows use hand-set affine :class:`~repro.serving.loadgen.ServiceModel`
coefficients so the table is machine-independent; the metadata additionally
records coefficients calibrated from the compiled plan's per-op timing hook
(:meth:`ServiceModel.from_plan_timings`), and ``calibrate=True`` swaps the
calibrated models into the rows for a machine-true table.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..hierarchy.partition import (
    DEFAULT_EDGE_LINK,
    DEFAULT_LOCAL_LINK,
    DEFAULT_UPLINK,
    LinkSpec,
    partition_ddnn,
)
from ..serving import (
    AdaptiveThreshold,
    BatchingPolicy,
    DDNNServer,
    DistributedServingFabric,
    PoissonProcess,
    ServiceModel,
)
from .results import ExperimentResult
from .runner import ExperimentScale, default_scale, get_dataset, get_trained_ddnn

__all__ = [
    "DEFAULT_WORKER_COUNTS",
    "DEFAULT_BANDWIDTH_SCALES",
    "DEFAULT_THRESHOLD_SWEEP",
    "run_distributed_serving",
]

DEFAULT_WORKER_COUNTS = (1, 2, 4)
DEFAULT_BANDWIDTH_SCALES = (0.5, 0.25)
DEFAULT_THRESHOLD_SWEEP = (0.5, 0.95)

#: Device-tier affine service model (same coefficients as the overload study).
DEVICE_SERVICE = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.001)
#: Upper tiers run on beefier hardware: half the overhead and per-sample cost.
UPPER_SERVICE = ServiceModel(batch_overhead_s=0.001, per_sample_s=0.0005)


def _scaled_link(link: LinkSpec, scale: float) -> LinkSpec:
    return LinkSpec(
        bandwidth_bytes_per_s=link.bandwidth_bytes_per_s * scale,
        latency_s=link.latency_s,
    )


def run_distributed_serving(
    scale: Optional[ExperimentScale] = None,
    threshold: float = 0.8,
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    bandwidth_scales: Sequence[float] = DEFAULT_BANDWIDTH_SCALES,
    threshold_sweep: Sequence[float] = DEFAULT_THRESHOLD_SWEEP,
    offered_x: float = 1.5,
    num_requests: int = 240,
    max_batch_size: int = 8,
    max_wait_s: float = 0.005,
    seed: int = 0,
    compiled: bool = False,
    calibrate: bool = False,
    backend: str = "simulated",
) -> ExperimentResult:
    """Sweep p95 latency and offload fraction across the fabric's knobs.

    ``backend="thread"`` runs every row on real thread-pool workers against
    wall-clock time (forcing the compiled forward path): latencies become
    machine-dependent measurements instead of deterministic simulated
    values, while offload fractions, bytes and accuracy stay identical to
    the simulated table — that cross-check is what the CI smoke row relies
    on.
    """
    scale = scale if scale is not None else default_scale()
    if num_requests < 1:
        raise ValueError("num_requests must be >= 1")
    if backend == "thread":
        compiled = True  # thread workers require compiled plan bundles
    model, _ = get_trained_ddnn(scale)
    _, test_set = get_dataset(scale)

    # Per-op-timing calibration of the device-tier service model: always
    # recorded in the metadata, swapped into the rows with calibrate=True.
    calibration_batch = max(2, min(max_batch_size, len(test_set)))
    measured = ServiceModel.from_plan_timings(
        DDNNServer(model, threshold, compile=True),
        test_set.images[0],
        batch_size=calibration_batch,
    )
    device_service = measured if calibrate else DEVICE_SERVICE
    upper_service = (
        ServiceModel(
            batch_overhead_s=0.5 * measured.batch_overhead_s,
            per_sample_s=0.5 * measured.per_sample_s,
        )
        if calibrate
        else UPPER_SERVICE
    )
    capacity_rps = device_service.capacity_rps(max_batch_size)
    offered_rps = offered_x * capacity_rps
    batching = BatchingPolicy(max_batch_size=max_batch_size, max_wait_s=max_wait_s)

    result = ExperimentResult(
        name="distributed_serving",
        paper_reference="Distributed serving fabric (tier-aware, open-loop)",
        columns=[
            "sweep",
            "workers",
            "bandwidth_x",
            "threshold",
            "adaptive",
            "served",
            "offload_pct",
            "relaxed_pct",
            "p50_ms",
            "p95_ms",
            "kb_per_req",
            "accuracy_pct",
        ],
        metadata={
            "scale": scale.name,
            "offered_x": offered_x,
            "offered_rps": offered_rps,
            "capacity_rps_1worker": capacity_rps,
            "num_requests": num_requests,
            "max_batch_size": max_batch_size,
            "max_wait_s": max_wait_s,
            "seed": seed,
            "backend": backend,
            "forward_path": "compiled" if compiled else "eager",
            "service_calibration": "plan-timings" if calibrate else "hand-set",
            "measured_plan_batch_overhead_ms": 1e3 * measured.batch_overhead_s,
            "measured_plan_per_sample_ms": 1e3 * measured.per_sample_s,
        },
    )

    def _run_row(
        sweep: str,
        workers: int,
        bandwidth_x: float,
        row_threshold: float,
        adaptive: Optional[AdaptiveThreshold],
        row_seed: int,
    ) -> None:
        deployment = partition_ddnn(
            model,
            local_link=_scaled_link(DEFAULT_LOCAL_LINK, bandwidth_x),
            uplink=_scaled_link(DEFAULT_UPLINK, bandwidth_x),
            edge_link=_scaled_link(DEFAULT_EDGE_LINK, bandwidth_x),
        )
        fabric = DistributedServingFabric(
            deployment,
            row_threshold,
            workers_per_tier=workers,
            batching=batching,
            compile=compiled,
            service_models=[device_service]
            + [upper_service] * (1 + (1 if deployment.model.has_edge else 0)),
            adaptive=adaptive,
            backend=backend,
        )
        try:
            report = fabric.open_loop(
                PoissonProcess(offered_rps, seed=row_seed),
                test_set.images,
                targets=test_set.labels,
                num_requests=num_requests,
            )
        finally:
            fabric.close()
        result.add_row(
            sweep=sweep,
            workers=workers,
            bandwidth_x=bandwidth_x,
            threshold=row_threshold,
            adaptive="yes" if adaptive is not None else "no",
            served=report.served,
            offload_pct=100.0 * report.offload_fraction,
            relaxed_pct=100.0 * report.relaxed_fraction,
            p50_ms=1e3 * report.p50_latency_s,
            p95_ms=1e3 * report.p95_latency_s,
            kb_per_req=report.mean_bytes / 1e3,
            accuracy_pct=0.0 if report.accuracy is None else 100.0 * report.accuracy,
        )

    for workers in worker_counts:
        _run_row("workers", workers, 1.0, threshold, None, seed)
    for bandwidth_x in bandwidth_scales:
        _run_row("bandwidth", 2, bandwidth_x, threshold, None, seed + 1)
    for row_threshold in threshold_sweep:
        _run_row("threshold", 2, 1.0, row_threshold, None, seed + 2)
    # Adaptive shedding under a saturated single worker: matched pair with
    # the workers=1 row (same seed), adaptive off vs on.
    adaptive = AdaptiveThreshold(depth_trigger=2 * max_batch_size, relaxed_threshold=1.0)
    _run_row("adaptive", 1, 1.0, threshold, adaptive, seed)
    return result
