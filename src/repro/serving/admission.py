"""Admission control for the bounded serving queue (overload protection).

The paper's end devices stream samples upward continuously, so a serving
tier must decide what to do when requests arrive faster than the cascade
can drain them.  An unbounded FIFO queue keeps every request but lets
latency grow without bound; a bounded :class:`~repro.serving.queue.RequestQueue`
instead consults an :class:`AdmissionPolicy` whenever it is full:

* :class:`RejectNewest` — refuse the arriving request (classic tail-drop
  backpressure; the client sees an explicit rejection and may retry);
* :class:`DropOldest` — evict the head-of-line request to make room (the
  freshest data wins, natural for sensor streams where a stale frame is
  worthless by the time it would be served);
* :class:`ShedToLocalExit` — keep the queue intact and answer the arriving
  request immediately from the *local* exit only, mirroring the paper's
  deployment where the local aggregator can always produce a (less
  confident) answer without the upper tiers.

Two further policies are consulted on *every* offer, not only when the
queue is full (``pre_queue = True``):

* :class:`TokenBucketPolicy` — per-client token buckets: each client may
  burst up to ``burst`` requests and sustain ``rate_rps``; a client out of
  tokens is rejected regardless of queue depth, so one chatty client can
  no longer crowd out the rest before QoS weighting even gets a say;
* :class:`AdaptiveShed` — queue-pressure shedding that *raises the
  local-exit threshold instead of rejecting outright*: past a backlog
  watermark, arriving requests are answered from the local exit when their
  local entropy clears a pressure-interpolated threshold (base threshold at
  the watermark, ``relaxed_threshold`` at a full queue) and queued normally
  otherwise.

Policies are pure decision functions; the queue interprets the decision and
does all bookkeeping, so policies stay trivially testable.  Aggregate
counts live in :class:`AdmissionStats` (queue-wide) and on each
:class:`~repro.serving.queue.ClientSession` (per client).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .queue import InferenceRequest, RequestQueue

__all__ = [
    "AdmissionOutcome",
    "AdmissionResult",
    "AdmissionStats",
    "AdmissionPolicy",
    "RejectNewest",
    "DropOldest",
    "ShedToLocalExit",
    "TokenBucketPolicy",
    "AdaptiveShed",
    "QueueFullError",
    "admission_policy",
]


class QueueFullError(RuntimeError):
    """Raised by :meth:`RequestQueue.submit` when admission refuses a request."""


class AdmissionOutcome(str, Enum):
    """What happened to a request offered to the queue."""

    ACCEPTED = "accepted"
    REJECTED = "rejected"
    SHED = "shed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of offering one request to the queue.

    Attributes
    ----------
    outcome:
        ``ACCEPTED`` (enqueued), ``REJECTED`` (refused, ``request`` is None)
        or ``SHED`` (not enqueued; ``request`` carries the sample so the
        caller can answer it from the local exit).
    request:
        The admitted or shed request, ``None`` on rejection.
    evicted:
        The head-of-line request removed to make room (``DropOldest`` only).
    """

    outcome: AdmissionOutcome
    request: Optional["InferenceRequest"] = None
    evicted: Optional["InferenceRequest"] = None

    @property
    def accepted(self) -> bool:
        return self.outcome is AdmissionOutcome.ACCEPTED


@dataclass
class AdmissionStats:
    """Queue-wide admission counters (exact, never windowed)."""

    accepted: int = 0
    rejected: int = 0
    dropped: int = 0
    shed: int = 0

    @property
    def offered(self) -> int:
        """Every request that knocked: accepted + rejected + shed."""
        return self.accepted + self.rejected + self.shed

    def as_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "dropped": self.dropped,
            "shed": self.shed,
        }

    @classmethod
    def merged(cls, stats) -> "AdmissionStats":
        """Sum counters across queues/replicas (the balancer's fleet view)."""
        total = cls()
        for item in stats:
            total.accepted += item.accepted
            total.rejected += item.rejected
            total.dropped += item.dropped
            total.shed += item.shed
        return total


class AdmissionPolicy:
    """Decides what the queue does with an arriving request.

    By default ``decide`` is only consulted when the queue is bounded *and*
    full; an unbounded queue accepts everything, preserving the original
    serving behaviour bit for bit.  A policy with ``pre_queue = True`` is
    instead consulted on *every* offer (rate limiting and pressure-based
    shedding need to act before the queue overflows).
    """

    name = "accept"
    #: Consult ``decide`` on every offer, not only when the queue is full.
    pre_queue = False

    def decide(self, queue: "RequestQueue", client_id: str) -> AdmissionOutcome:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RejectNewest(AdmissionPolicy):
    """Tail drop: a full queue refuses the arriving request."""

    name = "reject"

    def decide(self, queue: "RequestQueue", client_id: str) -> AdmissionOutcome:
        return AdmissionOutcome.REJECTED


class DropOldest(AdmissionPolicy):
    """Evict the head-of-line request so the freshest sample is served."""

    name = "drop-oldest"

    def decide(self, queue: "RequestQueue", client_id: str) -> AdmissionOutcome:
        # The queue interprets ACCEPTED-while-full as "evict the head first".
        return AdmissionOutcome.ACCEPTED


class ShedToLocalExit(AdmissionPolicy):
    """Answer the arriving request from the local exit instead of queueing.

    The queue stays intact; the request is stamped and returned with a
    ``SHED`` outcome so the server can produce an immediate, local-exit-only
    response — the degraded-but-bounded-latency mode of the paper's
    deployment.
    """

    name = "shed-local"

    def decide(self, queue: "RequestQueue", client_id: str) -> AdmissionOutcome:
        return AdmissionOutcome.SHED


class TokenBucketPolicy(AdmissionPolicy):
    """Per-client token-bucket rate limiting, enforced before the queue.

    Each client owns a bucket holding at most ``burst`` tokens that refills
    continuously at ``rate_rps`` tokens per second (timestamps come from the
    queue's injectable clock, so the limiter is deterministic under test).
    An arriving request consumes one token; a client with an empty bucket is
    rejected no matter how empty the queue is.  When the queue *is* full,
    the request is charged its token only if the ``inner`` full-queue policy
    (default :class:`RejectNewest`) lets it into the system.

    Works on bounded and unbounded queues alike — rate limiting is about
    per-client fairness, not backlog size.
    """

    name = "token-bucket"
    pre_queue = True

    def __init__(
        self,
        rate_rps: float,
        burst: float = 1.0,
        inner: Optional[AdmissionPolicy] = None,
    ) -> None:
        if not rate_rps > 0.0:
            raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
        if not burst >= 1.0:
            raise ValueError(f"burst must be >= 1 token, got {burst}")
        self.rate_rps = float(rate_rps)
        self.burst = float(burst)
        self.inner = inner if inner is not None else RejectNewest()
        #: client_id -> [tokens, last_refill_time]
        self._buckets: Dict[str, list] = {}

    def tokens(self, client_id: str, now: float) -> float:
        """Current token balance of a client's bucket (refilled to ``now``)."""
        bucket = self._buckets.setdefault(client_id, [self.burst, now])
        elapsed = max(now - bucket[1], 0.0)
        bucket[0] = min(bucket[0] + elapsed * self.rate_rps, self.burst)
        bucket[1] = now
        return bucket[0]

    def decide(self, queue: "RequestQueue", client_id: str) -> AdmissionOutcome:
        now = queue.clock()
        if self.tokens(client_id, now) < 1.0:
            return AdmissionOutcome.REJECTED
        if queue.capacity is not None and len(queue) >= queue.capacity:
            outcome = self.inner.decide(queue, client_id)
        else:
            outcome = AdmissionOutcome.ACCEPTED
        if outcome is not AdmissionOutcome.REJECTED:
            self._buckets[client_id][0] -= 1.0
        return outcome

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TokenBucketPolicy(rate_rps={self.rate_rps}, burst={self.burst}, "
            f"inner={self.inner!r})"
        )


class AdaptiveShed(AdmissionPolicy):
    """Shed by raising the local-exit threshold under queue pressure.

    Below ``low_watermark * capacity`` backlog, every request is accepted.
    Above it, arriving requests are *offered* to the local exit: the server
    answers them locally when their local-exit entropy is at most the
    pressure-interpolated threshold returned by :meth:`shed_threshold`
    (the cascade's own local threshold right at the watermark, ramping to
    ``relaxed_threshold`` at a full queue) and re-queues them otherwise.
    Nothing is ever rejected outright: at a full queue the threshold
    reaches ``relaxed_threshold`` — 1.0 by default, where *every* pressured
    arrival gets an immediate (degraded-confidence) local answer.

    Requires a bounded queue; pressure is meaningless without a capacity.
    """

    name = "adaptive-shed"
    pre_queue = True

    def __init__(self, low_watermark: float = 0.5, relaxed_threshold: float = 1.0) -> None:
        if not 0.0 <= low_watermark < 1.0:
            raise ValueError(f"low_watermark must be in [0, 1), got {low_watermark}")
        if not 0.0 <= relaxed_threshold <= 1.0:
            raise ValueError(
                f"relaxed_threshold must be in [0, 1], got {relaxed_threshold}"
            )
        self.low_watermark = float(low_watermark)
        self.relaxed_threshold = float(relaxed_threshold)

    def _pressure(self, queue: "RequestQueue") -> float:
        if queue.capacity is None:
            raise ValueError("AdaptiveShed requires a bounded queue (set capacity)")
        trigger = self.low_watermark * queue.capacity
        if queue.capacity <= trigger:
            return 1.0
        return min(max((len(queue) - trigger) / (queue.capacity - trigger), 0.0), 1.0)

    def shed_threshold(self, queue: "RequestQueue", base_threshold: float) -> float:
        """Effective local-exit entropy bound for shedding at current pressure."""
        pressure = self._pressure(queue)
        ceiling = max(self.relaxed_threshold, base_threshold)
        return base_threshold + pressure * (ceiling - base_threshold)

    def decide(self, queue: "RequestQueue", client_id: str) -> AdmissionOutcome:
        if self._pressure(queue) > 0.0:
            return AdmissionOutcome.SHED
        return AdmissionOutcome.ACCEPTED

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveShed(low_watermark={self.low_watermark}, "
            f"relaxed_threshold={self.relaxed_threshold})"
        )


#: Policy name -> class, for CLI/config wiring.
ADMISSION_POLICIES = {
    RejectNewest.name: RejectNewest,
    DropOldest.name: DropOldest,
    ShedToLocalExit.name: ShedToLocalExit,
    TokenBucketPolicy.name: TokenBucketPolicy,
    AdaptiveShed.name: AdaptiveShed,
}


def admission_policy(name: str, **kwargs) -> AdmissionPolicy:
    """Instantiate an admission policy by its registry name.

    Keyword arguments are forwarded to the policy constructor (e.g.
    ``admission_policy("token-bucket", rate_rps=50.0, burst=10)``).
    """
    try:
        policy_class = ADMISSION_POLICIES[name]
    except KeyError as error:
        raise ValueError(
            f"unknown admission policy '{name}' (have {sorted(ADMISSION_POLICIES)})"
        ) from error
    return policy_class(**kwargs)
