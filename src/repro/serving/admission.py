"""Admission control for the bounded serving queue (overload protection).

The paper's end devices stream samples upward continuously, so a serving
tier must decide what to do when requests arrive faster than the cascade
can drain them.  An unbounded FIFO queue keeps every request but lets
latency grow without bound; a bounded :class:`~repro.serving.queue.RequestQueue`
instead consults an :class:`AdmissionPolicy` whenever it is full:

* :class:`RejectNewest` — refuse the arriving request (classic tail-drop
  backpressure; the client sees an explicit rejection and may retry);
* :class:`DropOldest` — evict the head-of-line request to make room (the
  freshest data wins, natural for sensor streams where a stale frame is
  worthless by the time it would be served);
* :class:`ShedToLocalExit` — keep the queue intact and answer the arriving
  request immediately from the *local* exit only, mirroring the paper's
  deployment where the local aggregator can always produce a (less
  confident) answer without the upper tiers.

Policies are pure decision functions; the queue interprets the decision and
does all bookkeeping, so policies stay trivially testable.  Aggregate
counts live in :class:`AdmissionStats` (queue-wide) and on each
:class:`~repro.serving.queue.ClientSession` (per client).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .queue import InferenceRequest, RequestQueue

__all__ = [
    "AdmissionOutcome",
    "AdmissionResult",
    "AdmissionStats",
    "AdmissionPolicy",
    "RejectNewest",
    "DropOldest",
    "ShedToLocalExit",
    "QueueFullError",
    "admission_policy",
]


class QueueFullError(RuntimeError):
    """Raised by :meth:`RequestQueue.submit` when admission refuses a request."""


class AdmissionOutcome(str, Enum):
    """What happened to a request offered to the queue."""

    ACCEPTED = "accepted"
    REJECTED = "rejected"
    SHED = "shed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class AdmissionResult:
    """Outcome of offering one request to the queue.

    Attributes
    ----------
    outcome:
        ``ACCEPTED`` (enqueued), ``REJECTED`` (refused, ``request`` is None)
        or ``SHED`` (not enqueued; ``request`` carries the sample so the
        caller can answer it from the local exit).
    request:
        The admitted or shed request, ``None`` on rejection.
    evicted:
        The head-of-line request removed to make room (``DropOldest`` only).
    """

    outcome: AdmissionOutcome
    request: Optional["InferenceRequest"] = None
    evicted: Optional["InferenceRequest"] = None

    @property
    def accepted(self) -> bool:
        return self.outcome is AdmissionOutcome.ACCEPTED


@dataclass
class AdmissionStats:
    """Queue-wide admission counters (exact, never windowed)."""

    accepted: int = 0
    rejected: int = 0
    dropped: int = 0
    shed: int = 0

    @property
    def offered(self) -> int:
        """Every request that knocked: accepted + rejected + shed."""
        return self.accepted + self.rejected + self.shed

    def as_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "dropped": self.dropped,
            "shed": self.shed,
        }


class AdmissionPolicy:
    """Decides what a full queue does with an arriving request.

    ``decide`` is only consulted when the queue is bounded *and* full; an
    unbounded queue accepts everything, preserving the original serving
    behaviour bit for bit.
    """

    name = "accept"

    def decide(self, queue: "RequestQueue", client_id: str) -> AdmissionOutcome:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class RejectNewest(AdmissionPolicy):
    """Tail drop: a full queue refuses the arriving request."""

    name = "reject"

    def decide(self, queue: "RequestQueue", client_id: str) -> AdmissionOutcome:
        return AdmissionOutcome.REJECTED


class DropOldest(AdmissionPolicy):
    """Evict the head-of-line request so the freshest sample is served."""

    name = "drop-oldest"

    def decide(self, queue: "RequestQueue", client_id: str) -> AdmissionOutcome:
        # The queue interprets ACCEPTED-while-full as "evict the head first".
        return AdmissionOutcome.ACCEPTED


class ShedToLocalExit(AdmissionPolicy):
    """Answer the arriving request from the local exit instead of queueing.

    The queue stays intact; the request is stamped and returned with a
    ``SHED`` outcome so the server can produce an immediate, local-exit-only
    response — the degraded-but-bounded-latency mode of the paper's
    deployment.
    """

    name = "shed-local"

    def decide(self, queue: "RequestQueue", client_id: str) -> AdmissionOutcome:
        return AdmissionOutcome.SHED


#: Policy name -> class, for CLI/config wiring.
ADMISSION_POLICIES = {
    RejectNewest.name: RejectNewest,
    DropOldest.name: DropOldest,
    ShedToLocalExit.name: ShedToLocalExit,
}


def admission_policy(name: str) -> AdmissionPolicy:
    """Instantiate an admission policy by its registry name."""
    try:
        return ADMISSION_POLICIES[name]()
    except KeyError as error:
        raise ValueError(
            f"unknown admission policy '{name}' (have {sorted(ADMISSION_POLICIES)})"
        ) from error
