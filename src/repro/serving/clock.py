"""Time sources and the event scheduler shared by serving layers.

:class:`SimulatedClock` is the manually-advanced time source the open-loop
load generator has always used; it now lives here so the distributed serving
fabric can share it.  :class:`EventLoop` adds the missing half of a
discrete-event simulation: a time-ordered queue of callbacks.  Events fired
at the same timestamp run in scheduling order, which makes every simulation
built on the loop fully deterministic — the property all serving studies in
this repo rely on for machine-independent latency tables.

The loop also has a *wall-clock dispatch mode* (:class:`WallClock`, or
``realtime=True``): instead of jumping the clock to the next event's
timestamp, :meth:`EventLoop.run` genuinely waits for it, and callbacks may
be posted from other threads (:meth:`EventLoop.post`) — which is how the
thread-pool worker backend turns completed forwards on real worker threads
back into loop events.  While external work is outstanding
(:meth:`EventLoop.begin_inflight` / :meth:`EventLoop.end_inflight`), an
empty queue blocks instead of terminating, so ``run()`` still means "serve
until everything in flight has completed".  All queue operations are
lock-protected, so scheduling is thread-safe in either mode; in simulated
mode the firing order is unchanged, bit for bit.
"""

from __future__ import annotations

import heapq
import math
import threading
import time
from typing import Callable, List, Optional, Tuple

__all__ = ["SimulatedClock", "WallClock", "EventHandle", "EventLoop"]


class EventHandle:
    """A cancellation token for one scheduled event.

    Cancelling is O(1): the heap entry stays where it is and is skipped
    (discarded) when it reaches the head, so the loop never fires a
    cancelled callback and never *waits* for one either — in realtime mode
    a cancelled head is popped eagerly instead of slept on.  Cancelling an
    already-fired or already-cancelled event is a harmless no-op, which is
    exactly what the offload deadline/delivery race wants.

    ``daemon`` marks events that must not keep the loop alive on their own
    (chaos window boundaries, per-request expiry timers): they fire
    normally while real work is pending, but once only daemon events
    remain — and every registered idle gate agrees there is no outstanding
    work — :meth:`EventLoop.run` returns instead of waiting out the rest
    of the timetable.
    """

    __slots__ = ("cancelled", "daemon")

    def __init__(self, daemon: bool = False) -> None:
        self.cancelled = False
        self.daemon = daemon

    def cancel(self) -> None:
        self.cancelled = True


class SimulatedClock:
    """A manually-advanced time source; never moves backwards."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError(f"cannot advance time by {seconds} (negative)")
        self.now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Move to ``timestamp`` if it is in the future; no-op otherwise."""
        if timestamp > self.now:
            self.now = timestamp


class WallClock:
    """Real elapsed time with the :class:`SimulatedClock` reading interface.

    ``now`` is seconds since construction (monotonic, ``perf_counter``
    based), so timelines start at 0.0 like a fresh simulated clock and the
    same fabric code reads either clock.  Wall time advances on its own:
    :meth:`advance_to` is a no-op — the waiting happens in
    :meth:`EventLoop.run`'s realtime dispatch, which sleeps until the next
    event is due instead of jumping the clock.
    """

    def __init__(self) -> None:
        self._origin = time.perf_counter()

    @property
    def now(self) -> float:
        return time.perf_counter() - self._origin

    def __call__(self) -> float:
        return self.now

    def advance_to(self, timestamp: float) -> None:
        """Wall time cannot be advanced; the event loop waits instead."""


class EventLoop:
    """Event scheduler over a :class:`SimulatedClock` or :class:`WallClock`.

    Callbacks are invoked in ``(time, scheduling order)`` order; a callback
    may schedule further events (including at the current instant, which run
    after every already-scheduled event at that instant).  An event scheduled
    in the past fires "now" — time never rewinds.

    In simulated mode (the default), :meth:`run` jumps the clock from event
    to event, which is fully deterministic.  In realtime mode (a
    :class:`WallClock`, or ``realtime=True``), :meth:`run` waits for each
    event's wall-clock deadline, wakes early when another thread posts new
    work, and keeps serving while registered in-flight operations are
    outstanding.
    """

    def __init__(self, clock=None, realtime: Optional[bool] = None) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self.realtime = (
            isinstance(self.clock, WallClock) if realtime is None else bool(realtime)
        )
        self._heap: List[Tuple[float, int, Callable[[float], None], EventHandle]] = []
        self._sequence = 0
        self._mutex = threading.Lock()
        self._wakeup = threading.Condition(self._mutex)
        self._inflight = 0
        self._non_daemon = 0
        self._idle_gates: List[Callable[[], bool]] = []

    def __len__(self) -> int:
        with self._mutex:
            return len(self._heap)

    def add_idle_gate(self, gate: Callable[[], bool]) -> None:
        """Register a predicate consulted before idling out daemon events.

        When only daemon events remain queued, :meth:`run` returns early —
        *unless* some gate returns ``False``, signalling outstanding work
        the daemon events are still needed for (e.g. a fabric whose tier
        queue holds requests waiting for a chaos window's worker-restart
        event).  Gates must be cheap and must not touch the loop.
        """
        self._idle_gates.append(gate)

    def schedule(
        self,
        when: float,
        callback: Callable[[float], None],
        daemon: bool = False,
    ) -> EventHandle:
        """Enqueue ``callback(fire_time)`` to run at time ``when`` (thread-safe).

        Returns an :class:`EventHandle` whose :meth:`~EventHandle.cancel`
        prevents the callback from firing (no-op if it already fired).
        ``daemon=True`` events never keep the loop alive on their own (see
        :class:`EventHandle`).
        """
        if math.isnan(when):
            raise ValueError("cannot schedule an event at NaN time")
        handle = EventHandle(daemon=daemon)
        with self._wakeup:
            heapq.heappush(
                self._heap, (max(when, self.clock.now), self._sequence, callback, handle)
            )
            self._sequence += 1
            if not daemon:
                self._non_daemon += 1
            self._wakeup.notify_all()
        return handle

    def schedule_after(self, delay: float, callback: Callable[[float], None]) -> EventHandle:
        """Enqueue a callback ``delay`` seconds from the current instant."""
        if delay < 0.0:
            raise ValueError(f"event delay must be >= 0, got {delay}")
        return self.schedule(self.clock.now + delay, callback)

    def post(self, callback: Callable[[float], None]) -> EventHandle:
        """Enqueue a callback at the current instant, waking a waiting run().

        This is the cross-thread entry point: worker threads hand their
        completions back to the loop with it, and the loop thread runs them.
        """
        return self.schedule(self.clock.now, callback)

    # -- in-flight external work (thread-pool completions) -------------- #
    def begin_inflight(self) -> None:
        """Register one outstanding external operation; run() won't exit
        on an empty queue until it is resolved with :meth:`end_inflight`."""
        with self._wakeup:
            self._inflight += 1

    def end_inflight(self) -> None:
        """Resolve one outstanding external operation."""
        with self._wakeup:
            if self._inflight <= 0:
                raise RuntimeError("end_inflight() without matching begin_inflight()")
            self._inflight -= 1
            self._wakeup.notify_all()

    # ------------------------------------------------------------------ #
    def _pop(self):
        entry = heapq.heappop(self._heap)
        if not entry[3].daemon:
            self._non_daemon -= 1
        return entry

    def _daemon_only_idle(self) -> bool:
        """Only daemon events left, nothing in flight, every gate open."""
        return (
            self._non_daemon == 0
            and self._inflight == 0
            and all(gate() for gate in self._idle_gates)
        )

    def _next_event(self):
        """Pop the next due event, waiting in realtime mode; None when idle."""
        with self._wakeup:
            while True:
                # Cancelled events are discarded at the head so the loop
                # neither fires nor (in realtime mode) waits for them.
                while self._heap and self._heap[0][3].cancelled:
                    self._pop()
                if self._heap:
                    if self._daemon_only_idle():
                        # A timetable of daemon events (chaos boundaries,
                        # expiry timers) with no work left to govern: done.
                        return None
                    if not self.realtime:
                        return self._pop()
                    delay = self._heap[0][0] - self.clock.now
                    if delay <= 0.0:
                        return self._pop()
                    # Wait for the deadline; an earlier post() re-examines.
                    self._wakeup.wait(timeout=delay)
                elif self._inflight > 0:
                    # Nothing queued, but worker threads owe completions.
                    # The timeout is belt-and-braces against a lost notify.
                    self._wakeup.wait(timeout=0.1)
                else:
                    return None

    def run(self, max_events: int | None = None) -> int:
        """Fire events until the queue is empty and nothing is in flight.

        ``max_events`` is a safety valve for tests; exceeding it raises
        :class:`RuntimeError` instead of looping forever.
        """
        fired = 0
        while True:
            entry = self._next_event()
            if entry is None:
                return fired
            if max_events is not None and fired >= max_events:
                raise RuntimeError(f"event loop exceeded {max_events} events")
            when, _, callback, handle = entry
            if handle.cancelled:  # cancelled between pop and fire
                continue
            self.clock.advance_to(when)
            callback(self.clock.now)
            fired += 1
