"""Simulated time and the discrete-event scheduler shared by serving layers.

:class:`SimulatedClock` is the manually-advanced time source the open-loop
load generator has always used; it now lives here so the distributed serving
fabric can share it.  :class:`EventLoop` adds the missing half of a
discrete-event simulation: a time-ordered queue of callbacks.  Events fired
at the same timestamp run in scheduling order, which makes every simulation
built on the loop fully deterministic — the property all serving studies in
this repo rely on for machine-independent latency tables.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Tuple

__all__ = ["SimulatedClock", "EventLoop"]


class SimulatedClock:
    """A manually-advanced time source; never moves backwards."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        if seconds < 0.0:
            raise ValueError(f"cannot advance time by {seconds} (negative)")
        self.now += seconds

    def advance_to(self, timestamp: float) -> None:
        """Move to ``timestamp`` if it is in the future; no-op otherwise."""
        if timestamp > self.now:
            self.now = timestamp


class EventLoop:
    """Deterministic discrete-event scheduler over a :class:`SimulatedClock`.

    Callbacks are invoked in ``(time, scheduling order)`` order; a callback
    may schedule further events (including at the current instant, which run
    after every already-scheduled event at that instant).  An event scheduled
    in the past fires "now" — time never rewinds.
    """

    def __init__(self, clock: SimulatedClock | None = None) -> None:
        self.clock = clock if clock is not None else SimulatedClock()
        self._heap: List[Tuple[float, int, Callable[[float], None]]] = []
        self._sequence = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, when: float, callback: Callable[[float], None]) -> None:
        """Enqueue ``callback(fire_time)`` to run at simulated time ``when``."""
        if math.isnan(when):
            raise ValueError("cannot schedule an event at NaN time")
        heapq.heappush(self._heap, (max(when, self.clock.now), self._sequence, callback))
        self._sequence += 1

    def schedule_after(self, delay: float, callback: Callable[[float], None]) -> None:
        """Enqueue a callback ``delay`` seconds from the current instant."""
        if delay < 0.0:
            raise ValueError(f"event delay must be >= 0, got {delay}")
        self.schedule(self.clock.now + delay, callback)

    def run(self, max_events: int | None = None) -> int:
        """Fire events until the queue is empty; returns how many ran.

        ``max_events`` is a safety valve for tests; exceeding it raises
        :class:`RuntimeError` instead of looping forever.
        """
        fired = 0
        while self._heap:
            if max_events is not None and fired >= max_events:
                raise RuntimeError(f"event loop exceeded {max_events} events")
            when, _, callback = heapq.heappop(self._heap)
            self.clock.advance_to(when)
            callback(self.clock.now)
            fired += 1
        return fired
