"""``repro.serving`` — online inference over the DDNN exit cascade.

The paper frames DDNN as a serving system: end devices stream samples
upward, most requests exit at the local aggregator, and the cloud only sees
the hard tail.  This package provides the online counterpart of the offline
:class:`~repro.core.inference.StagedInferenceEngine`:

* :class:`RequestQueue` / :class:`ClientSession` — FIFO request intake with
  per-client bookkeeping;
* :class:`BatchingPolicy` / :class:`MicroBatcher` — dynamic micro-batching
  with ``max_batch_size`` and ``max_wait_s`` knobs;
* :class:`DDNNServer` — a synchronous-loop server draining the queue
  through the shared :class:`~repro.core.cascade.ExitCascade`, routing
  responses per exit;
* :class:`ServerStats` — rolling throughput / latency / exit-rate
  telemetry.

All timing flows through an injectable clock, so scheduling behaviour is
deterministic under test while real deployments use wall time.
"""

from .batcher import BatchingPolicy, MicroBatcher
from .queue import ClientSession, InferenceRequest, InferenceResponse, RequestQueue
from .server import DDNNServer
from .stats import ServerStats, StatsSnapshot

__all__ = [
    "InferenceRequest",
    "InferenceResponse",
    "ClientSession",
    "RequestQueue",
    "BatchingPolicy",
    "MicroBatcher",
    "DDNNServer",
    "ServerStats",
    "StatsSnapshot",
]
