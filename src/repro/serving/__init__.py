"""``repro.serving`` — online inference over the DDNN exit cascade.

The paper frames DDNN as a serving system: end devices stream samples
upward, most requests exit at the local aggregator, and the cloud only sees
the hard tail.  This package provides the online counterpart of the offline
:class:`~repro.core.inference.StagedInferenceEngine`:

* :class:`RequestQueue` / :class:`ClientSession` — request intake with
  per-client bookkeeping, optional capacity bound and QoS weights;
* :class:`AdmissionPolicy` (:class:`RejectNewest`, :class:`DropOldest`,
  :class:`ShedToLocalExit`) — what a full queue does under overload;
* :class:`BatchingPolicy` / :class:`MicroBatcher` — dynamic micro-batching
  with ``max_batch_size`` and ``max_wait_s`` knobs, QoS-weighted draining;
* :class:`DDNNServer` — a synchronous-loop server draining the queue
  through the shared :class:`~repro.core.cascade.ExitCascade`, routing
  responses per exit, with an immediate local-exit path for shed requests;
* :class:`ServerStats` — rolling throughput / latency / exit-rate
  telemetry with pinned window semantics;
* :class:`LoadGenerator` + arrival processes (:class:`PoissonProcess`,
  :class:`BurstyProcess`, :class:`DiurnalProcess`, :class:`TraceReplay`)
  and :class:`ServiceModel` — deterministic open-loop overload studies on
  a :class:`SimulatedClock`;
* :class:`DistributedServingFabric` — the tier-aware distributed runtime:
  an :class:`EventLoop`-driven fabric of :class:`TierServer`s (N workers
  per tier, per-worker compiled plans) where offloads cross
  :class:`~repro.hierarchy.network.NetworkFabric` links with simulated
  transfer delay, with optional :class:`AdaptiveThreshold` shedding.
  :class:`DDNNServer` is its single-tier degenerate case, and
  :class:`~repro.hierarchy.runtime.HierarchyRuntime` its offline replay.
* :class:`WorkerPool` backends (:class:`SimulatedWorkerPool`,
  :class:`ThreadPoolWorkerPool`) — how fabric/server workers occupy time:
  deterministic simulated slots (the paper-table default) or real
  :class:`~concurrent.futures.ThreadPoolExecutor` threads running
  per-worker compiled plan bundles against a :class:`WallClock`, turning
  the same serving script into a wall-clock-concurrent server.
* The elastic tier plane: fabrics built from a mutable
  :class:`~repro.hierarchy.plan.PartitionPlan`
  (:meth:`DistributedServingFabric.from_plan`), re-partitioned live via
  :meth:`~DistributedServingFabric.apply_plan` (drain-and-handoff,
  :class:`RepartitionReport`), scaled by an :class:`Autoscaler` driven by
  :class:`~repro.hierarchy.plan.AutoscalePolicy` watermarks, and
  replicated behind a :class:`LoadBalancer`.
* The runtime fault plane: a :class:`~repro.hierarchy.faults.ChaosSchedule`
  injects timed link outages/flaps, message loss and worker crash windows;
  offloads under a :class:`RetryPolicy` carry deadlines, retry with
  exponential backoff + jitter, and fail over to the deepest local exit
  already cleared (honest ``degraded``/``retries`` metadata), with a
  per-link :class:`CircuitBreaker` fast-failing known-dark links and tier
  health feeding the :class:`LoadBalancer`.
* The end-to-end SLO plane: a :class:`Deadline` budget travels with every
  request across tiers — expired requests are retired from queues before
  burning compute, retry ladders are clipped to the remaining budget, and
  a :class:`HedgePolicy` speculatively re-sends slow offloads to sibling
  replica stacks (first arrival wins, losers cancelled, hedge bytes
  honestly accounted).

All timing flows through an injectable clock, so scheduling behaviour is
deterministic under test while real deployments use wall time.
"""

from .admission import (
    ADMISSION_POLICIES,
    AdaptiveShed,
    AdmissionOutcome,
    AdmissionPolicy,
    AdmissionResult,
    AdmissionStats,
    DropOldest,
    QueueFullError,
    RejectNewest,
    ShedToLocalExit,
    TokenBucketPolicy,
    admission_policy,
)
from .autoscale import Autoscaler, RateTracker
from .balancer import BALANCER_STRATEGIES, LoadBalancer
from .batcher import BatchingPolicy, MicroBatcher
from .clock import EventHandle, EventLoop, SimulatedClock, WallClock
from .fabric import (
    AdaptiveThreshold,
    DistributedServingFabric,
    FabricReport,
    FabricRequest,
    FabricResponse,
    RepartitionReport,
    TierServer,
)
from .loadgen import (
    ArrivalProcess,
    BurstyProcess,
    DiurnalProcess,
    LoadGenerator,
    LoadReport,
    PoissonProcess,
    ServiceModel,
    TraceReplay,
)
from .queue import ClientSession, InferenceRequest, InferenceResponse, RequestQueue
from .resilience import (
    BreakerState,
    CircuitBreaker,
    Deadline,
    HedgePolicy,
    ResilienceStats,
    RetryPolicy,
)
from .server import DDNNServer
from .stats import ServerStats, StatsSnapshot
from .workers import (
    WORKER_POOL_BACKENDS,
    SimulatedWorkerPool,
    ThreadPoolWorkerPool,
    WorkerHandle,
    WorkerPool,
    make_worker_pool,
)

__all__ = [
    "InferenceRequest",
    "InferenceResponse",
    "ClientSession",
    "RequestQueue",
    "AdmissionOutcome",
    "AdmissionResult",
    "AdmissionStats",
    "AdmissionPolicy",
    "RejectNewest",
    "DropOldest",
    "ShedToLocalExit",
    "TokenBucketPolicy",
    "AdaptiveShed",
    "QueueFullError",
    "ADMISSION_POLICIES",
    "admission_policy",
    "BatchingPolicy",
    "MicroBatcher",
    "DDNNServer",
    "ServerStats",
    "StatsSnapshot",
    "SimulatedClock",
    "WallClock",
    "EventLoop",
    "EventHandle",
    "RetryPolicy",
    "BreakerState",
    "CircuitBreaker",
    "Deadline",
    "HedgePolicy",
    "ResilienceStats",
    "WorkerPool",
    "WorkerHandle",
    "SimulatedWorkerPool",
    "ThreadPoolWorkerPool",
    "WORKER_POOL_BACKENDS",
    "make_worker_pool",
    "AdaptiveThreshold",
    "DistributedServingFabric",
    "FabricRequest",
    "FabricResponse",
    "FabricReport",
    "RepartitionReport",
    "TierServer",
    "Autoscaler",
    "RateTracker",
    "LoadBalancer",
    "BALANCER_STRATEGIES",
    "ArrivalProcess",
    "PoissonProcess",
    "BurstyProcess",
    "DiurnalProcess",
    "TraceReplay",
    "ServiceModel",
    "LoadGenerator",
    "LoadReport",
]
