"""Online DDNN inference server over the shared exit cascade.

:class:`DDNNServer` is a synchronous-loop server: clients ``submit()``
multi-view samples into the request queue, and each ``step()`` drains one
micro-batch through the :class:`~repro.core.cascade.ExitCascade`, producing
one :class:`~repro.serving.queue.InferenceResponse` per request.  Responses
are routed per exit (local / edge / cloud outboxes) — mirroring the paper's
deployment, where locally-exited answers never leave the local aggregator
while cloud-exited ones return from the upper tier — and delivered to the
issuing client's session.

Because the server runs the exact same cascade as
:class:`~repro.core.inference.StagedInferenceEngine`, online serving is
numerically identical to offline batch inference (covered by tests).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..core.cascade import ExitCascade, Thresholds
from ..core.ddnn import DDNN
from ..datasets.mvmc import MVMCDataset
from .batcher import BatchingPolicy, MicroBatcher
from .queue import InferenceRequest, InferenceResponse, RequestQueue
from .stats import ServerStats, StatsSnapshot

__all__ = ["DDNNServer"]


class DDNNServer:
    """Serves staged-exit inference requests with dynamic micro-batching.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.ddnn.DDNN`.
    thresholds:
        Entropy thresholds for the exit cascade (same rules as
        :class:`~repro.core.inference.StagedInferenceEngine`).
    policy:
        Micro-batching knobs; defaults to ``BatchingPolicy()``.  Use
        :meth:`BatchingPolicy.sequential` for the batch-size-1 baseline.
    clock:
        Time source for enqueue/completion stamps; injectable for
        deterministic tests.
    """

    def __init__(
        self,
        model: DDNN,
        thresholds: Thresholds,
        policy: Optional[BatchingPolicy] = None,
        clock: Callable[[], float] = time.perf_counter,
        stats_window: int = 1024,
    ) -> None:
        self.model = model
        self.cascade = ExitCascade.for_model(model, thresholds)
        self.clock = clock
        self.policy = policy if policy is not None else BatchingPolicy()
        self.queue = RequestQueue(clock=clock)
        self.batcher = MicroBatcher(self.queue, self.policy, clock)
        self.stats = ServerStats(window=stats_window)
        self._exit_outboxes: Dict[str, List[InferenceResponse]] = {
            name: [] for name in self.cascade.exit_names
        }

    # ------------------------------------------------------------------ #
    @property
    def exit_names(self) -> List[str]:
        return list(self.cascade.exit_names)

    def responses_for_exit(self, exit_name: str) -> List[InferenceResponse]:
        """All responses the named exit classified, in completion order."""
        if exit_name not in self._exit_outboxes:
            raise KeyError(f"no exit named '{exit_name}' (have {self.exit_names})")
        return list(self._exit_outboxes[exit_name])

    def snapshot(self) -> StatsSnapshot:
        """Current rolling telemetry reading."""
        return self.stats.snapshot()

    # ------------------------------------------------------------------ #
    def submit(
        self,
        views: np.ndarray,
        client_id: str = "default",
        target: Optional[int] = None,
    ) -> int:
        """Enqueue one multi-view sample; returns its request id."""
        return self.queue.submit(views, client_id=client_id, target=target).request_id

    def step(self, force: bool = False) -> List[InferenceResponse]:
        """Process at most one micro-batch; returns its responses.

        Returns ``[]`` when the batcher decides no batch is due yet (see
        :class:`~repro.serving.batcher.BatchingPolicy`); ``force=True``
        overrides the policy triggers and drains whatever is queued.
        """
        batch = self.batcher.next_batch(force=force)
        if not batch:
            return []
        return self._process(batch)

    def run_until_drained(self) -> List[InferenceResponse]:
        """Serve micro-batches until the queue is empty."""
        responses: List[InferenceResponse] = []
        while len(self.queue) > 0:
            responses.extend(self.step(force=True))
        return responses

    def serve_dataset(
        self, dataset: MVMCDataset, client_id: str = "default"
    ) -> List[InferenceResponse]:
        """Submit every dataset sample, drain the queue, return responses.

        Responses are returned in submission (dataset) order regardless of
        batch composition, so the result lines up with ``dataset.labels``.
        """
        for index in range(len(dataset)):
            self.submit(
                dataset.images[index],
                client_id=client_id,
                target=int(dataset.labels[index]),
            )
        responses = self.run_until_drained()
        return sorted(responses, key=lambda response: response.request_id)

    # ------------------------------------------------------------------ #
    def _process(self, batch: List[InferenceRequest]) -> List[InferenceResponse]:
        views = np.stack([request.views for request in batch])
        routed = self.cascade.run_model(self.model, views, batch_size=len(batch))
        completion_time = self.clock()
        responses: List[InferenceResponse] = []
        for row, request in enumerate(batch):
            exit_index = int(routed.exit_indices[row])
            response = InferenceResponse(
                request_id=request.request_id,
                client_id=request.client_id,
                prediction=int(routed.predictions[row]),
                exit_index=exit_index,
                exit_name=self.cascade.exit_names[exit_index],
                entropy=float(routed.entropies[row]),
                target=request.target,
                enqueue_time=request.enqueue_time,
                completion_time=completion_time,
                batch_size=len(batch),
            )
            self._exit_outboxes[response.exit_name].append(response)
            self.queue.session(request.client_id).deliver(response)
            responses.append(response)
        self.stats.observe_batch(responses)
        return responses
