"""Online DDNN inference server over the shared exit cascade.

:class:`DDNNServer` is a synchronous-loop server: clients ``submit()`` (or
``offer()``) multi-view samples into the request queue, and each ``step()``
drains one micro-batch through the :class:`~repro.core.cascade.ExitCascade`,
producing one :class:`~repro.serving.queue.InferenceResponse` per request.
Responses are routed per exit (local / edge / cloud outboxes) — mirroring
the paper's deployment, where locally-exited answers never leave the local
aggregator while cloud-exited ones return from the upper tier — and
delivered to the issuing client's session.

Overload safety is opt-in: a bounded ``capacity`` plus an
:class:`~repro.serving.admission.AdmissionPolicy` keeps the backlog (and
therefore tail latency) finite under sustained overload, and per-client QoS
weights bias micro-batch slots toward high-priority clients.  With the
defaults (unbounded queue, no weights) the server runs the exact same
cascade as :class:`~repro.core.inference.StagedInferenceEngine`, so online
serving is numerically identical to offline batch inference (covered by
tests).

This server is the *single-tier degenerate case* of the distributed
:class:`~repro.serving.fabric.DistributedServingFabric`: one tier, one
worker, the whole cascade evaluated in place, no inter-tier links.  Use the
fabric when the device/edge/cloud split, link delays, or multiple workers
matter; both produce byte-identical exit decisions (covered by tests).
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from typing import Callable, Deque, Dict, List, Mapping, Optional

import numpy as np

from ..core.cascade import ExitCascade, Thresholds
from ..core.ddnn import DDNN
from ..datasets.mvmc import MVMCDataset
from ..nn.tensor import no_grad
from .admission import AdmissionOutcome, AdmissionPolicy, AdmissionResult, QueueFullError
from .batcher import BatchingPolicy, MicroBatcher
from .queue import InferenceRequest, InferenceResponse, RequestQueue
from .stats import ServerStats, StatsSnapshot
from .workers import WORKER_POOL_BACKENDS

__all__ = ["DDNNServer"]


class DDNNServer:
    """Serves staged-exit inference requests with dynamic micro-batching.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.ddnn.DDNN`.
    thresholds:
        Entropy thresholds for the exit cascade (same rules as
        :class:`~repro.core.inference.StagedInferenceEngine`).
    policy:
        Micro-batching knobs; defaults to ``BatchingPolicy()``.  Use
        :meth:`BatchingPolicy.sequential` for the batch-size-1 baseline.
    clock:
        Time source for enqueue/completion stamps; injectable for
        deterministic tests.
    stats_window:
        Rolling-telemetry window (most recent completed requests).
    capacity:
        Request-queue bound; ``None`` (default) is unbounded and never
        rejects — today's behaviour, bit for bit.
    admission:
        Full-queue policy (reject / drop-oldest / shed-to-local-exit);
        only consulted when ``capacity`` is set.
    client_weights:
        Optional ``{client_id: weight}`` QoS map; configuring any weight
        switches batch draining to weighted round-robin.
    retention:
        Bound on per-session response history and per-exit outboxes;
        defaults to ``stats_window`` so a long-lived server's memory stays
        bounded without configuration.  Counters remain exact.
    compile:
        If ``True``, every forward (micro-batches *and* the shed-to-local
        fast path) runs through the :mod:`repro.compile` fused inference
        plan — same predictions and exit routing as the eager stack,
        substantially higher throughput at serving batch sizes.
    workers:
        Number of concurrent micro-batch workers.  Only meaningful with
        ``backend="thread"``; the default synchronous loop is exactly one
        worker and rejects anything else.
    backend:
        ``"simulated"`` (default) keeps the classic synchronous loop —
        every micro-batch is computed inline on the calling thread, in
        deterministic order.  ``"thread"`` routes drained micro-batches on
        a :class:`~concurrent.futures.ThreadPoolExecutor` with one private
        :class:`~repro.compile.CompiledDDNN` plan bundle per worker
        (requires ``compile=True``: eager forwards toggle the process-wide
        ``no_grad`` switch and are not thread-safe).  Exit decisions are
        byte-identical either way; only completion order/timing differs.
    precision:
        Compute mode for the compiled path — ``"float64"`` (exact,
        default), ``"float32"`` (tolerance mode) or ``"bitpacked"``.
        Requires ``compile=True`` for the non-default modes: the eager
        stack has no reduced-precision path, so a server that silently
        ignored the knob would misreport what it serves.
    """

    def __init__(
        self,
        model: DDNN,
        thresholds: Thresholds,
        policy: Optional[BatchingPolicy] = None,
        clock: Callable[[], float] = time.perf_counter,
        stats_window: int = 1024,
        capacity: Optional[int] = None,
        admission: Optional[AdmissionPolicy] = None,
        client_weights: Optional[Mapping[str, float]] = None,
        retention: Optional[int] = None,
        compile: bool = False,
        workers: int = 1,
        backend: str = "simulated",
        precision: str = "float64",
    ) -> None:
        if backend not in WORKER_POOL_BACKENDS:
            raise ValueError(
                f"unknown backend '{backend}' (choose from {WORKER_POOL_BACKENDS})"
            )
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if backend == "simulated" and workers != 1:
            raise ValueError(
                "backend='simulated' is the synchronous single-worker loop; "
                "use backend='thread' (with compile=True) for workers > 1, "
                "or the DistributedServingFabric for multi-worker simulation"
            )
        if backend == "thread" and not compile:
            raise ValueError(
                "backend='thread' requires compile=True: eager forwards "
                "toggle the process-wide no_grad switch and are not "
                "thread-safe; compiled plan bundles are"
            )
        if precision != "float64" and not compile:
            raise ValueError(
                f"precision='{precision}' requires compile=True: the eager "
                "stack always computes in float64"
            )
        self.model = model
        self.cascade = ExitCascade.for_model(
            model, thresholds, compile=compile, precision=precision
        )
        self.precision = precision
        self.workers = workers
        self.backend = backend
        self._executor: Optional[ThreadPoolExecutor] = None
        self._worker_plans: List[object] = []
        if backend == "thread":
            from ..compile import compile_ddnn

            # One private plan bundle per worker thread: disjoint buffer
            # arenas, so concurrent forwards never share mutable state.
            self._worker_plans = [
                compile_ddnn(model, precision=precision) for _ in range(workers)
            ]
            self._executor = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-server"
            )
        self.clock = clock
        self.policy = policy if policy is not None else BatchingPolicy()
        self.retention = stats_window if retention is None else retention
        self.queue = RequestQueue(
            clock=clock,
            capacity=capacity,
            admission=admission,
            retention=self.retention,
        )
        for client_id, weight in dict(client_weights or {}).items():
            self.queue.set_weight(client_id, weight)
        self.batcher = MicroBatcher(self.queue, self.policy, clock)
        self.stats = ServerStats(window=stats_window)
        self._exit_outboxes: Dict[str, Deque[InferenceResponse]] = {
            name: deque(maxlen=self.retention) for name in self.cascade.exit_names
        }

    # ------------------------------------------------------------------ #
    @property
    def exit_names(self) -> List[str]:
        return list(self.cascade.exit_names)

    def responses_for_exit(self, exit_name: str) -> List[InferenceResponse]:
        """Recent responses the named exit classified, in completion order.

        Bounded by ``retention``; lifetime per-exit totals are in the
        rolling stats' exit fractions and the session counters.
        """
        if exit_name not in self._exit_outboxes:
            raise KeyError(f"no exit named '{exit_name}' (have {self.exit_names})")
        return list(self._exit_outboxes[exit_name])

    def snapshot(self) -> StatsSnapshot:
        """Current rolling telemetry reading."""
        return self.stats.snapshot()

    def set_client_weight(self, client_id: str, weight: float) -> None:
        """Assign a QoS weight (relative micro-batch share) to a client."""
        self.queue.set_weight(client_id, weight)

    # ------------------------------------------------------------------ #
    def submit(
        self,
        views: np.ndarray,
        client_id: str = "default",
        target: Optional[int] = None,
    ) -> int:
        """Enqueue one multi-view sample; returns its request id.

        Under a shed-to-local-exit policy a sample that cannot be queued is
        still *answered* — immediately, from the local exit — and its id is
        returned like any other (the response is already in the client's
        session).  Only an outright rejection raises
        :class:`~repro.serving.admission.QueueFullError`; overload-aware
        callers use :meth:`offer` to branch on the outcome instead.
        """
        result = self.offer(views, client_id=client_id, target=target)
        if result.request is None:
            raise QueueFullError(
                f"queue full (capacity={self.queue.capacity}): request rejected "
                "— use offer() to handle overload outcomes"
            )
        return result.request.request_id

    def offer(
        self,
        views: np.ndarray,
        client_id: str = "default",
        target: Optional[int] = None,
    ) -> AdmissionResult:
        """Offer one sample, honouring admission control.

        On a ``SHED`` outcome the request is answered *immediately* from
        the cascade's first (local) exit — bounded latency, degraded
        confidence — and the response is delivered to the client session
        and local outbox before this method returns.

        An adaptive policy (one exposing ``shed_threshold``, e.g.
        :class:`~repro.serving.admission.AdaptiveShed`) sheds
        *conditionally*: the local answer is delivered only when its entropy
        clears the pressure-raised threshold, and the request is queued
        normally otherwise — the result then reports ``ACCEPTED`` (with any
        head-of-line eviction a full queue forced in ``evicted``).
        """
        result = self.queue.offer(views, client_id=client_id, target=target)
        if result.outcome is AdmissionOutcome.SHED and result.request is not None:
            shed_threshold = getattr(self.queue.admission, "shed_threshold", None)
            if shed_threshold is not None:
                bound = shed_threshold(self.queue, self.cascade.thresholds[0])
                if self._shed_to_local(result.request, max_entropy=bound) is None:
                    evicted = self.queue.requeue(result.request)
                    return AdmissionResult(
                        AdmissionOutcome.ACCEPTED, request=result.request, evicted=evicted
                    )
            else:
                self._shed_to_local(result.request)
        return result

    def _shed_to_local(
        self, request: InferenceRequest, max_entropy: Optional[float] = None
    ) -> Optional[InferenceResponse]:
        """Answer a shed request from the local exit, bypassing the queue.

        With ``max_entropy`` set (adaptive shedding), the local answer is
        delivered only when its normalized entropy is at most the bound;
        otherwise nothing is delivered and ``None`` is returned so the
        caller can queue the request instead.
        """
        self.model.eval()
        if self.cascade.compile_enabled:
            output = self.cascade.compiled_for(self.model)(request.views[None])
        else:
            with no_grad():
                output = self.model(request.views[None])
        decision = self.cascade.criteria[0].evaluate(output.exit_logits[0])
        if max_entropy is not None and float(decision.entropies[0]) > max_entropy:
            return None
        response = InferenceResponse(
            request_id=request.request_id,
            client_id=request.client_id,
            prediction=int(decision.predictions[0]),
            exit_index=0,
            exit_name=self.cascade.exit_names[0],
            entropy=float(decision.entropies[0]),
            target=request.target,
            enqueue_time=request.enqueue_time,
            completion_time=self.clock(),
            batch_size=1,
            shed=True,
        )
        self._exit_outboxes[response.exit_name].append(response)
        self.queue.session(request.client_id).deliver(response)
        return response

    def step(self, force: bool = False) -> List[InferenceResponse]:
        """Process at most one micro-batch; returns its responses.

        Returns ``[]`` when the batcher decides no batch is due yet (see
        :class:`~repro.serving.batcher.BatchingPolicy`); ``force=True``
        overrides the policy triggers and drains whatever is queued.
        """
        batch = self.batcher.next_batch(force=force)
        if not batch:
            return []
        return self.process_batch(batch)

    def run_until_drained(self) -> List[InferenceResponse]:
        """Serve micro-batches until the queue is empty.

        On the thread backend, drained micro-batches are routed
        concurrently — up to ``workers`` at a time, each on its own plan
        bundle — and delivered (sessions, outboxes, stats) on the calling
        thread as they finish.  Responses are therefore in completion
        order, which may differ from submission order; exit decisions are
        unaffected.
        """
        if self._executor is None:
            responses: List[InferenceResponse] = []
            while len(self.queue) > 0:
                responses.extend(self.step(force=True))
            return responses
        return self._drain_parallel()

    def _drain_parallel(self) -> List[InferenceResponse]:
        responses: List[InferenceResponse] = []
        idle_plans = list(self._worker_plans)
        pending: Dict[object, tuple] = {}
        while len(self.queue) > 0 or pending:
            while idle_plans and len(self.queue) > 0:
                batch = self.batcher.next_batch(force=True)
                if not batch:
                    break
                plan = idle_plans.pop()
                views = np.stack([request.views for request in batch])
                future = self._executor.submit(self._route_compiled, plan, views)
                pending[future] = (batch, plan)
            if not pending:
                break
            done, _ = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                batch, plan = pending.pop(future)
                idle_plans.append(plan)
                responses.extend(self._deliver(batch, future.result()))
        return responses

    def serve_dataset(
        self, dataset: MVMCDataset, client_id: str = "default"
    ) -> List[InferenceResponse]:
        """Submit every dataset sample, drain the queue, return responses.

        Only responses to *this call's* submissions are returned, in
        submission (dataset) order regardless of batch composition or any
        pre-existing backlog from other clients, so the result lines up
        with ``dataset.labels``.  Backlogged requests drained along the way
        are still delivered to their own sessions and outboxes.

        On a bounded queue, micro-batches are drained whenever the next
        submission would hit the capacity limit, so admission control never
        rejects, evicts or sheds a dataset sample — every sample gets a
        full cascade answer.  The unbounded default submits everything
        first and drains once, exactly as before.
        """
        submitted_ids = set()
        responses: List[InferenceResponse] = []
        for index in range(len(dataset)):
            while (
                self.queue.capacity is not None
                and len(self.queue) >= self.queue.capacity
            ):
                responses.extend(self.step(force=True))
            submitted_ids.add(
                self.submit(
                    dataset.images[index],
                    client_id=client_id,
                    target=int(dataset.labels[index]),
                )
            )
        responses.extend(self.run_until_drained())
        responses = [
            response for response in responses if response.request_id in submitted_ids
        ]
        return sorted(responses, key=lambda response: response.request_id)

    # ------------------------------------------------------------------ #
    def process_batch(self, batch: List[InferenceRequest]) -> List[InferenceResponse]:
        """Run one already-popped micro-batch through the cascade.

        Public so external schedulers (e.g. the open-loop load generator)
        can control *when* a batch runs while reusing the exact serving
        path: completion stamps, per-exit routing, session delivery and
        rolling stats.  A single batch always runs on the calling thread
        (on worker bundle 0 under the thread backend); concurrency lives in
        :meth:`run_until_drained`.
        """
        views = np.stack([request.views for request in batch])
        if self._worker_plans:
            routed = self._route_compiled(self._worker_plans[0], views)
        else:
            routed = self.cascade.run_model(self.model, views, batch_size=len(batch))
        return self._deliver(batch, routed)

    def _route_compiled(self, plan, views: np.ndarray):
        """Route one stacked batch through a private compiled plan bundle.

        Thread-safe by construction: the plan's buffer arena belongs to one
        worker, the forward touches no Tensor/autograd state (so no
        ``no_grad`` toggling), and the returned
        :class:`~repro.core.cascade.CascadeRouter` exposes the same
        ``predictions`` / ``exit_indices`` / ``entropies`` arrays
        :meth:`_deliver` reads from an eager ``CascadeResult``.
        """
        output = plan(views)
        router = self.cascade.router(len(views))
        for logits in output.exit_logits:
            router.offer(logits)
        return router

    def _deliver(self, batch: List[InferenceRequest], routed) -> List[InferenceResponse]:
        """Stamp, route per exit, deliver to sessions, record stats.

        Always runs on the calling thread — sessions, outboxes and the
        rolling stats window are plain deques, so delivery is the
        single-threaded half of the serving path in every backend.
        """
        completion_time = self.clock()
        responses: List[InferenceResponse] = []
        for row, request in enumerate(batch):
            exit_index = int(routed.exit_indices[row])
            response = InferenceResponse(
                request_id=request.request_id,
                client_id=request.client_id,
                prediction=int(routed.predictions[row]),
                exit_index=exit_index,
                exit_name=self.cascade.exit_names[exit_index],
                entropy=float(routed.entropies[row]),
                target=request.target,
                enqueue_time=request.enqueue_time,
                completion_time=completion_time,
                batch_size=len(batch),
            )
            self._exit_outboxes[response.exit_name].append(response)
            self.queue.session(request.client_id).deliver(response)
            responses.append(response)
        self.stats.observe_batch(responses)
        return responses

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Shut down the worker executor (thread backend); idempotent."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "DDNNServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
