"""Tier-aware distributed serving fabric (discrete-event, multi-worker).

This is the online counterpart of the paper's *distributed* deployment: a
request enters at the device tier, most requests exit at the local
aggregator, and only the unconfident tail is offloaded — as real messages
over :class:`~repro.hierarchy.network.NetworkFabric` links whose bandwidth
and propagation latency now *cost simulated time* on the request's clock,
not just bytes.

The fabric is a discrete-event simulation on the shared
:class:`~repro.serving.clock.EventLoop`:

* each cascade tier is a :class:`TierServer` — a FIFO queue, a
  :class:`~repro.serving.batcher.BatchingPolicy`, and ``N`` workers, each
  executing the tier's :class:`~repro.hierarchy.sections.TierSection`
  (eager, or a per-worker compiled plan bundle, so the compile-path buffer
  arenas are safe by construction);
* a batch occupies a worker for the section's modelled compute time (or an
  explicit :class:`~repro.serving.loadgen.ServiceModel` override), then its
  rows either exit — producing a :class:`FabricResponse` — or are offloaded
  to the next tier, arriving after the link's transfer delay;
* everything (arrival interleaving, batch formation, worker assignment,
  transfer timing) is deterministic in simulated time.

Workers are a pluggable backend (:mod:`repro.serving.workers`): the default
``backend="simulated"`` keeps the deterministic discrete-event slots above,
while ``backend="thread"`` (with ``compile=True``) runs the same per-worker
plan bundles on a real :class:`~concurrent.futures.ThreadPoolExecutor`
against a :class:`~repro.serving.clock.WallClock` — the same fabric script
becomes a genuinely concurrent server whose throughput is a wall-clock
number.  Exit decisions are byte-identical across backends; only timing
(and, for stochastic fault plans, the order of RNG draws) differs.

Exit decisions are byte-identical to the monolithic single-loop baseline
(:meth:`~repro.core.cascade.ExitCascade.run_model`) for any worker count
and link configuration — workers and links change *when* things happen,
never *what* is computed (covered by tests).  The single-tier special case
of this fabric is exactly what :class:`~repro.serving.server.DDNNServer`
implements; the offline :class:`~repro.hierarchy.runtime.HierarchyRuntime`
is the fabric replayed at infinite arrival rate.

Overload behaviour can additionally be made *adaptive*: an
:class:`AdaptiveThreshold` raises the local-exit threshold while the device
tier's backlog exceeds a trigger depth, shedding load by answering more
requests locally (bounded latency, slightly degraded accuracy) instead of
letting the offload queue grow.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.cascade import ExitCascade, Thresholds
from ..core.exits import ExitCriterion
from ..datasets.mvmc import MVMCDataset
from ..hierarchy.faults import ChaosSchedule
from ..hierarchy.network import Message, NetworkLink
from ..hierarchy.partition import HierarchyDeployment, LinkSpec
from ..hierarchy.plan import PartitionPlan
from ..hierarchy.sections import TierSection, build_tier_sections, stack_rows
from ..nn.tensor import no_grad
from .admission import (
    AdmissionOutcome,
    AdmissionPolicy,
    AdmissionStats,
    RejectNewest,
)
from .batcher import BatchingPolicy
from .clock import EventHandle, EventLoop, SimulatedClock, WallClock
from .loadgen import ArrivalProcess, ServiceModel
from .resilience import (
    CircuitBreaker,
    Deadline,
    HedgePolicy,
    ResilienceStats,
    RetryPolicy,
)
from .workers import (
    WORKER_POOL_BACKENDS,
    WorkerHandle,
    WorkerPool,
    make_worker_pool,
)

__all__ = [
    "AdaptiveThreshold",
    "FabricRequest",
    "FabricResponse",
    "FabricReport",
    "RepartitionReport",
    "TierServer",
    "DistributedServingFabric",
]


@dataclass(frozen=True)
class AdaptiveThreshold:
    """Adaptive shedding: relax the local exit while the device tier is backed up.

    When the device tier's queue depth (measured at batch formation) is at
    least ``depth_trigger``, the local exit evaluates that batch with
    ``relaxed_threshold`` instead of the cascade's configured threshold —
    more samples exit locally, offload traffic drops, and the backlog
    drains, at the cost of answering borderline samples from the weakest
    classifier.  ``relaxed_threshold=1.0`` sheds every pressured sample
    locally.
    """

    depth_trigger: int
    relaxed_threshold: float = 1.0

    def __post_init__(self) -> None:
        if self.depth_trigger < 1:
            raise ValueError(f"depth_trigger must be >= 1, got {self.depth_trigger}")
        if not 0.0 <= self.relaxed_threshold <= 1.0:
            raise ValueError(
                f"relaxed_threshold must be in [0, 1], got {self.relaxed_threshold}"
            )


@dataclass
class FabricRequest:
    """One sample travelling up the tier hierarchy."""

    request_id: int
    client_id: str
    views: np.ndarray
    target: Optional[int] = None
    submit_time: float = 0.0
    #: Sum of per-tier compute + transfer latency along the sample's path
    #: (the offline hierarchy metric; excludes queueing and batching waits).
    path_latency_s: float = 0.0
    #: Total bytes this sample put on the wire (paper Eq. 1 accounting).
    bytes_transferred: float = 0.0
    #: Offload re-sends performed for this request so far (resilient path).
    retries: int = 0
    #: Deepest exit decision this request has already cleared — the answer
    #: a failover degrades to: ``(prediction, entropy, exit_index,
    #: exit_name)``.  Maintained when an offload RetryPolicy is set and for
    #: any request carrying a deadline (retirement needs an answer too).
    fallback: Optional[Tuple[int, float, int, str]] = None
    #: End-to-end SLO budget travelling with the request (``None`` = no SLO).
    deadline: Optional[Deadline] = None
    #: Exactly-once emission guard: set by :meth:`_finalize`, checked there.
    answered: bool = False
    #: A hedge copy of this request's offload won the race to a sibling.
    hedged: bool = False
    #: Daemon timer that retires the request at deadline expiry while queued.
    expiry_handle: Optional[EventHandle] = field(default=None, repr=False)
    #: ``(fabric, tier_index, item)`` while sitting in a tier queue, so the
    #: expiry timer can surgically remove it; ``None`` otherwise.
    queued_in: Optional[tuple] = field(default=None, repr=False)


@dataclass
class FabricResponse:
    """The cascade's answer for one request, with distributed accounting."""

    request_id: int
    client_id: str
    prediction: int
    exit_index: int
    exit_name: str
    entropy: float
    target: Optional[int] = None
    submit_time: float = 0.0
    completion_time: float = 0.0
    path_latency_s: float = 0.0
    bytes_transferred: float = 0.0
    batch_size: int = 1
    #: True when the exit decision was taken under an adaptive relaxed
    #: threshold (queue-pressure shedding).
    relaxed: bool = False
    #: True when admission answered this request from the first exit at the
    #: ingress instead of queueing it (bounded-queue shedding).
    shed: bool = False
    #: True when the answer is a failover: the offload's deadline/retry
    #: budget (or an open circuit breaker) gave up on the uplink, and the
    #: origin tier answered from the deepest local exit already cleared.
    degraded: bool = False
    #: Offload re-sends this request's journey needed (0 on a clean path).
    retries: int = 0
    #: True when the request's end-to-end SLO budget could not be met: it
    #: was retired from a queue (or clipped before an offload/retry) and
    #: answered from the deepest exit already cleared, or its real answer
    #: simply landed after the budget.  Never dropped either way.
    deadline_exceeded: bool = False
    #: True when a speculative hedge copy to a sibling replica delivered
    #: this request's offload first.
    hedged: bool = False

    @property
    def latency_s(self) -> float:
        """End-to-end sojourn time: queueing + compute + transfer delays."""
        return self.completion_time - self.submit_time

    @property
    def correct(self) -> Optional[bool]:
        if self.target is None:
            return None
        return self.prediction == self.target


@dataclass
class FabricReport:
    """Aggregate outcome of a fabric run."""

    served: int
    duration_s: float
    offload_fraction: float
    exit_fractions: Dict[str, float]
    mean_latency_s: float = 0.0
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    max_latency_s: float = 0.0
    mean_bytes: float = 0.0
    accuracy: Optional[float] = None
    relaxed_fraction: float = 0.0
    shed_fraction: float = 0.0
    #: Fraction of responses answered by failover to a local exit.
    degraded_fraction: float = 0.0
    #: Total offload re-sends across all responses.
    retry_total: int = 0
    #: Fraction of responses whose end-to-end SLO budget was missed.
    deadline_exceeded_fraction: float = 0.0
    #: Speculative hedge copies sent to sibling replicas.
    hedge_total: int = 0
    #: Fraction of hedges whose copy beat the original attempt.
    hedge_win_fraction: float = 0.0
    #: Extra bytes the hedge copies put on sibling links (honest accounting:
    #: also charged to the individual requests' ``bytes_transferred``).
    hedge_bytes: float = 0.0
    #: Uniform observability block: resilience counters, admission
    #: accounting and per-link breaker state/transition counts.
    metadata: Dict[str, object] = field(default_factory=dict)
    responses: List[FabricResponse] = field(default_factory=list)


@dataclass
class RepartitionReport:
    """Outcome of one :meth:`DistributedServingFabric.apply_plan` handoff."""

    #: Simulated/wall time the handoff executed at (after the drain barrier).
    time: float
    #: Queued request ids carried across the boundary move, per tier name.
    requeued_ids: Dict[str, Tuple[int, ...]]
    #: Worker count per tier after the handoff.
    workers_per_tier: Dict[str, int]

    @property
    def requeued(self) -> Dict[str, int]:
        return {name: len(ids) for name, ids in self.requeued_ids.items()}

    @property
    def total_requeued(self) -> int:
        return sum(len(ids) for ids in self.requeued_ids.values())


@dataclass
class _PendingItem:
    """A queued sample at one tier: the request plus its tier-local payload."""

    request: FabricRequest
    payload: object
    arrival_time: float


class _RequestIds:
    """Monotonic request-id source.

    A plain attribute would do for one fabric; hedging makes it an object so
    the :class:`~repro.serving.balancer.LoadBalancer` can share ONE source
    across sibling replicas — merged response streams stay globally unique
    and a hedge copy keeps its original id on the sibling stack.
    """

    __slots__ = ("next",)

    def __init__(self) -> None:
        self.next = 0

    def take(self) -> int:
        value = self.next
        self.next += 1
        return value


@dataclass
class _OffloadGroup:
    """One in-flight resilient offload: a batch's non-exiting rows in transit.

    Under a :class:`~repro.serving.resilience.RetryPolicy` the rows of one
    batch travel (and are retried) as a single message-group — they share
    link fate, a deadline timer, and a failover decision.  ``attempts``
    versions the outstanding send so a late arrival from a superseded
    attempt can be recognised and suppressed.
    """

    origin: int
    requests: List[FabricRequest]
    rows: np.ndarray
    carry: object
    attempts: int = 0
    settled: bool = False
    delivery_handle: Optional[EventHandle] = None
    timeout_handle: Optional[EventHandle] = None
    #: Pending backoff re-send (cancelled when any arrival settles first).
    resend_handle: Optional[EventHandle] = None
    #: Earliest member deadline — the group's whole SLO budget (inf = none).
    expires_at: float = math.inf
    #: Speculative hedge copies already sent to sibling replicas.
    hedge_count: int = 0
    #: Timer that fires the next hedge once ``trigger_fraction`` of the
    #: remaining budget has elapsed without a delivery.
    hedge_timer: Optional[EventHandle] = None
    #: In-flight hedge delivery events (cancelled when any arrival settles).
    hedge_deliveries: List[EventHandle] = field(default_factory=list)


class _IngressQueueView:
    """The device-tier queue through an :class:`AdmissionPolicy`'s eyes.

    Policies were written against :class:`~repro.serving.queue.RequestQueue`
    and only touch its ``capacity``, ``len()``, ``clock()`` and ``admission``
    surface; this adapter presents the fabric's tier-0 backlog the same way
    so the whole policy registry (reject / drop-oldest / shed-local /
    token-bucket / adaptive-shed) applies to the distributed fabric
    unchanged.
    """

    def __init__(self, fabric: "DistributedServingFabric") -> None:
        self._fabric = fabric

    @property
    def capacity(self) -> Optional[int]:
        return self._fabric.capacity

    @property
    def admission(self) -> AdmissionPolicy:
        return self._fabric.admission

    def __len__(self) -> int:
        return len(self._fabric.tiers[0].queue)

    def clock(self) -> float:
        return self._fabric.clock.now


class TierServer:
    """One tier of the fabric: queue + batching policy + a worker pool.

    The pool decides how a dispatched batch occupies time — deterministic
    simulated slots, or real executor threads (see
    :mod:`repro.serving.workers`); the tier itself only owns arrival
    queueing and batch formation, which stay on the event-loop thread in
    either backend.
    """

    def __init__(
        self,
        section: TierSection,
        pool: WorkerPool,
        policy: Optional[BatchingPolicy] = None,
        service_model: Optional[ServiceModel] = None,
    ) -> None:
        self.section = section
        self.pool = pool
        self.policy = policy if policy is not None else BatchingPolicy()
        self.service_model = service_model
        self.queue: Deque[_PendingItem] = deque()
        self.batches_dispatched = 0
        self.samples_processed = 0

    @property
    def name(self) -> str:
        return self.section.tier_name

    @property
    def workers(self) -> List[WorkerHandle]:
        return self.pool.workers

    def free_worker(self, now: float) -> Optional[WorkerHandle]:
        return self.pool.acquire(now)

    def due(self, now: float, draining: bool) -> bool:
        if not self.queue:
            return False
        if draining or len(self.queue) >= self.policy.max_batch_size:
            return True
        # Same float expression the wait timer is scheduled with, so the
        # timer firing at exactly arrival + max_wait always finds the batch
        # due (now - arrival >= max_wait can round the other way).
        return now >= self.queue[0].arrival_time + self.policy.max_wait_s

    def service_time(self, batch_size: int, section_service_s: float) -> float:
        if self.service_model is not None:
            return self.service_model.batch_time_s(batch_size)
        return section_service_s


class DistributedServingFabric:
    """Discrete-event serving over the tiered deployment.

    Parameters
    ----------
    deployment:
        A :func:`~repro.hierarchy.partition.partition_ddnn` deployment; its
        :class:`~repro.hierarchy.network.NetworkFabric` links supply the
        transfer delays charged to offloaded requests.
    thresholds:
        Exit-cascade thresholds (same rules as every other cascade consumer).
    workers_per_tier:
        Worker count per tier — a single int (broadcast) or one per tier.
    batching:
        :class:`BatchingPolicy` per tier (single policy broadcasts).
    compile:
        Build one compiled plan bundle *per worker* (fused inference plans
        with private buffer arenas; same decisions as eager).
    precision:
        Compute mode(s) for the compiled bundles — a single mode
        (broadcast) or one per tier, so a bandwidth-starved device tier
        can run ``"bitpacked"`` or ``"float32"`` while the cloud stays
        exact ``"float64"``.  Requires ``compile=True`` for non-default
        modes.  Workers on tiers sharing a mode draw bundles from one
        per-mode pool.
    sections:
        Pre-built tier sections (the hierarchy runtime passes sections that
        carry its fault plan); defaults to :func:`build_tier_sections`.
    service_models:
        Optional per-tier :class:`ServiceModel` overriding the node
        ops-model compute time for worker occupancy (used for calibrated /
        machine-independent studies); ``None`` entries keep the section
        estimate.
    client_link:
        Optional ingress :class:`LinkSpec`; when set, every submitted
        request reaches the device tier only after
        ``latency + request_bytes / bandwidth`` of simulated delay.
    request_bytes:
        Payload size used for the ingress link (0 models a pure
        propagation delay).
    adaptive:
        Optional :class:`AdaptiveThreshold` queue-pressure shedding.
    backend:
        Worker-pool backend: ``"simulated"`` (default — deterministic
        discrete-event slots, the paper-table replay path, byte-identical
        to earlier releases) or ``"thread"`` (real
        :class:`~concurrent.futures.ThreadPoolExecutor` workers against a
        :class:`~repro.serving.clock.WallClock`; requires ``compile=True``
        because eager forwards share the process-wide ``no_grad`` switch).
        The thread backend defaults ``clock`` to a fresh ``WallClock`` and
        rejects a simulated one — wall-clock dispatch is what makes real
        concurrency observable.
    offload:
        Optional :class:`~repro.serving.resilience.RetryPolicy`.  When set,
        every offload to the next tier carries a deadline; on timeout or
        message loss the origin tier retries with exponential backoff +
        jitter up to the budget, then **fails over** to the deepest local
        exit the request has already cleared — a degraded but honest answer
        carrying ``degraded``/``retries`` metadata.  Required whenever an
        attached chaos schedule can darken links or lose messages (an
        offload into a dark link would otherwise hang forever).  Without
        it the legacy immortal-network offload path runs unchanged.
    breaker:
        Optional :class:`~repro.serving.resilience.CircuitBreaker` template
        (thresholds only); each inter-tier link gets its own instance.  An
        open breaker fails offloads over to the local exit immediately
        instead of burning a deadline + backoff ladder per batch.  Requires
        ``offload``.  Defaults to ``CircuitBreaker()`` per link when an
        offload policy is set.
    chaos:
        Optional :class:`~repro.hierarchy.faults.ChaosSchedule` applied at
        construction (equivalent to calling :meth:`attach_chaos`).
    slo_s:
        Default end-to-end SLO budget stamped on every submission as a
        :class:`~repro.serving.resilience.Deadline` (per-call ``slo_s``
        overrides).  The deadline travels with the request across tiers:
        expired requests are retired from queues *before* burning compute,
        retry ladders are clipped to the remaining budget, and every
        answer landing past the budget is flagged ``deadline_exceeded``
        (never dropped).
    edf:
        Form batches earliest-deadline-first instead of FIFO (requests
        without a deadline sort last; ties break on request id).
    hedge:
        Optional :class:`~repro.serving.resilience.HedgePolicy`: once
        ``trigger_fraction`` of an offload group's remaining budget has
        elapsed without a delivery, a speculative copy is re-sent to a
        sibling replica stack; first arrival wins, the rest are cancelled.
        Requires ``offload`` and a router wired by the
        :class:`~repro.serving.balancer.LoadBalancer` (a lone fabric has
        no siblings, so the policy is inert without one).
    events:
        Optional shared :class:`~repro.serving.clock.EventLoop`; sibling
        replicas under one balancer must share a loop for hedging (and
        pass at most a matching ``clock``).
    """

    def __init__(
        self,
        deployment: HierarchyDeployment,
        thresholds: Thresholds,
        workers_per_tier: Union[int, Sequence[int]] = 1,
        batching: Union[None, BatchingPolicy, Sequence[Optional[BatchingPolicy]]] = None,
        compile: bool = False,
        precision: Union[str, Sequence[str]] = "float64",
        clock: Union[None, SimulatedClock, WallClock] = None,
        sections: Optional[Sequence[TierSection]] = None,
        service_models: Optional[Sequence[Optional[ServiceModel]]] = None,
        client_link: Optional[LinkSpec] = None,
        request_bytes: float = 0.0,
        adaptive: Optional[AdaptiveThreshold] = None,
        backend: str = "simulated",
        capacity: Optional[int] = None,
        admission: Optional[AdmissionPolicy] = None,
        offload: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        chaos: Optional[ChaosSchedule] = None,
        slo_s: Optional[float] = None,
        edf: bool = False,
        hedge: Optional[HedgePolicy] = None,
        events: Optional[EventLoop] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(
                f"capacity must be >= 1 (or None for unbounded), got {capacity}"
            )
        if events is not None:
            if clock is not None and clock is not events.clock:
                raise ValueError(
                    "pass either a shared events loop or a clock, not a "
                    "mismatched pair (the loop already owns its clock)"
                )
            clock = events.clock
        if slo_s is not None and not slo_s > 0.0:
            raise ValueError(f"slo_s must be > 0 (or None for no SLO), got {slo_s}")
        if backend not in WORKER_POOL_BACKENDS:
            raise ValueError(
                f"unknown backend '{backend}' (choose from {WORKER_POOL_BACKENDS})"
            )
        if backend == "thread":
            if not compile:
                raise ValueError(
                    "backend='thread' requires compile=True: eager forwards "
                    "toggle the process-wide no_grad switch and are not "
                    "thread-safe; compiled plan bundles are"
                )
            if clock is None:
                clock = WallClock()
            elif not isinstance(clock, WallClock):
                raise ValueError(
                    "backend='thread' runs against wall-clock time; pass a "
                    "WallClock (or leave clock=None) instead of "
                    f"{type(clock).__name__}"
                )
        self.deployment = deployment
        self.model = deployment.model
        # Serving is inference: batch-norm must use running statistics, or
        # exit decisions would depend on micro-batch composition (the
        # hierarchy runtime makes the same call before it replays a dataset).
        self.model.eval()
        self.cascade = ExitCascade.for_model(self.model, thresholds)
        self.events = events if events is not None else EventLoop(clock)
        self.adaptive = adaptive
        self.compile_enabled = bool(compile)
        self.backend = backend

        if sections is None:
            sections = build_tier_sections(deployment)
        self.sections = list(sections)
        num_tiers = len(self.sections)

        workers = self._per_tier(workers_per_tier, num_tiers, "workers_per_tier")
        policies = self._per_tier(batching, num_tiers, "batching")
        services = list(service_models) if service_models is not None else [None] * num_tiers
        if len(services) != num_tiers:
            raise ValueError(f"service_models must have {num_tiers} entries")

        from ..compile.ops import PRECISIONS

        precisions = [
            mode if mode is not None else "float64"
            for mode in self._per_tier(precision, num_tiers, "precision")
        ]
        for mode in precisions:
            if mode not in PRECISIONS:
                raise ValueError(
                    f"unknown precision {mode!r}; expected one of {PRECISIONS}"
                )
        if any(mode != "float64" for mode in precisions) and not compile:
            raise ValueError(
                "per-tier precision other than 'float64' requires compile=True: "
                "the eager stack always computes in float64"
            )
        self.precisions = precisions

        # One compiled bundle per worker *slot*, shared across same-precision
        # tiers: tier t's worker w uses only bundle w's tier-t plans, so
        # concurrently-busy workers always touch disjoint plan objects (arena
        # safety) without compiling the whole model once per (tier, worker)
        # pair.  Tiers at different precision modes draw from separate pools,
        # each sized by the largest worker count among its tiers.
        bundles: Dict[str, List[object]] = {}
        if self.compile_enabled:
            from ..compile import compile_ddnn

            for mode in dict.fromkeys(precisions):
                slots = max(
                    int(count) if count is not None else 1
                    for count, tier_mode in zip(workers, precisions)
                    if tier_mode == mode
                )
                bundles[mode] = [
                    compile_ddnn(self.model, precision=mode) for _ in range(slots)
                ]
        self._bundles = bundles

        self.tiers: List[TierServer] = []
        for index, section in enumerate(self.sections):
            count = int(workers[index]) if workers[index] is not None else 1
            plans = bundles[precisions[index]][:count] if self.compile_enabled else None
            pool = make_worker_pool(
                backend,
                self.events,
                num_workers=count,
                worker_plans=plans,
                name=section.tier_name,
            )
            self.tiers.append(
                TierServer(
                    section,
                    pool,
                    policy=policies[index],
                    service_model=services[index],
                )
            )

        if self.sections[-1].exit_index is None:
            raise ValueError("the final tier must carry the cascade's final exit")

        self.ingress: Optional[NetworkLink] = None
        if client_link is not None:
            self.ingress = NetworkLink(
                "clients",
                self.tiers[0].name,
                bandwidth_bytes_per_s=client_link.bandwidth_bytes_per_s,
                latency_s=client_link.latency_s,
            )
        self.request_bytes = float(request_bytes)

        self.capacity = capacity
        self.admission = admission if admission is not None else RejectNewest()
        self.admission_stats = AdmissionStats()
        self._queue_view = _IngressQueueView(self)

        #: Plan the fabric currently runs (set by :meth:`from_plan` and
        #: :meth:`apply_plan`; ``None`` for directly-constructed fabrics).
        self.plan: Optional[PartitionPlan] = None
        #: Optional :class:`~repro.serving.autoscale.Autoscaler` observing
        #: arrivals/completions (see :meth:`enable_autoscaling`).
        self.autoscaler = None
        self.last_repartition: Optional[RepartitionReport] = None
        self._pending_plan: Optional[PartitionPlan] = None
        self._paused = False
        self._inflight_batches = 0

        self.responses: List[FabricResponse] = []
        self.offered = 0
        self.relaxed_samples = 0
        #: Shared-able id source (the balancer unifies it across replicas
        #: when hedging, so merged response streams stay globally unique).
        self._ids = _RequestIds()
        self._draining = False
        self._started_at = self.clock.now
        #: Default end-to-end SLO budget stamped on every submission
        #: (per-call ``slo_s`` overrides; ``None`` = no deadline).
        self.slo_s = None if slo_s is None else float(slo_s)
        #: Earliest-deadline-first batch formation at every tier.
        self.edf = bool(edf)

        if breaker is not None and offload is None:
            raise ValueError(
                "breaker without offload does nothing: the circuit breaker "
                "guards the resilient offload path — pass offload=RetryPolicy(...)"
            )
        if hedge is not None and offload is None:
            raise ValueError(
                "hedge without offload does nothing: hedge copies ride the "
                "resilient offload path — pass offload=RetryPolicy(...)"
            )
        #: Offload resilience policy (None keeps the legacy immortal-network
        #: offload path, event for event).
        self.offload_policy = offload
        self._breaker_template = breaker
        #: Per-link circuit breakers, keyed (origin tier name, target tier name).
        self.breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._retry_rng = (
            np.random.default_rng(offload.seed) if offload is not None else None
        )
        self.resilience_stats = ResilienceStats()
        #: Hedged-offload policy; the routing callable is wired by the
        #: LoadBalancer (``hedge_router(origin_fabric, origin_tier) ->
        #: sibling fabric or None``) — a lone fabric has no siblings.
        self.hedge_policy = hedge
        self.hedge_router = None
        #: Total bytes hedge copies put on sibling links (fleet-honest: also
        #: charged per request, so mean_bytes reflects the speculation tax).
        self.hedge_bytes = 0.0
        # Per-request expiry timers are daemon events; this gate keeps the
        # loop alive while real work is queued or computing (e.g. a backlog
        # waiting for an offload delivery that is still in flight).
        self.events.add_idle_gate(self._idle_gate)
        self.chaos: Optional[ChaosSchedule] = None
        if chaos is not None:
            self.attach_chaos(chaos)

    # ------------------------------------------------------------------ #
    @property
    def clock(self) -> Union[SimulatedClock, WallClock]:
        return self.events.clock

    @property
    def _next_id(self) -> int:
        return self._ids.next

    def _idle_gate(self) -> bool:
        """Loop-idleness veto: daemon timers alone never keep the loop
        alive, but queued or in-flight work on this fabric must."""
        return self._inflight_batches == 0 and all(
            not tier.queue for tier in self.tiers
        )

    @property
    def tier_names(self) -> List[str]:
        return [tier.name for tier in self.tiers]

    @property
    def healthy(self) -> bool:
        """True while every tier has at least one online (non-crashed) worker.

        A :class:`~repro.hierarchy.faults.WorkerCrash` blackout window takes
        a tier's online count to zero; the
        :class:`~repro.serving.balancer.LoadBalancer` reads this to route
        around a blacked-out replica stack.
        """
        return all(tier.pool.online > 0 for tier in self.tiers)

    # -- runtime fault injection ---------------------------------------- #
    def attach_chaos(self, schedule: ChaosSchedule) -> "DistributedServingFabric":
        """Arm a :class:`~repro.hierarchy.faults.ChaosSchedule` on this fabric.

        Link events (outages, flaps, loss) are consulted per offload via
        :meth:`NetworkFabric.delivery
        <repro.hierarchy.network.NetworkFabric.delivery>`; worker-crash
        windows are pre-scheduled as events at each window boundary, where
        the affected tier's pool re-applies the schedule's offline count
        (idle workers crash first; a worker mid-batch finishes that batch,
        then goes dark).  On the simulated backend the whole fault
        realisation is deterministic under the schedule's seed.
        """
        if schedule.has_link_chaos and self.offload_policy is None:
            raise ValueError(
                "this chaos schedule can darken links or lose messages, and "
                "without an offload RetryPolicy a lost offload would hang "
                "forever — pass offload=RetryPolicy(...) to the fabric"
            )
        self.chaos = schedule
        self.deployment.fabric.attach_chaos(schedule)
        for index, tier in enumerate(self.tiers):
            for when in schedule.worker_event_times(tier.name):
                # Deliberately non-daemon: a run under chaos advances
                # through every boundary, so crashed workers always restart
                # (health checks and drains rely on it).
                self.events.schedule(
                    when,
                    lambda now, i=index: self._apply_worker_chaos(i, now),
                )
            # A window already open at attach time applies immediately.
            if schedule.worker_event_times(tier.name):
                self._apply_worker_chaos(index, self.clock.now)
        return self

    def _apply_worker_chaos(self, tier_index: int, now: float) -> None:
        """Re-apply the schedule's offline worker count for one tier at ``now``."""
        assert self.chaos is not None
        tier = self.tiers[tier_index]
        tier.pool.apply_offline(
            self.chaos.workers_down(tier.name, now, len(tier.pool)), now
        )
        # A restart boundary frees workers for the backlog accumulated
        # during the window; a crash boundary makes this a no-op dispatch.
        if not self._paused:
            self._dispatch(tier_index, now)

    def breaker_for(self, origin: str, target: str) -> CircuitBreaker:
        """The (lazily-created) circuit breaker guarding one inter-tier link."""
        key = (origin, target)
        if key not in self.breakers:
            template = self._breaker_template
            self.breakers[key] = (
                template.spawn() if template is not None else CircuitBreaker()
            )
        return self.breakers[key]

    @staticmethod
    def _per_tier(value, num_tiers: int, label: str) -> List:
        if value is None or isinstance(value, (int, str, BatchingPolicy)):
            return [value] * num_tiers
        values = list(value)
        if len(values) != num_tiers:
            raise ValueError(f"{label} must have {num_tiers} entries, got {len(values)}")
        return values

    # ------------------------------------------------------------------ #
    @classmethod
    def from_plan(
        cls,
        plan: PartitionPlan,
        thresholds: Thresholds,
        deployment: Optional[HierarchyDeployment] = None,
        **kwargs,
    ) -> "DistributedServingFabric":
        """Build a fabric from a :class:`~repro.hierarchy.plan.PartitionPlan`.

        The plan supplies the deployment (freshly materialised unless one is
        passed in), the section boundary, per-tier worker counts and —
        when the plan carries :class:`~repro.hierarchy.plan.AutoscalePolicy`
        entries — an enabled autoscaler.  Remaining keyword arguments go to
        the constructor unchanged (batching, backend, capacity, ...).
        """
        if deployment is None:
            deployment = plan.materialize()
        elif deployment.model is not plan.model:
            raise ValueError("deployment.model must be the plan's model")
        if "sections" in kwargs or "workers_per_tier" in kwargs or "precision" in kwargs:
            raise ValueError(
                "from_plan derives sections, workers_per_tier and precision "
                "from the plan; construct the fabric directly to override them"
            )
        sections = build_tier_sections(deployment, plan=plan)
        kwargs.setdefault("slo_s", plan.slo_s)
        fabric = cls(
            deployment,
            thresholds,
            workers_per_tier=list(plan.worker_counts()),
            sections=sections,
            precision=list(plan.precisions()),
            **kwargs,
        )
        fabric.plan = plan
        if plan.autoscaled:
            fabric.enable_autoscaling(plan.autoscale_policies())
        return fabric

    # ------------------------------------------------------------------ #
    def submit(
        self,
        views: np.ndarray,
        client_id: str = "default",
        target: Optional[int] = None,
        at: Optional[float] = None,
        slo_s: Optional[float] = None,
    ) -> int:
        """Schedule one sample's arrival at the device tier; returns its id."""
        return self.submit_many(
            [views], client_id=client_id, targets=[target], at=at, slo_s=slo_s
        )[0]

    def submit_many(
        self,
        views_list: Sequence[np.ndarray],
        client_id: str = "default",
        targets: Optional[Sequence[Optional[int]]] = None,
        at: Optional[float] = None,
        slo_s: Optional[float] = None,
    ) -> List[int]:
        """Schedule a group of samples arriving together (one batch-forming event).

        Samples submitted together enter the device-tier queue in one event,
        so a replay of a whole dataset at time zero forms full micro-batches
        instead of one degenerate batch per arrival.

        ``slo_s`` stamps each request with an end-to-end
        :class:`~repro.serving.resilience.Deadline` whose budget starts at
        submit time (ingress transfer included); ``None`` falls back to the
        fabric-wide default.  The deadline travels with the request across
        tiers — and across replicas when a hedge wins.
        """
        when = self.clock.now if at is None else float(at)
        slo = self.slo_s if slo_s is None else float(slo_s)
        if targets is None:
            targets = [None] * len(views_list)
        if len(targets) != len(views_list):
            raise ValueError("targets must align with views_list")
        requests = []
        ingress_delay = 0.0
        for views, target in zip(views_list, targets):
            views = np.asarray(views)
            if views.ndim != 4:
                raise ValueError(
                    f"views must have shape (num_devices, C, H, W), got {views.shape}"
                )
            delay = 0.0
            if self.ingress is not None:
                delay = self.ingress.send(
                    Message(
                        source="clients",
                        destination=self.tiers[0].name,
                        size_bytes=self.request_bytes,
                        kind="request",
                    )
                )
                ingress_delay = delay
            request = FabricRequest(
                request_id=self._ids.take(),
                client_id=client_id,
                views=views,
                target=None if target is None else int(target),
                submit_time=when,
                path_latency_s=delay,
                bytes_transferred=self.request_bytes if self.ingress is not None else 0.0,
            )
            if slo is not None:
                request.deadline = Deadline.from_slo(slo, when)
                # Daemon: an expiry timer retires the request if it is still
                # sitting in a queue at its budget, but never keeps an
                # otherwise-finished run alive.
                request.expiry_handle = self.events.schedule(
                    request.deadline.expires_at,
                    lambda now, r=request: self._expire(r, now),
                    daemon=True,
                )
            self.offered += 1
            requests.append(request)
        items = [(request, request.views) for request in requests]
        self.events.schedule(
            when + ingress_delay,
            lambda now, items=items: self._arrive(0, items, now, fresh=True),
        )
        return [request.request_id for request in requests]

    def _arrive(
        self,
        tier_index: int,
        items: Sequence[Tuple[FabricRequest, object]],
        now: float,
        fresh: bool = False,
    ) -> None:
        tier = self.tiers[tier_index]
        if fresh:
            # Ingress admission: only brand-new tier-0 arrivals knock;
            # offloads from lower tiers and repartition requeues are already
            # inside the system and bypass the policy.  A request whose SLO
            # already expired in the ingress link is retired before it even
            # knocks.
            admitted = 0
            for request, payload in items:
                if self._retire_if_expired(request, now):
                    continue
                admitted += self._admit(request, payload, now)
        else:
            admitted = 0
            for request, payload in items:
                if self._retire_if_expired(request, now):
                    continue
                self._enqueue(tier_index, request, payload, now)
                admitted += 1
        if self.autoscaler is not None and admitted:
            self.autoscaler.observe_arrival(tier_index, now, count=admitted)
        self._dispatch(tier_index, now)
        if tier.queue and not self._draining and tier.policy.max_wait_s > 0.0:
            self.events.schedule(
                now + tier.policy.max_wait_s,
                lambda fire_time, index=tier_index: self._dispatch(index, fire_time),
            )

    def _admit(self, request: FabricRequest, payload: object, now: float) -> int:
        """Offer one fresh arrival to the bounded device-tier queue.

        Mirrors :meth:`RequestQueue.offer` / :meth:`RequestQueue.requeue`
        accounting exactly: accepted requests enqueue (evicting the head
        under drop-oldest, counted ``dropped``), rejected ones vanish with a
        counter, shed ones are answered immediately from the first exit —
        and an adaptive policy's conditional shed rolls its ``shed`` count
        back into ``accepted`` when the entropy probe forces a requeue.
        Returns the number of requests enqueued (0 or 1).
        """
        queue = self.tiers[0].queue
        full = self.capacity is not None and len(queue) >= self.capacity
        if not full and not self.admission.pre_queue:
            self._enqueue(0, request, payload, now)
            self.admission_stats.accepted += 1
            return 1
        outcome = self.admission.decide(self._queue_view, request.client_id)
        if outcome is AdmissionOutcome.REJECTED:
            self.admission_stats.rejected += 1
            return 0
        if outcome is AdmissionOutcome.SHED:
            self.admission_stats.shed += 1
            shed_threshold = getattr(self.admission, "shed_threshold", None)
            if shed_threshold is not None:
                exit_index = self._require_first_exit()
                bound = shed_threshold(
                    self._queue_view, self.cascade.thresholds[exit_index]
                )
                if self._shed_response(request, now, max_entropy=bound) is None:
                    # Local entropy too high for a degraded answer: requeue
                    # with the original stamps — shed rolls back into
                    # accepted, a full queue evicts its head to make room.
                    self.admission_stats.shed -= 1
                    if self.capacity is not None and len(queue) >= self.capacity:
                        self._evict_head()
                        self.admission_stats.dropped += 1
                    self._enqueue(0, request, payload, now)
                    self.admission_stats.accepted += 1
                    return 1
            else:
                self._shed_response(request, now)
            return 0
        if full:
            # ACCEPTED while full: evict the head-of-line request.
            self._evict_head()
            self.admission_stats.dropped += 1
        self._enqueue(0, request, payload, now)
        self.admission_stats.accepted += 1
        return 1

    def _enqueue(
        self, tier_index: int, request: FabricRequest, payload: object, now: float
    ) -> None:
        """Queue a request at one tier, recording where so its expiry timer
        can surgically retire it from the queue."""
        item = _PendingItem(request, payload, now)
        request.queued_in = (self, tier_index, item)
        self.tiers[tier_index].queue.append(item)

    def _evict_head(self) -> None:
        """Drop-oldest eviction: the victim leaves the system entirely, so
        its expiry timer (if any) must not fire on a request that is gone."""
        evicted = self.tiers[0].queue.popleft()
        evicted.request.queued_in = None
        if evicted.request.expiry_handle is not None:
            evicted.request.expiry_handle.cancel()
            evicted.request.expiry_handle = None

    def _require_first_exit(self) -> int:
        exit_index = self.sections[0].exit_index
        if exit_index is None:
            raise RuntimeError(
                "admission wants to shed to the first exit, but the active "
                "plan disables the device tier's exit — use a reject/"
                "drop-oldest policy, or keep the local exit in the plan"
            )
        return exit_index

    def _shed_response(
        self,
        request: FabricRequest,
        now: float,
        max_entropy: Optional[float] = None,
        degraded: bool = False,
    ) -> Optional[FabricResponse]:
        """Answer a shed request from the first exit, bypassing the tiers.

        Mirrors :meth:`DDNNServer._shed_to_local`: the sample is evaluated
        through the cascade's first exit directly (compiled plan when the
        fabric compiles, eager otherwise) with no hierarchy byte/latency
        accounting — a shed answer is produced at the ingress, before the
        request ever enters the tier plane.  With ``max_entropy`` set the
        answer is only delivered when its entropy clears the bound;
        ``None`` is returned otherwise so the caller can queue the request.
        With ``degraded=True`` the same first-exit evaluation serves an
        offload failover whose journey never cleared an exit (the origin
        tier had none), flagged ``degraded`` instead of ``shed``.
        """
        exit_index = self._require_first_exit()
        self.model.eval()
        if self.compile_enabled:
            output = self.cascade.compiled_for(self.model)(request.views[None])
        else:
            with no_grad():
                output = self.model(request.views[None])
        decision = self.cascade.criteria[exit_index].evaluate(
            output.exit_logits[exit_index]
        )
        if max_entropy is not None and float(decision.entropies[0]) > max_entropy:
            return None
        response = FabricResponse(
            request_id=request.request_id,
            client_id=request.client_id,
            prediction=int(decision.predictions[0]),
            exit_index=exit_index,
            exit_name=self.sections[0].exit_name,
            entropy=float(decision.entropies[0]),
            target=request.target,
            submit_time=request.submit_time,
            completion_time=now,
            path_latency_s=request.path_latency_s,
            bytes_transferred=request.bytes_transferred,
            batch_size=1,
            shed=not degraded,
            degraded=degraded,
            retries=request.retries if degraded else 0,
        )
        return self._finalize(request, response)

    # -- end-to-end SLO plane ------------------------------------------- #
    def _finalize(
        self, request: FabricRequest, response: FabricResponse
    ) -> FabricResponse:
        """Single emission point for every answer path.

        Enforces the exactly-once invariant (deadline retirement, failover,
        hedging and normal exits all converge here), disarms the expiry
        timer, and stamps ``deadline_exceeded`` honestly: any answer landing
        at or past the budget is flagged, whatever path produced it.
        """
        if request.answered:
            raise RuntimeError(
                f"request {request.request_id} answered twice — fabric invariant"
            )
        request.answered = True
        request.queued_in = None
        if request.expiry_handle is not None:
            request.expiry_handle.cancel()
            request.expiry_handle = None
        if (
            request.deadline is not None
            and response.completion_time >= request.deadline.expires_at
        ):
            response.deadline_exceeded = True
        if request.hedged:
            response.hedged = True
        self.responses.append(response)
        return response

    def _can_retire(self, request: FabricRequest) -> bool:
        """A request can only be retired at its deadline if *something* can
        answer it: the deepest exit it already cleared, or the first exit."""
        return request.fallback is not None or self.sections[0].exit_index is not None

    def _fallback_response(
        self, request: FabricRequest, now: float, batch_size: int = 1
    ) -> FabricResponse:
        """Answer from the deepest exit decision the request already cleared
        (first-exit evaluation when its journey never cleared one)."""
        if request.fallback is None:
            response = self._shed_response(request, now, degraded=True)
            assert response is not None  # no max_entropy bound on this path
            return response
        prediction, entropy, exit_index, exit_name = request.fallback
        response = FabricResponse(
            request_id=request.request_id,
            client_id=request.client_id,
            prediction=int(prediction),
            exit_index=int(exit_index),
            exit_name=exit_name,
            entropy=float(entropy),
            target=request.target,
            submit_time=request.submit_time,
            completion_time=now,
            path_latency_s=request.path_latency_s,
            bytes_transferred=request.bytes_transferred,
            batch_size=batch_size,
            degraded=True,
            retries=request.retries,
        )
        return self._finalize(request, response)

    def _deadline_response(
        self, request: FabricRequest, now: float, batch_size: int = 1
    ) -> FabricResponse:
        """Retire a request whose SLO budget is (or provably will be) blown:
        answered immediately from the deepest exit already cleared — never
        dropped, and no further transfer or remote compute is spent on it."""
        self.resilience_stats.deadline_expired += 1
        return self._fallback_response(request, now, batch_size=batch_size)

    def _retire_if_expired(self, request: FabricRequest, now: float) -> bool:
        """Retire an already-expired request instead of advancing it."""
        if (
            request.deadline is None
            or not request.deadline.expired(now)
            or not self._can_retire(request)
        ):
            return False
        self._deadline_response(request, now)
        return True

    def _expire(self, request: FabricRequest, now: float) -> None:
        """Deadline timer: retire the request if it is sitting in a tier
        queue (on this fabric or — after a winning hedge — a sibling's)."""
        if request.answered or request.queued_in is None:
            return
        fabric, tier_index, item = request.queued_in
        if not fabric._can_retire(request):
            return  # nothing to answer from yet; the final answer gets flagged
        try:
            fabric.tiers[tier_index].queue.remove(item)
        except ValueError:
            return  # popped into a batch between scheduling and firing
        request.queued_in = None
        fabric._deadline_response(request, now)

    # ------------------------------------------------------------------ #
    def _dispatch(self, tier_index: int, now: float) -> None:
        if self._paused:
            return
        tier = self.tiers[tier_index]
        while tier.due(now, self._draining):
            worker = tier.free_worker(now)
            if worker is None:
                return
            relaxed = (
                tier_index == 0
                and self.adaptive is not None
                and self.sections[0].exit_index is not None
                and len(tier.queue) >= self.adaptive.depth_trigger
            )
            if self.edf and len(tier.queue) > 1:
                # Earliest-deadline-first batch formation: requests with no
                # deadline sort last; ties break on request id so the order
                # is total and deterministic.
                tier.queue = deque(
                    sorted(
                        tier.queue,
                        key=lambda item: (
                            item.request.deadline.expires_at
                            if item.request.deadline is not None
                            else math.inf,
                            item.request.request_id,
                        ),
                    )
                )
            batch: List[_PendingItem] = []
            while tier.queue and len(batch) < tier.policy.max_batch_size:
                item = tier.queue.popleft()
                request = item.request
                request.queued_in = None
                if request.deadline is not None and request.deadline.expired(now):
                    if self._can_retire(request):
                        # Retired at batch formation: an expired request
                        # never occupies a compute slot.
                        self._deadline_response(request, now)
                        continue
                    if tier_index > 0:
                        # Nothing to answer it from: compute anyway, and
                        # count the honesty violation the SLO bench gates on.
                        self.resilience_stats.expired_compute += 1
                batch.append(item)
            if not batch:
                continue
            payload: object
            if tier_index == 0:
                payload = np.stack([item.payload for item in batch])
            else:
                payload = stack_rows([item.payload for item in batch])
            tier.batches_dispatched += 1
            tier.samples_processed += len(batch)
            self._inflight_batches += 1
            # The pool decides how the work occupies time: simulated slots
            # compute inline and bill the modelled service, thread workers
            # compute on the executor and complete when genuinely done.
            tier.pool.execute(
                worker,
                task=lambda plans, s=tier.section, p=payload: s.process(p, plans=plans),
                service_for=lambda result, t=tier, n=len(batch): t.service_time(
                    n, result.service_s
                ),
                on_complete=lambda result, fire_time, t=tier_index, w=worker, b=batch, rx=relaxed: (
                    self._complete(t, w, b, result, rx, fire_time)
                ),
            )

    def _criterion(self, tier_index: int, relaxed: bool) -> ExitCriterion:
        exit_index = self.sections[tier_index].exit_index
        criterion = self.cascade.criteria[exit_index]
        if relaxed:
            assert self.adaptive is not None
            return ExitCriterion(self.adaptive.relaxed_threshold, name=criterion.name)
        return criterion

    def _complete(
        self,
        tier_index: int,
        worker: WorkerHandle,
        batch: List[_PendingItem],
        result,
        relaxed: bool,
        now: float,
    ) -> None:
        self._inflight_batches -= 1
        section = self.sections[tier_index]
        final = tier_index == len(self.tiers) - 1
        batch_size = len(batch)
        for row, item in enumerate(batch):
            item.request.path_latency_s += float(result.intake_s[row] + result.compute_s[row])
            item.request.bytes_transferred += float(result.intake_bytes[row])

        if section.exit_index is None:
            exit_mask = np.zeros(batch_size, dtype=bool)
            decision = None
        else:
            decision = self._criterion(tier_index, relaxed).evaluate(result.logits)
            exit_mask = np.ones(batch_size, dtype=bool) if final else decision.exit_mask

        for row in np.flatnonzero(exit_mask):
            request = batch[row].request
            response = FabricResponse(
                request_id=request.request_id,
                client_id=request.client_id,
                prediction=int(decision.predictions[row]),
                exit_index=section.exit_index,
                exit_name=section.exit_name,
                entropy=float(decision.entropies[row]),
                target=request.target,
                submit_time=request.submit_time,
                completion_time=now,
                path_latency_s=request.path_latency_s,
                bytes_transferred=request.bytes_transferred,
                batch_size=batch_size,
                relaxed=relaxed,
                retries=request.retries,
            )
            if relaxed:
                self.relaxed_samples += 1
            self._finalize(request, response)

        remaining = np.flatnonzero(~exit_mask)
        if remaining.size:
            # Remember the decision each non-exiting row would fail over or
            # retire to (the deepest exit already cleared) — maintained on
            # the resilient path and for any deadline-carrying request.
            if decision is not None:
                for row in remaining:
                    request = batch[row].request
                    if self.offload_policy is not None or request.deadline is not None:
                        request.fallback = (
                            int(decision.predictions[row]),
                            float(decision.entropies[row]),
                            section.exit_index,
                            section.exit_name,
                        )
            # SLO budget pre-filter: a row whose remaining budget cannot
            # cover even the (conservative, chargeless) transfer estimate is
            # answered locally *before* any bytes hit the wire — an SLO
            # shorter than one link transfer never sends an offload at all.
            sendable: List[int] = []
            estimate: Optional[float] = None
            for row in remaining:
                request = batch[row].request
                if request.deadline is not None and self._can_retire(request):
                    if estimate is None:
                        estimate = section.transfer_estimate_s()
                    if now + estimate >= request.deadline.expires_at:
                        self._deadline_response(request, now, batch_size=batch_size)
                        continue
                sendable.append(int(row))
            remaining = np.asarray(sendable, dtype=np.int64)
        if remaining.size:
            if self.offload_policy is not None:
                # Resilient offload path: the rows travel (and are retried,
                # and hedged) as one deadline-guarded message-group whose
                # budget is the earliest member deadline.
                group = _OffloadGroup(
                    origin=tier_index,
                    requests=[batch[row].request for row in remaining],
                    rows=np.asarray(remaining),
                    carry=result.carry,
                )
                group.expires_at = min(
                    (
                        request.deadline.expires_at
                        for request in group.requests
                        if request.deadline is not None
                    ),
                    default=math.inf,
                )
                self._offload_attempt(group, now)
            else:
                transfer = section.offload(result.carry, remaining)
                # Rows sharing a transfer delay arrive together, so the next
                # tier sees them as one batch-forming event.
                groups: Dict[float, List[Tuple[FabricRequest, object]]] = {}
                for position, row in enumerate(remaining):
                    request = batch[row].request
                    delay = float(transfer.delay_s[position])
                    request.path_latency_s += delay
                    request.bytes_transferred += float(transfer.bytes[position])
                    groups.setdefault(delay, []).append(
                        (request, transfer.payloads[position])
                    )
                for delay, items in groups.items():
                    self.events.schedule(
                        now + delay,
                        lambda fire_time, t=tier_index + 1, payloads=items: (
                            self._arrive(t, payloads, fire_time)
                        ),
                    )

        self.tiers[tier_index].pool.release(worker, now)
        if self.autoscaler is not None:
            self.autoscaler.observe(self, now)
        if self._paused and self._pending_plan is not None and self._inflight_batches == 0:
            # Deferred handoff: the last in-flight batch just landed, so the
            # drain barrier is satisfied — swap the plan in now.  The report
            # is published on ``last_repartition`` (apply_plan already
            # returned ``None`` to its caller).
            self._handoff(now)
            return
        self._dispatch(tier_index, now)

    # -- resilient offloads: deadline, retry/backoff, hedging, failover -- #
    def _settle(self, group: _OffloadGroup) -> None:
        """Mark a group decided and disarm every timer racing for it."""
        group.settled = True
        for handle in (
            group.delivery_handle,
            group.timeout_handle,
            group.resend_handle,
            group.hedge_timer,
        ):
            if handle is not None:
                handle.cancel()
        group.delivery_handle = None
        group.timeout_handle = None
        group.resend_handle = None
        group.hedge_timer = None
        for handle in group.hedge_deliveries:
            handle.cancel()
        group.hedge_deliveries.clear()

    def _attempt_timeout_at(self, policy: RetryPolicy, group: _OffloadGroup, now: float) -> float:
        """One attempt's give-up time: the retry deadline, clipped to the
        group's end-to-end budget (waiting past it helps nobody)."""
        return min(now + policy.deadline_s, group.expires_at)

    def _hedge_pending(self, group: _OffloadGroup) -> bool:
        """A hedge copy is still in flight and may yet deliver the group."""
        return any(not handle.cancelled for handle in group.hedge_deliveries)

    def _offload_attempt(self, group: _OffloadGroup, now: float) -> None:
        """Send (or re-send) one offload group under the deadline policy."""
        if group.settled:
            # A hedge win (or deadline retirement) landed during the backoff
            # that scheduled this re-send; re-sending — or worse, failing
            # over — a settled group would answer its requests twice.
            return
        group.resend_handle = None
        policy = self.offload_policy
        assert policy is not None
        origin = self.tiers[group.origin]
        target = self.tiers[group.origin + 1]
        breaker = self.breaker_for(origin.name, target.name)
        if not breaker.allow(now):
            # Fast-fail: the link is known-dark; answer locally without
            # burning a deadline + backoff ladder on it — unless a sibling
            # replica can take a hedge copy right now, in which case the
            # hedge (guarded by the usual attempt timeout) owns delivery.
            self.resilience_stats.breaker_fast_fails += 1
            if self._fire_hedge(group, now):
                group.attempts += 1
                attempt = group.attempts
                group.delivery_handle = None
                group.timeout_handle = self.events.schedule(
                    self._attempt_timeout_at(policy, group, now),
                    lambda fire_time, g=group, a=attempt: (
                        self._offload_timeout(g, a, fire_time)
                    ),
                )
                return
            if self._hedge_pending(group):
                # A hedge copy is already in flight; failing over now would
                # cancel a delivery that is about to win.  Let the hedge
                # settle the group (its delivery event is scheduled).
                return
            self._settle(group)
            self._failover(group, now)
            return
        group.attempts += 1
        self.resilience_stats.attempts += 1
        # Every attempt genuinely transmits: bytes and transfer seconds are
        # re-accounted on the links and requests (retries are not free).
        transfer = origin.section.offload(group.carry, group.rows)
        for position, request in enumerate(group.requests):
            request.path_latency_s += float(transfer.delay_s[position])
            request.bytes_transferred += float(transfer.bytes[position])
        delay = float(np.max(transfer.delay_s)) if len(group.requests) else 0.0
        delivered = self.deployment.fabric.delivery(origin.name, target.name, now)
        attempt = group.attempts
        if delivered:
            items = list(zip(group.requests, transfer.payloads))
            group.delivery_handle = self.events.schedule(
                now + delay,
                lambda fire_time, g=group, a=attempt, it=items: (
                    self._offload_delivered(g, a, it, fire_time)
                ),
            )
        else:
            group.delivery_handle = None
        group.timeout_handle = self.events.schedule(
            self._attempt_timeout_at(policy, group, now),
            lambda fire_time, g=group, a=attempt: (
                self._offload_timeout(g, a, fire_time)
            ),
        )
        if (
            group.attempts == 1
            and self.hedge_policy is not None
            and self.hedge_router is not None
            and group.expires_at < math.inf
        ):
            self._arm_hedge_timer(group, now)

    def _arm_hedge_timer(self, group: _OffloadGroup, now: float) -> None:
        """Arm the speculative re-send: fire once ``trigger_fraction`` of
        the remaining budget elapses without a delivery settling the group."""
        policy = self.hedge_policy
        assert policy is not None
        if group.hedge_count >= policy.max_hedges:
            return
        budget = group.expires_at - now
        if budget <= 0.0:
            return
        group.hedge_timer = self.events.schedule(
            now + policy.trigger_fraction * budget,
            lambda fire_time, g=group: self._hedge_due(g, fire_time),
        )

    def _hedge_due(self, group: _OffloadGroup, now: float) -> None:
        group.hedge_timer = None
        if group.settled:
            return
        if self._fire_hedge(group, now):
            # Further copies (if the policy allows them) trigger at the same
            # fraction of whatever budget then remains.
            self._arm_hedge_timer(group, now)

    def _fire_hedge(self, group: _OffloadGroup, now: float) -> bool:
        """Speculatively re-send the group to a sibling replica stack.

        The copy goes through the *sibling's* origin section, so its bytes
        and transfer seconds land on the sibling's links (honest hedge
        accounting), and through the sibling's chaos realisation.  First
        arrival — original or any hedge — wins; the rest are cancelled.
        Returns True when a copy was actually sent.
        """
        policy = self.hedge_policy
        if policy is None or self.hedge_router is None:
            return False
        if group.settled or group.hedge_count >= policy.max_hedges:
            return False
        if group.expires_at <= now:
            return False
        sibling = self.hedge_router(self, group.origin)
        if sibling is None:
            return False
        group.hedge_count += 1
        self.resilience_stats.hedges += 1
        section = sibling.tiers[group.origin].section
        transfer = section.offload(group.carry, group.rows)
        self.hedge_bytes += float(np.sum(transfer.bytes))
        for position, request in enumerate(group.requests):
            request.path_latency_s += float(transfer.delay_s[position])
            request.bytes_transferred += float(transfer.bytes[position])
        delay = float(np.max(transfer.delay_s)) if len(group.requests) else 0.0
        delivered = sibling.deployment.fabric.delivery(
            sibling.tiers[group.origin].name,
            sibling.tiers[group.origin + 1].name,
            now,
        )
        if delivered:
            items = list(zip(group.requests, transfer.payloads))
            handle = self.events.schedule(
                now + delay,
                lambda fire_time, g=group, s=sibling, it=items: (
                    self._hedge_delivered(g, s, it, fire_time)
                ),
            )
            group.hedge_deliveries.append(handle)
        return True

    def _hedge_delivered(
        self,
        group: _OffloadGroup,
        sibling: "DistributedServingFabric",
        items: List[Tuple[FabricRequest, object]],
        now: float,
    ) -> None:
        """A hedge copy reached the sibling's next tier first: it wins."""
        if group.settled:
            # The original (or an earlier hedge) got there first.
            self.resilience_stats.late_deliveries += 1
            return
        self._settle(group)
        self.resilience_stats.hedge_wins += 1
        for request in group.requests:
            request.hedged = True
        sibling._arrive(group.origin + 1, items, now)

    def _offload_delivered(
        self,
        group: _OffloadGroup,
        attempt: int,
        items: List[Tuple[FabricRequest, object]],
        now: float,
    ) -> None:
        """An offload group's payload reached the next tier."""
        if group.settled or attempt != group.attempts:
            # The deadline (or a failover/hedge) already retired this
            # attempt; delivering it now would duplicate requests downstream.
            self.resilience_stats.late_deliveries += 1
            return
        self._settle(group)
        origin = self.tiers[group.origin]
        target = self.tiers[group.origin + 1]
        self.breaker_for(origin.name, target.name).record_success(now)
        self._arrive(group.origin + 1, items, now)

    def _offload_timeout(self, group: _OffloadGroup, attempt: int, now: float) -> None:
        """An offload attempt's deadline expired before its arrival landed."""
        if group.settled or attempt != group.attempts:
            return
        policy = self.offload_policy
        assert policy is not None
        if group.delivery_handle is not None:
            # The transfer was slower than the deadline: treat the payload
            # as lost (the re-send, not this straggler, now owns delivery).
            group.delivery_handle.cancel()
            group.delivery_handle = None
        self.resilience_stats.timeouts += 1
        origin = self.tiers[group.origin]
        target = self.tiers[group.origin + 1]
        self.breaker_for(origin.name, target.name).record_failure(now)
        if group.attempts > policy.max_retries:
            if self._hedge_pending(group):
                return  # a hedge copy is still racing; it owns delivery now
            self._settle(group)
            self._failover(group, now)
            return
        backoff = policy.backoff_s(group.attempts, self._retry_rng)
        if group.expires_at < math.inf:
            # Clip the ladder to the remaining end-to-end budget: a re-send
            # that cannot possibly land before the group's earliest deadline
            # is never sent — fail over (or let a live hedge win) instead.
            resend_lands = now + backoff + origin.section.transfer_estimate_s()
            if resend_lands >= group.expires_at:
                self.resilience_stats.clipped_retries += 1
                if self._hedge_pending(group):
                    return
                self._settle(group)
                self._failover(group, now)
                return
        self.resilience_stats.retries += 1
        for request in group.requests:
            request.retries += 1
        group.resend_handle = self.events.schedule(
            now + backoff,
            lambda fire_time, g=group: self._offload_attempt(g, fire_time),
        )

    def _failover(self, group: _OffloadGroup, now: float) -> None:
        """Answer every request of a given-up offload from its local exit."""
        for request in group.requests:
            self._degraded_response(request, now, batch_size=len(group.requests))

    def _degraded_response(
        self, request: FabricRequest, now: float, batch_size: int = 1
    ) -> FabricResponse:
        """One failover answer: the deepest exit decision already cleared,
        flagged ``degraded`` (first-exit re-evaluation when the journey
        never cleared an exit)."""
        self.resilience_stats.failovers += 1
        return self._fallback_response(request, now, batch_size=batch_size)

    # ------------------------------------------------------------------ #
    def apply_plan(
        self, new_plan: PartitionPlan, now: Optional[float] = None
    ) -> Optional[RepartitionReport]:
        """Re-partition the live fabric: drain in-flight batches, then swap.

        The handoff protocol:

        1. **Pause** — every tier stops forming new batches (queued requests
           stay exactly where they are; arrivals keep enqueueing).
        2. **Drain** — batches already on workers run to completion and
           their rows exit or offload normally under the *old* plan.
        3. **Swap** — tier sections are rebuilt from ``new_plan`` (moving
           the exit boundary), links and node speeds are retuned in place
           (stats survive), and each tier's worker pool is resized.
        4. **Resume** — dispatch restarts; every queued request is served
           under the new plan, none dropped, none duplicated.

        Returns the :class:`RepartitionReport` when the swap happened
        synchronously (no batches were in flight); returns ``None`` when
        the drain barrier deferred it, in which case the report lands on
        :attr:`last_repartition` once the last in-flight batch completes.
        """
        if new_plan.model is not self.model:
            raise ValueError("apply_plan requires a plan for this fabric's model")
        if new_plan.num_tiers != len(self.tiers):
            raise ValueError(
                f"plan describes {new_plan.num_tiers} tiers but the fabric "
                f"runs {len(self.tiers)} — adding/removing the edge tier "
                "needs a new fabric, not a live re-partition"
            )
        if list(new_plan.precisions()) != list(self.precisions):
            raise ValueError(
                f"plan precisions {tuple(new_plan.precisions())} differ from "
                f"the fabric's {tuple(self.precisions)} — worker bundles are "
                "compiled at fabric construction; changing compute modes "
                "needs a new fabric, not a live re-partition"
            )
        new_plan.validate()
        if self._pending_plan is not None:
            raise RuntimeError("a re-partition is already in progress")
        when = self.clock.now if now is None else float(now)
        self._pending_plan = new_plan
        self._paused = True
        if self._inflight_batches == 0:
            return self._handoff(when)
        return None

    def _handoff(self, now: float) -> RepartitionReport:
        """Execute the plan swap (drain barrier already satisfied)."""
        plan = self._pending_plan
        assert plan is not None and self._inflight_batches == 0
        self._pending_plan = None

        requeued_ids = {
            tier.name: tuple(item.request.request_id for item in tier.queue)
            for tier in self.tiers
        }

        # Rebuild the sections at the new boundary.  The fault plan and the
        # shared compiled bundle (edge/cloud aggregation paths) carry over
        # from the running sections so behaviour other than the boundary is
        # unchanged.
        new_sections = build_tier_sections(
            self.deployment,
            fault_plan=self.sections[0].fault_plan,
            compiled=next(
                (s.compiled for s in self.sections if hasattr(s, "compiled")), None
            ),
            plan=plan,
        )
        if new_sections[-1].exit_index is None:
            raise ValueError("the final tier must carry the cascade's final exit")
        plan.retune_links(self.deployment)
        plan.retune_nodes(self.deployment)

        counts = list(plan.worker_counts())
        workers_per_tier: Dict[str, int] = {}
        for index, (tier, section) in enumerate(zip(self.tiers, new_sections)):
            tier.section = section
            workers_per_tier[tier.name] = self._resize_tier(index, counts[index], now)
        self.sections = list(new_sections)
        self.plan = plan
        if self.autoscaler is not None and plan.autoscaled:
            self.autoscaler.reconfigure(plan.autoscale_policies())

        self._paused = False
        report = RepartitionReport(
            time=now,
            requeued_ids=requeued_ids,
            workers_per_tier=workers_per_tier,
        )
        self.last_repartition = report
        # Resume: re-dispatch every tier and re-arm the wait timers (the
        # pause may have swallowed timer firings).
        for index, tier in enumerate(self.tiers):
            self._dispatch(index, now)
            if tier.queue and not self._draining and tier.policy.max_wait_s > 0.0:
                self.events.schedule(
                    now + tier.policy.max_wait_s,
                    lambda fire_time, i=index: self._dispatch(i, fire_time),
                )
        return report

    def _resize_tier(self, tier_index: int, num_workers: int, now: float) -> int:
        """Resize one tier's worker pool; returns the actual size.

        On the compile path every added worker needs its own plan bundle
        (disjoint buffer arenas).  Bundles freed by earlier shrinks are
        reused first; genuinely new slots compile fresh bundles.
        """
        tier = self.tiers[tier_index]
        current = len(tier.pool)
        if num_workers > current and self.compile_enabled:
            mode = self.precisions[tier_index]
            pool = self._bundles.setdefault(mode, [])
            added = num_workers - current
            in_use = {id(worker.plans) for worker in tier.pool.workers}
            spare = [bundle for bundle in pool if id(bundle) not in in_use]
            if len(spare) < added:
                from ..compile import compile_ddnn

                fresh = [
                    compile_ddnn(self.model, precision=mode)
                    for _ in range(added - len(spare))
                ]
                pool.extend(fresh)
                spare.extend(fresh)
            actual = tier.pool.resize(num_workers, now, worker_plans=spare[:added])
        else:
            actual = tier.pool.resize(num_workers, now)
        if not self._paused:
            self._dispatch(tier_index, now)
        return actual

    def enable_autoscaling(self, policies) -> "DistributedServingFabric":
        """Attach an :class:`~repro.serving.autoscale.Autoscaler` driven by
        the given per-tier policies (single policy broadcasts)."""
        from .autoscale import Autoscaler

        self.autoscaler = Autoscaler(self, policies)
        return self

    def close(self) -> None:
        """Shut down the worker pools (joins executor threads); idempotent.

        Only the thread backend holds OS resources, but closing is always
        safe — ``with DistributedServingFabric(...) as fabric:`` works for
        either backend.
        """
        for tier in self.tiers:
            tier.pool.shutdown()

    def __enter__(self) -> "DistributedServingFabric":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def run_until_idle(
        self, max_events: Optional[int] = None, drain: bool = False
    ) -> List[FabricResponse]:
        """Fire every scheduled event; returns all responses so far.

        On the thread backend this also waits (in real time) for in-flight
        worker forwards to land — the loop only goes idle once the queue is
        empty *and* nothing is outstanding on the executor.  ``drain=True``
        force-dispatches partial batches for the duration of the run (the
        batching policy's size cap still applies), exactly like
        :meth:`serve_dataset` does.
        """
        previous = self._draining
        self._draining = self._draining or drain
        try:
            self.events.run(max_events=max_events)
        finally:
            self._draining = previous
        return self.responses

    def serve_dataset(
        self, dataset: MVMCDataset, client_id: str = "default", at: Optional[float] = None
    ) -> List[FabricResponse]:
        """Replay a dataset at infinite arrival rate; responses in sample order.

        Every sample arrives at once and batches are force-drained (the
        batching policy's size cap still applies), which is exactly the
        offline hierarchy-runtime regime.
        """
        first_id = self._next_id
        self.submit_many(
            [dataset.images[index] for index in range(len(dataset))],
            client_id=client_id,
            targets=[int(label) for label in dataset.labels],
            at=at,
        )
        self.run_until_idle(drain=True)
        mine = [r for r in self.responses if r.request_id >= first_id]
        return sorted(mine, key=lambda response: response.request_id)

    def open_loop(
        self,
        process: ArrivalProcess,
        views: np.ndarray,
        targets: Optional[Sequence[int]] = None,
        num_requests: int = 100,
        clients: Sequence[str] = ("client-0",),
    ) -> FabricReport:
        """Drive the fabric with an open-loop arrival process; returns a report.

        Arrivals are generated lazily (each arrival event schedules the
        next), samples are cycled through ``views`` in arrival order, and
        the run ends when the last admitted request completes.
        """
        if num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {num_requests}")
        views = np.asarray(views)
        if views.ndim != 5:
            raise ValueError(
                f"views must have shape (num_samples, num_devices, C, H, W), got {views.shape}"
            )
        if targets is not None and len(targets) != len(views):
            raise ValueError("targets must align with views")
        if not clients:
            raise ValueError("at least one client id is required")
        arrivals = iter(process)
        first_id = self._next_id
        started = self.clock.now

        def _next_arrival(count: int) -> None:
            if count >= num_requests:
                return
            when = next(arrivals, None)
            if when is None:
                return
            index = count % len(views)
            self.submit_many(
                [views[index]],
                client_id=clients[count % len(clients)],
                targets=[None if targets is None else int(targets[index])],
                at=max(when, self.clock.now),
            )
            self.events.schedule(
                max(when, self.clock.now), lambda now, c=count + 1: _next_arrival(c)
            )

        _next_arrival(0)
        self.run_until_idle()
        mine = [r for r in self.responses if r.request_id >= first_id]
        return self.report(mine, duration_s=self.clock.now - started)

    # ------------------------------------------------------------------ #
    def report(
        self, responses: Optional[Sequence[FabricResponse]] = None, duration_s: Optional[float] = None
    ) -> FabricReport:
        """Summarise latency tails, offload fraction and accuracy."""
        responses = list(self.responses if responses is None else responses)
        duration = (
            (self.clock.now - self._started_at) if duration_s is None else float(duration_s)
        )
        if not responses:
            return FabricReport(
                served=0,
                duration_s=duration,
                offload_fraction=0.0,
                exit_fractions={},
                hedge_total=self.resilience_stats.hedges,
                hedge_bytes=self.hedge_bytes,
                metadata=self.report_metadata(),
            )
        latencies = np.array([response.latency_s for response in responses])
        exit_counts: Dict[str, int] = {}
        for response in responses:
            exit_counts[response.exit_name] = exit_counts.get(response.exit_name, 0) + 1
        total = len(responses)
        first_exit = self.sections[0].exit_name
        offload_fraction = 1.0 - exit_counts.get(first_exit, 0) / total
        judged = [response.correct for response in responses if response.correct is not None]
        return FabricReport(
            served=total,
            duration_s=duration,
            offload_fraction=offload_fraction,
            exit_fractions={name: count / total for name, count in exit_counts.items()},
            mean_latency_s=float(latencies.mean()),
            p50_latency_s=float(np.percentile(latencies, 50)),
            p95_latency_s=float(np.percentile(latencies, 95)),
            p99_latency_s=float(np.percentile(latencies, 99)),
            max_latency_s=float(latencies.max()),
            mean_bytes=float(
                np.mean([response.bytes_transferred for response in responses])
            ),
            accuracy=float(np.mean(judged)) if judged else None,
            relaxed_fraction=sum(1 for r in responses if r.relaxed) / total,
            shed_fraction=sum(1 for r in responses if r.shed) / total,
            degraded_fraction=sum(1 for r in responses if r.degraded) / total,
            retry_total=sum(r.retries for r in responses),
            deadline_exceeded_fraction=(
                sum(1 for r in responses if r.deadline_exceeded) / total
            ),
            hedge_total=self.resilience_stats.hedges,
            hedge_win_fraction=(
                self.resilience_stats.hedge_wins / self.resilience_stats.hedges
                if self.resilience_stats.hedges
                else 0.0
            ),
            hedge_bytes=self.hedge_bytes,
            metadata=self.report_metadata(),
            responses=responses,
        )

    def report_metadata(self) -> Dict[str, object]:
        """Uniform observability block surfaced on every report: resilience
        counters (retries, failovers, deadline/hedge counts, ...), admission
        accounting, and per-link breaker state + transition counts."""
        return {
            "resilience": self.resilience_stats.as_dict(),
            "admission": self.admission_stats.as_dict(),
            "breakers": {
                f"{origin}->{target}": {
                    "state": breaker.state.value,
                    "transitions": breaker.transitions,
                }
                for (origin, target), breaker in sorted(self.breakers.items())
            },
        }
