"""Open-loop load generation for tail-latency studies of the DDNN server.

Closed-loop drivers (submit, wait, repeat) can never overload a server —
the arrival rate implicitly tracks the service rate, hiding exactly the
regime the paper's always-on sensor streams live in.  This module drives
:class:`~repro.serving.server.DDNNServer` **open-loop**: arrivals follow an
externally-defined stochastic process that does not care whether the server
keeps up.

Everything runs on a :class:`SimulatedClock` as a deterministic
discrete-event simulation:

* an :class:`ArrivalProcess` (:class:`PoissonProcess`, bursty two-state
  :class:`BurstyProcess` (MMPP), or :class:`TraceReplay`) yields absolute
  arrival times from a seeded RNG;
* a :class:`ServiceModel` (affine in batch size: ``overhead + n * per_sample``)
  stands in for wall-clock compute, so latency numbers are exactly
  reproducible and independent of the machine running the study;
* :class:`LoadGenerator` interleaves arrivals and batch completions in
  simulated-time order, submitting through the server's admission control
  (:meth:`DDNNServer.offer`) and running real model inference for every
  served batch — predictions are real, only *time* is simulated.

The per-request latencies, reject/drop/shed rates and tail percentiles are
summarised in a :class:`LoadReport`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

import numpy as np

from .admission import AdmissionOutcome
from .clock import SimulatedClock
from .queue import InferenceResponse
from .server import DDNNServer

__all__ = [
    "SimulatedClock",
    "ArrivalProcess",
    "PoissonProcess",
    "BurstyProcess",
    "DiurnalProcess",
    "TraceReplay",
    "ServiceModel",
    "LoadReport",
    "LoadGenerator",
]


class ArrivalProcess:
    """Base class: an iterable of monotonically increasing arrival times."""

    def times(self) -> Iterator[float]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[float]:
        return self.times()


class PoissonProcess(ArrivalProcess):
    """Memoryless arrivals: exponential inter-arrival gaps at ``rate_rps``."""

    def __init__(self, rate_rps: float, seed: int = 0, start: float = 0.0) -> None:
        if not rate_rps > 0.0:
            raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
        self.rate_rps = float(rate_rps)
        self.seed = int(seed)
        self.start = float(start)

    def times(self) -> Iterator[float]:
        rng = np.random.default_rng(self.seed)
        now = self.start
        while True:
            now += rng.exponential(1.0 / self.rate_rps)
            yield now


class BurstyProcess(ArrivalProcess):
    """Two-state Markov-modulated Poisson process (MMPP-2).

    The process alternates between a ``base`` state emitting Poisson
    arrivals at ``base_rate_rps`` and a ``burst`` state emitting them at
    ``burst_rate_rps``; dwell times in each state are exponential with the
    given means.  This reproduces the bursty uplink traffic of clustered
    end devices (many cameras triggered by the same physical event) that a
    plain Poisson stream smooths away.
    """

    def __init__(
        self,
        base_rate_rps: float,
        burst_rate_rps: float,
        mean_base_dwell_s: float = 1.0,
        mean_burst_dwell_s: float = 0.25,
        seed: int = 0,
        start: float = 0.0,
    ) -> None:
        for label, value in (
            ("base_rate_rps", base_rate_rps),
            ("burst_rate_rps", burst_rate_rps),
            ("mean_base_dwell_s", mean_base_dwell_s),
            ("mean_burst_dwell_s", mean_burst_dwell_s),
        ):
            if not value > 0.0:
                raise ValueError(f"{label} must be > 0, got {value}")
        self.base_rate_rps = float(base_rate_rps)
        self.burst_rate_rps = float(burst_rate_rps)
        self.mean_base_dwell_s = float(mean_base_dwell_s)
        self.mean_burst_dwell_s = float(mean_burst_dwell_s)
        self.seed = int(seed)
        self.start = float(start)

    def mean_rate_rps(self) -> float:
        """Long-run arrival rate (dwell-time-weighted state mix)."""
        total = self.mean_base_dwell_s + self.mean_burst_dwell_s
        return (
            self.base_rate_rps * self.mean_base_dwell_s
            + self.burst_rate_rps * self.mean_burst_dwell_s
        ) / total

    def times(self) -> Iterator[float]:
        rng = np.random.default_rng(self.seed)
        now = self.start
        in_burst = False
        while True:
            rate = self.burst_rate_rps if in_burst else self.base_rate_rps
            dwell = self.mean_burst_dwell_s if in_burst else self.mean_base_dwell_s
            # Competing exponentials: next arrival vs next state switch.
            to_arrival = rng.exponential(1.0 / rate)
            to_switch = rng.exponential(dwell)
            if to_switch < to_arrival:
                now += to_switch
                in_burst = not in_burst
            else:
                now += to_arrival
                yield now


class DiurnalProcess(ArrivalProcess):
    """Non-homogeneous Poisson arrivals on a sinusoidal day/night cycle.

    The instantaneous rate ramps smoothly between ``base_rate_rps``
    (trough) and ``peak_rate_rps`` (crest) with period ``period_s``,
    starting at the trough — the slow load swing an autoscaler is built
    for, as opposed to the second-scale bursts of :class:`BurstyProcess`.
    Arrivals are generated by thinning a homogeneous process at the peak
    rate, so the sequence is deterministic for a given seed.
    """

    def __init__(
        self,
        base_rate_rps: float,
        peak_rate_rps: float,
        period_s: float = 60.0,
        seed: int = 0,
        start: float = 0.0,
    ) -> None:
        if not base_rate_rps > 0.0:
            raise ValueError(f"base_rate_rps must be > 0, got {base_rate_rps}")
        if peak_rate_rps < base_rate_rps:
            raise ValueError(
                f"peak_rate_rps must be >= base_rate_rps, got "
                f"{peak_rate_rps} < {base_rate_rps}"
            )
        if not period_s > 0.0:
            raise ValueError(f"period_s must be > 0, got {period_s}")
        self.base_rate_rps = float(base_rate_rps)
        self.peak_rate_rps = float(peak_rate_rps)
        self.period_s = float(period_s)
        self.seed = int(seed)
        self.start = float(start)

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate at absolute time ``t``."""
        mid = (self.base_rate_rps + self.peak_rate_rps) / 2.0
        amplitude = (self.peak_rate_rps - self.base_rate_rps) / 2.0
        phase = 2.0 * math.pi * (t - self.start) / self.period_s
        # -cos starts the cycle at the trough and crests at period/2.
        return mid - amplitude * math.cos(phase)

    def mean_rate_rps(self) -> float:
        """Long-run arrival rate (the sinusoid's midline)."""
        return (self.base_rate_rps + self.peak_rate_rps) / 2.0

    def times(self) -> Iterator[float]:
        rng = np.random.default_rng(self.seed)
        now = self.start
        while True:
            # Thinning (Lewis & Shedler): candidates at the peak rate,
            # accepted with probability rate(t) / peak.
            now += rng.exponential(1.0 / self.peak_rate_rps)
            if rng.uniform() * self.peak_rate_rps <= self.rate_at(now):
                yield now


class TraceReplay(ArrivalProcess):
    """Replay an explicit (finite) list of absolute arrival times."""

    def __init__(self, arrival_times: Sequence[float]) -> None:
        times = [float(t) for t in arrival_times]
        if any(b < a for a, b in zip(times, times[1:])):
            raise ValueError("trace arrival times must be non-decreasing")
        self.arrival_times = times

    def times(self) -> Iterator[float]:
        return iter(self.arrival_times)


@dataclass(frozen=True)
class ServiceModel:
    """Affine batch service-time model: ``overhead + n * per_sample``.

    The affine shape is what micro-batching exploits (amortising the fixed
    overhead over ``n`` samples) and is what the real NumPy forward pass
    exhibits; :meth:`measure` calibrates the two coefficients from real
    timings of a server when machine-specific numbers are wanted.
    """

    batch_overhead_s: float = 0.002
    per_sample_s: float = 0.001

    def __post_init__(self) -> None:
        if self.batch_overhead_s < 0.0:
            raise ValueError(f"batch_overhead_s must be >= 0, got {self.batch_overhead_s}")
        if not self.per_sample_s > 0.0:
            raise ValueError(f"per_sample_s must be > 0, got {self.per_sample_s}")

    def batch_time_s(self, batch_size: int) -> float:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        return self.batch_overhead_s + batch_size * self.per_sample_s

    def capacity_rps(self, batch_size: int) -> float:
        """Sustainable service rate when batches fill to ``batch_size``."""
        return batch_size / self.batch_time_s(batch_size)

    @classmethod
    def measure(
        cls,
        server: DDNNServer,
        views: np.ndarray,
        batch_size: int = 32,
        repeats: int = 3,
    ) -> "ServiceModel":
        """Calibrate from real wall-clock forwards at sizes 1 and ``batch_size``."""
        if batch_size < 2:
            raise ValueError("batch_size must be >= 2 to fit two coefficients")
        views = np.asarray(views)

        def _time(n: int) -> float:
            batch = np.repeat(views[None], n, axis=0) if views.ndim == 4 else views[:n]
            best = math.inf
            for _ in range(repeats):
                started = time.perf_counter()
                server.cascade.run_model(server.model, batch, batch_size=n)
                best = min(best, time.perf_counter() - started)
            return best

        t_one = _time(1)
        t_full = _time(batch_size)
        per_sample = max((t_full - t_one) / (batch_size - 1), 1e-9)
        overhead = max(t_one - per_sample, 0.0)
        return cls(batch_overhead_s=overhead, per_sample_s=per_sample)

    @classmethod
    def from_plan_timings(
        cls,
        server: DDNNServer,
        views: np.ndarray,
        batch_size: int = 32,
        repeats: int = 3,
    ) -> "ServiceModel":
        """Calibrate from the compiled plan's per-op timing hook.

        Instead of timing whole wall-clock forwards (:meth:`measure`), this
        enables :meth:`repro.compile.CompiledDDNN.enable_timing`, runs the
        server's compiled cascade at batch sizes 1 and ``batch_size``, and
        fits the affine model to the summed per-op times — pure kernel
        time, free of Python dispatch and routing noise.  The per-op
        breakdown stays available on the compiled plan afterwards
        (``server.cascade.compiled_for(server.model).op_timings()``).
        """
        if batch_size < 2:
            raise ValueError("batch_size must be >= 2 to fit two coefficients")
        views = np.asarray(views)
        compiled = server.cascade.compiled_for(server.model)
        compiled.enable_timing()
        try:

            def _plan_time(n: int) -> float:
                batch = np.repeat(views[None], n, axis=0) if views.ndim == 4 else views[:n]
                best = math.inf
                for _ in range(repeats):
                    compiled.reset_timing()
                    server.cascade.run_model(
                        server.model, batch, batch_size=n, compile=True
                    )
                    best = min(best, compiled.total_time_s)
                return best

            t_one = _plan_time(1)
            t_full = _plan_time(batch_size)
        finally:
            compiled.disable_timing()
        per_sample = max((t_full - t_one) / (batch_size - 1), 1e-9)
        overhead = max(t_one - per_sample, 0.0)
        return cls(batch_overhead_s=overhead, per_sample_s=per_sample)


@dataclass
class LoadReport:
    """Outcome of one open-loop run: admission counts and latency tails.

    Percentiles are over the *queued-and-served* responses (the primary
    QoS metric); shed responses are answered immediately at the local exit
    and counted separately.
    """

    offered: int
    served: int
    rejected: int
    dropped: int
    shed: int
    duration_s: float
    offered_rate_rps: float
    mean_latency_s: float = 0.0
    p50_latency_s: float = 0.0
    p95_latency_s: float = 0.0
    p99_latency_s: float = 0.0
    max_latency_s: float = 0.0
    responses: List[InferenceResponse] = field(default_factory=list)
    shed_responses: List[InferenceResponse] = field(default_factory=list)

    @property
    def reject_rate(self) -> float:
        return self.rejected / self.offered if self.offered else 0.0

    @property
    def drop_rate(self) -> float:
        return self.dropped / self.offered if self.offered else 0.0

    @property
    def shed_rate(self) -> float:
        return self.shed / self.offered if self.offered else 0.0


class LoadGenerator:
    """Drives a server with an open-loop arrival process in simulated time.

    Parameters
    ----------
    server:
        A :class:`DDNNServer` built on the *same* :class:`SimulatedClock`
        instance passed here — the generator owns time, the server stamps
        requests and responses with it.
    process:
        The arrival process; each arrival submits one sample.
    views:
        Samples cycled through in arrival order, shape
        ``(num_samples, num_devices, C, H, W)``.
    targets:
        Optional labels aligned with ``views`` (enables accuracy tracking).
    service_model:
        Simulated compute cost per micro-batch.
    clients:
        Client ids assigned round-robin to arrivals.
    """

    def __init__(
        self,
        server: DDNNServer,
        process: ArrivalProcess,
        views: np.ndarray,
        targets: Optional[Sequence[int]] = None,
        service_model: Optional[ServiceModel] = None,
        clients: Sequence[str] = ("client-0",),
    ) -> None:
        if not isinstance(server.clock, SimulatedClock):
            raise TypeError(
                "LoadGenerator needs a server built on a SimulatedClock "
                "(pass clock=SimulatedClock() to DDNNServer)"
            )
        views = np.asarray(views)
        if views.ndim != 5:
            raise ValueError(
                f"views must have shape (num_samples, num_devices, C, H, W), got {views.shape}"
            )
        if targets is not None and len(targets) != len(views):
            raise ValueError("targets must align with views")
        if not clients:
            raise ValueError("at least one client id is required")
        self.server = server
        self.clock: SimulatedClock = server.clock
        self.process = process
        self.views = views
        self.targets = None if targets is None else [int(t) for t in targets]
        self.service_model = service_model if service_model is not None else ServiceModel()
        self.clients = list(clients)

    # ------------------------------------------------------------------ #
    def _next_release_time(self, busy_until: float, draining: bool) -> float:
        """When the next micro-batch may start, given queue state and policy."""
        queue = self.server.queue
        head = queue.peek_oldest()
        if head is None:
            return math.inf
        policy = self.server.batcher.policy
        if draining or len(queue) >= policy.max_batch_size:
            trigger = self.clock.now
        else:
            trigger = head.enqueue_time + policy.max_wait_s
        return max(trigger, busy_until, self.clock.now)

    def run(self, num_requests: int) -> LoadReport:
        """Generate ``num_requests`` arrivals, then drain; returns the report.

        A finite :class:`TraceReplay` may end the run early.  Batches start
        when the batching policy fires *and* the (single) serving worker is
        free; each batch occupies the worker for the service model's batch
        time, which is how sustained overload turns into queueing delay.
        """
        if num_requests < 1:
            raise ValueError(f"num_requests must be >= 1, got {num_requests}")
        arrivals = iter(self.process)
        next_arrival = next(arrivals, None)
        started_at = self.clock.now
        busy_until = self.clock.now
        submitted = 0
        rejected = 0
        shed = 0
        dropped = 0
        responses: List[InferenceResponse] = []
        shed_responses: List[InferenceResponse] = []

        while True:
            arrivals_open = submitted < num_requests and next_arrival is not None
            if not arrivals_open and len(self.server.queue) == 0:
                break
            arrival_time = next_arrival if arrivals_open else math.inf
            release_time = self._next_release_time(busy_until, draining=not arrivals_open)

            if arrival_time <= release_time:
                # Arrivals first on ties so a sample landing exactly at a
                # release instant still joins that batch, like live traffic.
                self.clock.advance_to(arrival_time)
                index = submitted % len(self.views)
                result = self.server.offer(
                    self.views[index],
                    client_id=self.clients[submitted % len(self.clients)],
                    target=None if self.targets is None else self.targets[index],
                )
                if result.outcome is AdmissionOutcome.REJECTED:
                    rejected += 1
                elif result.outcome is AdmissionOutcome.SHED:
                    shed += 1
                    session = self.server.queue.session(result.request.client_id)
                    if session.responses:
                        shed_responses.append(session.responses[-1])
                elif result.evicted is not None:
                    dropped += 1
                submitted += 1
                next_arrival = next(arrivals, None)
                continue

            # A batch is due: the policy trigger fired and the worker is free.
            self.clock.advance_to(release_time)
            batch = self.server.batcher.next_batch(force=True)
            if not batch:  # pragma: no cover - defensive; queue was non-empty
                break
            self.clock.advance(self.service_model.batch_time_s(len(batch)))
            responses.extend(self.server.process_batch(batch))
            busy_until = self.clock.now

        duration = max(self.clock.now - started_at, 0.0)
        latencies = np.array([response.latency_s for response in responses])
        report = LoadReport(
            offered=submitted,
            served=len(responses),
            rejected=rejected,
            dropped=dropped,
            shed=shed,
            duration_s=duration,
            offered_rate_rps=submitted / duration if duration > 0 else 0.0,
            responses=responses,
            shed_responses=shed_responses,
        )
        if latencies.size:
            report.mean_latency_s = float(latencies.mean())
            report.p50_latency_s = float(np.percentile(latencies, 50))
            report.p95_latency_s = float(np.percentile(latencies, 95))
            report.p99_latency_s = float(np.percentile(latencies, 99))
            report.max_latency_s = float(latencies.max())
        return report
