"""Dynamic micro-batching scheduler for the DDNN server.

The scheduler trades latency for throughput with two knobs:

* ``max_batch_size`` — never run the model on more samples than this;
* ``max_wait_s`` — never hold the head-of-line request longer than this
  waiting for the batch to fill.

A batch is released as soon as it is full, or as soon as the oldest
pending request has waited ``max_wait_s``.  ``max_batch_size=1`` degrades
to sequential (request-at-a-time) serving, which is the baseline the
throughput benchmark compares against.

Batch *composition* honours per-client QoS weights: draining delegates to
:meth:`~repro.serving.queue.RequestQueue.pop_batch`, which switches from
pure FIFO to weighted round-robin once any client weight is configured
(see :meth:`MicroBatcher.set_client_weight`), so a backlogged high-priority
client gets proportionally more slots per micro-batch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from .queue import InferenceRequest, RequestQueue

__all__ = ["BatchingPolicy", "MicroBatcher"]


@dataclass(frozen=True)
class BatchingPolicy:
    """Knobs controlling when queued requests are drained into a batch."""

    max_batch_size: int = 32
    max_wait_s: float = 0.002

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.max_wait_s < 0.0:
            raise ValueError(f"max_wait_s must be >= 0, got {self.max_wait_s}")

    @classmethod
    def sequential(cls) -> "BatchingPolicy":
        """The batch-size-1 baseline: every request runs alone."""
        return cls(max_batch_size=1, max_wait_s=0.0)


class MicroBatcher:
    """Drains a :class:`RequestQueue` into micro-batches per the policy."""

    def __init__(
        self,
        queue: RequestQueue,
        policy: Optional[BatchingPolicy] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.queue = queue
        self.policy = policy if policy is not None else BatchingPolicy()
        self.clock = clock if clock is not None else queue.clock
        self.batches_formed = 0

    def set_client_weight(self, client_id: str, weight: float) -> None:
        """Assign a QoS weight (relative micro-batch share) to a client."""
        self.queue.set_weight(client_id, weight)

    def ready(self, now: Optional[float] = None) -> bool:
        """Whether a batch should be released right now."""
        depth = len(self.queue)
        if depth == 0:
            return False
        if depth >= self.policy.max_batch_size:
            return True
        now = self.clock() if now is None else now
        return self.queue.oldest_wait_s(now) >= self.policy.max_wait_s

    def next_batch(self, force: bool = False) -> List[InferenceRequest]:
        """Release the next micro-batch, or ``[]`` if none is due.

        With ``force=True`` a non-empty queue always yields a batch, even if
        neither the size nor the wait trigger has fired — used when draining
        the queue at shutdown.
        """
        if not force and not self.ready():
            return []
        batch = self.queue.pop_batch(self.policy.max_batch_size)
        if batch:
            self.batches_formed += 1
        return batch
