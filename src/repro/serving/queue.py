"""Request queue and client sessions for online DDNN serving.

End devices in the paper stream samples upward continuously; the serving
subsystem models that traffic as :class:`InferenceRequest` objects flowing
through a FIFO :class:`RequestQueue`.  Each producer is tracked by a
:class:`ClientSession` so per-client backlog and completion counts are
observable.  Timestamps come from an injectable ``clock`` callable, which
keeps the scheduler fully deterministic under test.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

__all__ = ["InferenceRequest", "InferenceResponse", "ClientSession", "RequestQueue"]


@dataclass
class InferenceRequest:
    """One sample awaiting staged inference.

    ``views`` carries the multi-view observation of a single physical
    object, shape ``(num_devices, C, H, W)`` — one frame per end device.
    """

    request_id: int
    client_id: str
    views: np.ndarray
    target: Optional[int] = None
    enqueue_time: float = 0.0


@dataclass
class InferenceResponse:
    """The cascade's answer for one request, routed back to its client."""

    request_id: int
    client_id: str
    prediction: int
    exit_index: int
    exit_name: str
    entropy: float
    target: Optional[int] = None
    enqueue_time: float = 0.0
    completion_time: float = 0.0
    batch_size: int = 1

    @property
    def latency_s(self) -> float:
        """Queueing plus compute delay experienced by this request."""
        return self.completion_time - self.enqueue_time

    @property
    def correct(self) -> Optional[bool]:
        """Whether the prediction matched the target, if one was attached."""
        if self.target is None:
            return None
        return self.prediction == self.target


@dataclass
class ClientSession:
    """Per-client bookkeeping: what was submitted and what came back."""

    client_id: str
    submitted: int = 0
    completed: int = 0
    responses: List[InferenceResponse] = field(default_factory=list)

    @property
    def in_flight(self) -> int:
        return self.submitted - self.completed

    def deliver(self, response: InferenceResponse) -> None:
        self.completed += 1
        self.responses.append(response)


class RequestQueue:
    """FIFO queue of inference requests with client-session tracking."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self.clock = clock
        self._pending: Deque[InferenceRequest] = deque()
        self._sessions: Dict[str, ClientSession] = {}
        self._next_id = 0

    # ------------------------------------------------------------------ #
    def session(self, client_id: str) -> ClientSession:
        """Fetch (or lazily create) the session for a client."""
        if client_id not in self._sessions:
            self._sessions[client_id] = ClientSession(client_id)
        return self._sessions[client_id]

    @property
    def sessions(self) -> Dict[str, ClientSession]:
        return dict(self._sessions)

    # ------------------------------------------------------------------ #
    def submit(
        self,
        views: np.ndarray,
        client_id: str = "default",
        target: Optional[int] = None,
    ) -> InferenceRequest:
        """Enqueue one sample; returns the assigned request."""
        views = np.asarray(views)
        if views.ndim != 4:
            raise ValueError(
                f"views must have shape (num_devices, C, H, W), got {views.shape}"
            )
        request = InferenceRequest(
            request_id=self._next_id,
            client_id=client_id,
            views=views,
            target=None if target is None else int(target),
            enqueue_time=self.clock(),
        )
        self._next_id += 1
        self._pending.append(request)
        self.session(client_id).submitted += 1
        return request

    def __len__(self) -> int:
        return len(self._pending)

    def peek_oldest(self) -> Optional[InferenceRequest]:
        return self._pending[0] if self._pending else None

    def oldest_wait_s(self, now: Optional[float] = None) -> float:
        """How long the head-of-line request has been waiting."""
        if not self._pending:
            return 0.0
        now = self.clock() if now is None else now
        return now - self._pending[0].enqueue_time

    def pop_batch(self, max_size: int) -> List[InferenceRequest]:
        """Dequeue up to ``max_size`` requests in FIFO order."""
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        batch: List[InferenceRequest] = []
        while self._pending and len(batch) < max_size:
            batch.append(self._pending.popleft())
        return batch
