"""Request queue and client sessions for online DDNN serving.

End devices in the paper stream samples upward continuously; the serving
subsystem models that traffic as :class:`InferenceRequest` objects flowing
through a :class:`RequestQueue`.  Each producer is tracked by a
:class:`ClientSession` so per-client backlog and completion counts are
observable.  Timestamps come from an injectable ``clock`` callable, which
keeps the scheduler fully deterministic under test.

The queue is unbounded FIFO by default — bit-identical to the original
serving behaviour.  Two opt-in mechanisms make it overload-safe:

* ``capacity`` bounds the backlog; a full queue consults an
  :class:`~repro.serving.admission.AdmissionPolicy` (reject / drop-oldest /
  shed-to-local-exit) for every further arrival;
* per-client QoS weights (:meth:`RequestQueue.set_weight`) switch batch
  draining from pure FIFO to weighted round-robin, so a backlogged
  high-priority client gets proportionally more slots per micro-batch.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from .admission import (
    AdmissionOutcome,
    AdmissionPolicy,
    AdmissionResult,
    AdmissionStats,
    QueueFullError,
    RejectNewest,
)

__all__ = ["InferenceRequest", "InferenceResponse", "ClientSession", "RequestQueue"]


@dataclass
class InferenceRequest:
    """One sample awaiting staged inference.

    ``views`` carries the multi-view observation of a single physical
    object, shape ``(num_devices, C, H, W)`` — one frame per end device.
    """

    request_id: int
    client_id: str
    views: np.ndarray
    target: Optional[int] = None
    enqueue_time: float = 0.0


@dataclass
class InferenceResponse:
    """The cascade's answer for one request, routed back to its client."""

    request_id: int
    client_id: str
    prediction: int
    exit_index: int
    exit_name: str
    entropy: float
    target: Optional[int] = None
    enqueue_time: float = 0.0
    completion_time: float = 0.0
    batch_size: int = 1
    #: True when admission shed this request to the local exit instead of
    #: queueing it — the answer is immediate but local-exit-only.
    shed: bool = False

    @property
    def latency_s(self) -> float:
        """Queueing plus compute delay experienced by this request."""
        return self.completion_time - self.enqueue_time

    @property
    def correct(self) -> Optional[bool]:
        """Whether the prediction matched the target, if one was attached."""
        if self.target is None:
            return None
        return self.prediction == self.target


@dataclass
class ClientSession:
    """Per-client bookkeeping: what was submitted and what came back.

    ``retention`` bounds how many delivered responses are kept (``None``
    keeps all — only sensible for short-lived servers).  The integer
    counters are exact regardless of retention.
    """

    client_id: str
    retention: Optional[int] = None
    submitted: int = 0
    completed: int = 0
    rejected: int = 0
    dropped: int = 0
    shed: int = 0
    weight: float = 1.0
    responses: Deque[InferenceResponse] = field(default_factory=deque)

    def __post_init__(self) -> None:
        self.responses = deque(self.responses, maxlen=self.retention)

    @property
    def in_flight(self) -> int:
        """Accepted requests still waiting for (or being served) an answer."""
        return self.submitted - self.completed - self.dropped

    def deliver(self, response: InferenceResponse) -> None:
        """Record a response; shed answers never counted as ``submitted``."""
        if not response.shed:
            self.completed += 1
        self.responses.append(response)


class RequestQueue:
    """Request intake with client sessions, optional bound and QoS weights.

    Parameters
    ----------
    clock:
        Time source for enqueue stamps (injectable for deterministic tests).
    capacity:
        Maximum backlog; ``None`` (default) is unbounded and never consults
        the admission policy, preserving the original FIFO behaviour.
    admission:
        Policy applied when the bounded queue is full; defaults to
        :class:`~repro.serving.admission.RejectNewest`.
    retention:
        Per-session response-history bound handed to new
        :class:`ClientSession` objects (``None`` keeps everything).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        capacity: Optional[int] = None,
        admission: Optional[AdmissionPolicy] = None,
        retention: Optional[int] = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 (or None for unbounded), got {capacity}")
        if retention is not None and retention < 1:
            raise ValueError(f"retention must be >= 1 (or None for unlimited), got {retention}")
        self.clock = clock
        self.capacity = capacity
        self.admission = admission if admission is not None else RejectNewest()
        self.retention = retention
        self.admission_stats = AdmissionStats()
        self._pending: Deque[InferenceRequest] = deque()
        self._sessions: Dict[str, ClientSession] = {}
        self._weights: Dict[str, float] = {}
        # Deficit-round-robin state carried across pop_batch calls: fractional
        # credit per *backlogged* client (idle clients are dropped — no
        # banking), and the client whose turn comes next.  Both must persist
        # or small batches break proportionality: without credit carry-over a
        # weight-<1 client never reaches a whole credit inside one pop and is
        # starved; without the pointer every pop restarts at the same client
        # and weights degrade toward plain round-robin.
        self._qos_credits: Dict[str, float] = {}
        self._qos_next: Optional[str] = None
        self._next_id = 0

    # ------------------------------------------------------------------ #
    def session(self, client_id: str) -> ClientSession:
        """Fetch (or lazily create) the session for a client."""
        if client_id not in self._sessions:
            self._sessions[client_id] = ClientSession(client_id, retention=self.retention)
        return self._sessions[client_id]

    @property
    def sessions(self) -> Dict[str, ClientSession]:
        return dict(self._sessions)

    # ------------------------------------------------------------------ #
    def set_weight(self, client_id: str, weight: float) -> None:
        """Assign a QoS weight to a client (relative micro-batch share).

        Setting any weight switches :meth:`pop_batch` from pure FIFO to
        weighted round-robin over the backlogged clients; a client with
        weight 2.0 gets twice the slots of a weight-1.0 client while both
        are backlogged.  Unset clients default to 1.0.
        """
        weight = float(weight)
        if not weight > 0.0:
            raise ValueError(f"QoS weight must be > 0, got {weight}")
        self._weights[client_id] = weight
        self.session(client_id).weight = weight

    def weight(self, client_id: str) -> float:
        return self._weights.get(client_id, 1.0)

    @property
    def weighted(self) -> bool:
        """Whether any QoS weight has been configured."""
        return bool(self._weights)

    # ------------------------------------------------------------------ #
    def _build_request(
        self, views: np.ndarray, client_id: str, target: Optional[int]
    ) -> InferenceRequest:
        views = np.asarray(views)
        if views.ndim != 4:
            raise ValueError(
                f"views must have shape (num_devices, C, H, W), got {views.shape}"
            )
        request = InferenceRequest(
            request_id=self._next_id,
            client_id=client_id,
            views=views,
            target=None if target is None else int(target),
            enqueue_time=self.clock(),
        )
        self._next_id += 1
        return request

    def offer(
        self,
        views: np.ndarray,
        client_id: str = "default",
        target: Optional[int] = None,
    ) -> AdmissionResult:
        """Offer one sample to the queue; admission decides its fate.

        Always accepted while the queue has room (or is unbounded); a full
        bounded queue asks the admission policy, yielding ``ACCEPTED``
        (after evicting the head under drop-oldest), ``REJECTED`` or
        ``SHED`` (stamped request returned un-enqueued for local-exit
        handling by the caller).
        """
        session = self.session(client_id)
        evicted: Optional[InferenceRequest] = None
        full = self.capacity is not None and len(self._pending) >= self.capacity
        if full or self.admission.pre_queue:
            outcome = self.admission.decide(self, client_id)
            if outcome is AdmissionOutcome.REJECTED:
                self.admission_stats.rejected += 1
                session.rejected += 1
                return AdmissionResult(AdmissionOutcome.REJECTED)
            if outcome is AdmissionOutcome.SHED:
                request = self._build_request(views, client_id, target)
                self.admission_stats.shed += 1
                session.shed += 1
                return AdmissionResult(AdmissionOutcome.SHED, request=request)
            if full:
                # ACCEPTED while full: evict the head-of-line request.
                evicted = self._pending.popleft()
                self.admission_stats.dropped += 1
                self.session(evicted.client_id).dropped += 1
        request = self._build_request(views, client_id, target)
        self._pending.append(request)
        session.submitted += 1
        self.admission_stats.accepted += 1
        return AdmissionResult(AdmissionOutcome.ACCEPTED, request=request, evicted=evicted)

    def submit(
        self,
        views: np.ndarray,
        client_id: str = "default",
        target: Optional[int] = None,
    ) -> InferenceRequest:
        """Enqueue one sample; returns the assigned request.

        With the default unbounded queue this never fails.  On a bounded
        queue a refused offer raises :class:`QueueFullError` — callers that
        want to handle overload outcomes use :meth:`offer`.  A bare queue
        cannot produce the local-exit answer a ``SHED`` outcome promises
        (that is the server's job), so here a shed decision is recounted as
        a rejection before raising — counters never claim an answer that
        was not delivered.
        """
        result = self.offer(views, client_id=client_id, target=target)
        if result.outcome is AdmissionOutcome.ACCEPTED:
            assert result.request is not None
            return result.request
        if result.outcome is AdmissionOutcome.SHED:
            session = self.session(client_id)
            self.admission_stats.shed -= 1
            session.shed -= 1
            self.admission_stats.rejected += 1
            session.rejected += 1
        raise QueueFullError(
            f"queue full (capacity={self.capacity}): admission refused the "
            "request — use offer() to handle overload outcomes"
        )

    def requeue(self, request: InferenceRequest) -> Optional[InferenceRequest]:
        """Admit a previously shed request after all, converting its counters.

        Used by the adaptive-shed path when a pressured request's local-exit
        entropy is too high for a degraded answer: the request keeps its
        original enqueue stamp (its wait started when it first knocked) and
        the shed counters are rolled back into accepted ones.  On a full
        queue the head-of-line request is evicted to make room (returned so
        the caller can account the drop).
        """
        session = self.session(request.client_id)
        self.admission_stats.shed -= 1
        session.shed -= 1
        evicted: Optional[InferenceRequest] = None
        if self.capacity is not None and len(self._pending) >= self.capacity:
            evicted = self._pending.popleft()
            self.admission_stats.dropped += 1
            self.session(evicted.client_id).dropped += 1
        self._pending.append(request)
        session.submitted += 1
        self.admission_stats.accepted += 1
        return evicted

    def __len__(self) -> int:
        return len(self._pending)

    def peek_oldest(self) -> Optional[InferenceRequest]:
        return self._pending[0] if self._pending else None

    def oldest_wait_s(self, now: Optional[float] = None) -> float:
        """How long the head-of-line request has been waiting."""
        if not self._pending:
            return 0.0
        now = self.clock() if now is None else now
        return now - self._pending[0].enqueue_time

    # ------------------------------------------------------------------ #
    def pop_batch(self, max_size: int) -> List[InferenceRequest]:
        """Dequeue up to ``max_size`` requests.

        Pure FIFO until any QoS weight is configured; then weighted
        round-robin over backlogged clients (see :meth:`set_weight`), with
        each client's own requests still served in FIFO order.
        """
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        if not self._weights:
            batch: List[InferenceRequest] = []
            while self._pending and len(batch) < max_size:
                batch.append(self._pending.popleft())
            return batch
        return self._pop_weighted(max_size)

    def _pop_weighted(self, max_size: int) -> List[InferenceRequest]:
        # Group the backlog per client, clients ordered by their oldest
        # pending request (deterministic, arrival-based).
        per_client: Dict[str, Deque[InferenceRequest]] = {}
        order: List[str] = []
        for request in self._pending:
            if request.client_id not in per_client:
                per_client[request.client_id] = deque()
                order.append(request.client_id)
            per_client[request.client_id].append(request)

        # Resume the circular visiting order where the previous pop stopped.
        if self._qos_next in per_client:
            start = order.index(self._qos_next)
            order = order[start:] + order[:start]

        batch: List[InferenceRequest] = []
        credits = {client_id: self._qos_credits.get(client_id, 0.0) for client_id in order}
        # Deficit round-robin: on each visit a backlogged client earns its
        # weight in credit and serves one request per whole credit.
        visit = 0
        last_visited: Optional[str] = None
        while len(batch) < max_size and any(per_client[c] for c in order):
            client_id = order[visit % len(order)]
            visit += 1
            if not per_client[client_id]:
                credits[client_id] = 0.0  # no banking credit while idle
                continue
            last_visited = client_id
            credits[client_id] += self.weight(client_id)
            while (
                credits[client_id] >= 1.0
                and per_client[client_id]
                and len(batch) < max_size
            ):
                batch.append(per_client[client_id].popleft())
                credits[client_id] -= 1.0
        if last_visited is not None:
            self._qos_next = order[(order.index(last_visited) + 1) % len(order)]
        # Carry fractional credit forward only for still-backlogged clients.
        self._qos_credits = {
            client_id: credits[client_id] for client_id in order if per_client[client_id]
        }
        taken = {request.request_id for request in batch}
        self._pending = deque(
            request for request in self._pending if request.request_id not in taken
        )
        return batch
