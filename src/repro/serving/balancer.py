"""Load balancing across replicated tier stacks.

A :class:`~repro.hierarchy.plan.PartitionPlan` with ``replicas > 1``
describes several identical device→[edge]→cloud stacks serving the same
trained model.  :class:`LoadBalancer` stamps those stacks out (one
:class:`~repro.serving.fabric.DistributedServingFabric` per replica, each
over its own freshly-materialised deployment — the *model* is shared, the
simulator state is not) and routes incoming work across them:

* ``"round-robin"`` — strict rotation, oblivious to load;
* ``"least-loaded"`` — each submission goes to the replica with the
  smallest outstanding load (submitted but unanswered requests: queued,
  in-flight, or still on a scheduled arrival event), ties broken by lowest
  replica index so routing is deterministic.

Routing is **health-aware**: a replica whose fabric reports unhealthy
(any tier with zero online workers — e.g. a
:class:`~repro.hierarchy.faults.WorkerCrash` blackout window), or one
manually marked down with :meth:`LoadBalancer.mark_down`, is excluded
from :meth:`~LoadBalancer.pick` until it recovers.  When *every* replica
is down, submission raises a clear :class:`RuntimeError` instead of
routing work into a black hole (or crashing with an index error).

Replicas are independent discrete-event simulations; the balancer only
decides *where* work enters.  ``run_until_idle`` drains every replica and
merges their responses.

**Hedged offloads** change one thing: replicas stop being independent
timelines.  When a plan (or caller) carries a
:class:`~repro.serving.resilience.HedgePolicy`, :meth:`LoadBalancer.from_plan`
builds every replica over ONE shared :class:`~repro.serving.clock.EventLoop`
and :meth:`enable_hedging` unifies their request-id source and wires each
fabric's ``hedge_router`` back to :meth:`_hedge_sibling` — so a slow offload
on one stack can race a speculative copy on a sibling stack, first arrival
wins, and the merged response stream stays globally unique.  A hedge win
lands its response on the *sibling's* ledger; use :meth:`report` for the
fleet-honest view.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.cascade import Thresholds
from ..hierarchy.plan import PartitionPlan
from .admission import AdmissionStats
from .clock import EventLoop, SimulatedClock, WallClock
from .fabric import DistributedServingFabric, FabricReport, FabricResponse
from .resilience import HedgePolicy, ResilienceStats

__all__ = ["LoadBalancer", "BALANCER_STRATEGIES"]

BALANCER_STRATEGIES = ("round-robin", "least-loaded")


class LoadBalancer:
    """Route submissions across replica fabrics serving the same model."""

    def __init__(
        self,
        replicas: Sequence[DistributedServingFabric],
        strategy: str = "round-robin",
    ) -> None:
        if not replicas:
            raise ValueError("at least one replica fabric is required")
        if strategy not in BALANCER_STRATEGIES:
            raise ValueError(
                f"unknown strategy '{strategy}' (choose from {BALANCER_STRATEGIES})"
            )
        self.replicas = list(replicas)
        self.strategy = strategy
        #: Submissions routed to each replica, by index.
        self.assignments: List[int] = [0] * len(self.replicas)
        self._cursor = 0
        self._forced_down: set = set()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_plan(
        cls,
        plan: PartitionPlan,
        thresholds: Thresholds,
        strategy: str = "round-robin",
        **kwargs,
    ) -> "LoadBalancer":
        """Stamp out ``plan.replicas`` identical fabrics and balance them.

        Each replica materialises its own deployment from the plan (shared
        model, private nodes/links/queues); keyword arguments are forwarded
        to every :meth:`DistributedServingFabric.from_plan` call.

        When the plan (or a ``hedge=`` kwarg) carries a
        :class:`~repro.serving.resilience.HedgePolicy` and there are
        sibling replicas, the fabrics are built over one shared event loop
        (unless a shared ``events=`` was passed explicitly) and hedging is
        wired via :meth:`enable_hedging`.
        """
        hedge = kwargs.pop("hedge", plan.hedge)
        events = kwargs.pop("events", None)
        if hedge is not None and plan.replicas > 1 and events is None:
            # Hedge copies race their originals on one timeline, so sibling
            # replicas must share a loop (and therefore a clock).
            clock = kwargs.pop("clock", None)
            if clock is None:
                clock = (
                    WallClock()
                    if kwargs.get("backend") == "thread"
                    else SimulatedClock()
                )
            events = EventLoop(clock)
        if events is not None:
            kwargs["events"] = events
        if hedge is not None:
            kwargs["hedge"] = hedge
        fabrics = [
            DistributedServingFabric.from_plan(plan, thresholds, **kwargs)
            for _ in range(plan.replicas)
        ]
        balancer = cls(fabrics, strategy=strategy)
        if hedge is not None and plan.replicas > 1:
            balancer.enable_hedging()
        return balancer

    # ------------------------------------------------------------------ #
    def _depth(self, fabric: DistributedServingFabric) -> int:
        # Outstanding = everything submitted that has not been answered or
        # turned away.  Counting from the submission side (rather than the
        # tier queues) makes least-loaded meaningful in simulated time too,
        # where arrivals sit on scheduled events until the loop runs.
        stats = fabric.admission_stats
        return (
            fabric.offered
            - len(fabric.responses)
            - stats.rejected
            - stats.dropped
        )

    @staticmethod
    def _online_workers(fabric: DistributedServingFabric) -> int:
        """Total online (non-crashed) worker slots across the stack's tiers.

        A replica can be technically "up" (every tier has >= 1 online
        worker) while a chaos window has thinned one of its tiers; routing
        ties should prefer the stack with more surviving capacity.
        """
        return sum(tier.pool.online for tier in fabric.tiers)

    # -- hedged offloads ------------------------------------------------- #
    def enable_hedging(self, policy: Optional[HedgePolicy] = None) -> "LoadBalancer":
        """Wire hedged offloads across the replica set.

        Every replica must share one event loop (a hedge copy and its
        original race on a single timeline — :meth:`from_plan` arranges
        this) and carry an offload :class:`~repro.serving.resilience.RetryPolicy`.
        The request-id source is unified across replicas so the merged
        response stream stays globally unique (wire hedging *before*
        submitting work), and each fabric's ``hedge_router`` is pointed at
        :meth:`_hedge_sibling`.  ``policy`` overrides/installs the
        :class:`~repro.serving.resilience.HedgePolicy` on every replica;
        without it every replica must already carry one.
        """
        if len(self.replicas) < 2:
            raise ValueError(
                "hedging needs replicas >= 2: hedge copies go to sibling stacks"
            )
        loop = self.replicas[0].events
        if any(fabric.events is not loop for fabric in self.replicas):
            raise ValueError(
                "hedging requires every replica to share one EventLoop — "
                "build the fabrics with a common events=... "
                "(LoadBalancer.from_plan does this automatically)"
            )
        shared_ids = self.replicas[0]._ids
        for index, fabric in enumerate(self.replicas):
            if fabric.offload_policy is None:
                raise ValueError(
                    f"replica {index} has no offload RetryPolicy; hedge "
                    "copies ride the resilient offload path"
                )
            if policy is not None:
                fabric.hedge_policy = policy
            elif fabric.hedge_policy is None:
                raise ValueError(
                    f"replica {index} has no HedgePolicy — pass policy=... "
                    "or construct the fabrics with hedge=..."
                )
            fabric._ids = shared_ids
            fabric.hedge_router = self._hedge_sibling
        return self

    def _hedge_sibling(
        self, origin: DistributedServingFabric, origin_tier: int
    ) -> Optional[DistributedServingFabric]:
        """Pick the sibling replica a hedge copy is sent to, or ``None``.

        Healthy stacks only (never the origin), least outstanding load
        first, more online workers breaking depth ties, then lowest index —
        fully deterministic, so seeded simulated runs replay hedge routing
        byte for byte.
        """
        candidates = [
            index
            for index in self.healthy_indices()
            if self.replicas[index] is not origin
        ]
        if not candidates:
            return None
        best = min(
            candidates,
            key=lambda index: (
                self._depth(self.replicas[index]),
                -self._online_workers(self.replicas[index]),
                index,
            ),
        )
        return self.replicas[best]

    # -- health --------------------------------------------------------- #
    def mark_down(self, index: int) -> None:
        """Administratively exclude a replica from routing (idempotent)."""
        self._forced_down.add(self._check_index(index))

    def mark_up(self, index: int) -> None:
        """Lift an administrative exclusion (the fabric's own health still
        applies)."""
        self._forced_down.discard(self._check_index(index))

    def _check_index(self, index: int) -> int:
        if not 0 <= index < len(self.replicas):
            raise IndexError(
                f"replica index {index} out of range (have {len(self.replicas)})"
            )
        return int(index)

    def healthy_indices(self) -> List[int]:
        """Replicas currently eligible for routing, in index order."""
        return [
            index
            for index, fabric in enumerate(self.replicas)
            if index not in self._forced_down and getattr(fabric, "healthy", True)
        ]

    def pick(self) -> int:
        """The replica index the next submission will be routed to.

        Unhealthy replica stacks (a tier with zero online workers, or
        :meth:`mark_down`) are routed around; with every replica down this
        raises :class:`RuntimeError` rather than submitting into the void.
        """
        candidates = self.healthy_indices()
        if not candidates:
            raise RuntimeError(
                f"all {len(self.replicas)} replica stacks are unhealthy "
                "(each needs at least one online worker per tier and no "
                "mark_down); wait for a crash window to close or mark_up a "
                "replica before submitting"
            )
        if self.strategy == "round-robin":
            # The next healthy replica at or after the rotation cursor, so
            # healthy stacks still see strict rotation around the outage.
            for step in range(len(self.replicas)):
                index = (self._cursor + step) % len(self.replicas)
                if index in candidates:
                    return index
        # Least-loaded: smallest outstanding depth; depth ties prefer the
        # stack with more online workers (a replica whose cloud tier is
        # mid-crash-window stops winning ties while technically "up"),
        # then lowest index — deterministic either way.
        return min(
            candidates,
            key=lambda index: (
                self._depth(self.replicas[index]),
                -self._online_workers(self.replicas[index]),
                index,
            ),
        )

    def submit(
        self,
        views: np.ndarray,
        client_id: str = "default",
        target: Optional[int] = None,
        at: Optional[float] = None,
        slo_s: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Route one sample; returns ``(replica_index, request_id)``."""
        replica, ids = self.submit_many(
            [views], client_id=client_id, targets=[target], at=at, slo_s=slo_s
        )
        return replica, ids[0]

    def submit_many(
        self,
        views_list: Sequence[np.ndarray],
        client_id: str = "default",
        targets: Optional[Sequence[Optional[int]]] = None,
        at: Optional[float] = None,
        slo_s: Optional[float] = None,
    ) -> Tuple[int, List[int]]:
        """Route a co-arriving group to one replica; returns its index + ids."""
        index = self.pick()
        ids = self.replicas[index].submit_many(
            views_list, client_id=client_id, targets=targets, at=at, slo_s=slo_s
        )
        self.assignments[index] += len(ids)
        # Rotation resumes after the replica actually used (which pick() may
        # have skipped ahead to); with every replica healthy this is the
        # same strict rotation as before.
        self._cursor = index + 1
        return index, ids

    # ------------------------------------------------------------------ #
    def run_until_idle(self, drain: bool = False) -> List[FabricResponse]:
        """Drain every replica; responses merged in (replica, id) order.

        Replicas sharing one event loop (hedging) are drained in a single
        run — their events interleave on the shared timeline; independent
        replicas are drained sequentially as before.
        """
        loop = self.replicas[0].events
        if len(self.replicas) > 1 and all(
            fabric.events is loop for fabric in self.replicas
        ):
            previous = [fabric._draining for fabric in self.replicas]
            for fabric in self.replicas:
                fabric._draining = fabric._draining or drain
            try:
                loop.run()
            finally:
                for fabric, before in zip(self.replicas, previous):
                    fabric._draining = before
            return self.responses
        responses: List[FabricResponse] = []
        for fabric in self.replicas:
            responses.extend(fabric.run_until_idle(drain=drain))
        return responses

    @property
    def responses(self) -> List[FabricResponse]:
        merged: List[FabricResponse] = []
        for fabric in self.replicas:
            merged.extend(fabric.responses)
        return merged

    def report(
        self,
        responses: Optional[Sequence[FabricResponse]] = None,
        duration_s: Optional[float] = None,
    ) -> FabricReport:
        """Fleet-level report: merged responses, summed hedge/resilience
        counters, and per-replica breaker metadata keyed ``r{i}:a->b``.

        A hedge win lands its response on the sibling's ledger, so only
        this merged view (never a single replica's
        :meth:`DistributedServingFabric.report`) accounts every request
        exactly once under hedging.
        """
        merged = list(self.responses if responses is None else responses)
        base = self.replicas[0].report(merged, duration_s=duration_s)
        stats = ResilienceStats.merged(
            [fabric.resilience_stats for fabric in self.replicas]
        )
        base.hedge_total = stats.hedges
        base.hedge_win_fraction = (
            stats.hedge_wins / stats.hedges if stats.hedges else 0.0
        )
        base.hedge_bytes = sum(fabric.hedge_bytes for fabric in self.replicas)
        base.metadata = {
            "resilience": stats.as_dict(),
            "admission": AdmissionStats.merged(
                [fabric.admission_stats for fabric in self.replicas]
            ).as_dict(),
            "breakers": {
                f"r{index}:{key}": value
                for index, fabric in enumerate(self.replicas)
                for key, value in fabric.report_metadata()["breakers"].items()
            },
        }
        return base

    def close(self) -> None:
        for fabric in self.replicas:
            fabric.close()

    def __enter__(self) -> "LoadBalancer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
