"""Load balancing across replicated tier stacks.

A :class:`~repro.hierarchy.plan.PartitionPlan` with ``replicas > 1``
describes several identical device→[edge]→cloud stacks serving the same
trained model.  :class:`LoadBalancer` stamps those stacks out (one
:class:`~repro.serving.fabric.DistributedServingFabric` per replica, each
over its own freshly-materialised deployment — the *model* is shared, the
simulator state is not) and routes incoming work across them:

* ``"round-robin"`` — strict rotation, oblivious to load;
* ``"least-loaded"`` — each submission goes to the replica with the
  smallest outstanding load (submitted but unanswered requests: queued,
  in-flight, or still on a scheduled arrival event), ties broken by lowest
  replica index so routing is deterministic.

Routing is **health-aware**: a replica whose fabric reports unhealthy
(any tier with zero online workers — e.g. a
:class:`~repro.hierarchy.faults.WorkerCrash` blackout window), or one
manually marked down with :meth:`LoadBalancer.mark_down`, is excluded
from :meth:`~LoadBalancer.pick` until it recovers.  When *every* replica
is down, submission raises a clear :class:`RuntimeError` instead of
routing work into a black hole (or crashing with an index error).

Replicas are independent discrete-event simulations; the balancer only
decides *where* work enters.  ``run_until_idle`` drains every replica and
merges their responses.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.cascade import Thresholds
from ..hierarchy.plan import PartitionPlan
from .fabric import DistributedServingFabric, FabricResponse

__all__ = ["LoadBalancer", "BALANCER_STRATEGIES"]

BALANCER_STRATEGIES = ("round-robin", "least-loaded")


class LoadBalancer:
    """Route submissions across replica fabrics serving the same model."""

    def __init__(
        self,
        replicas: Sequence[DistributedServingFabric],
        strategy: str = "round-robin",
    ) -> None:
        if not replicas:
            raise ValueError("at least one replica fabric is required")
        if strategy not in BALANCER_STRATEGIES:
            raise ValueError(
                f"unknown strategy '{strategy}' (choose from {BALANCER_STRATEGIES})"
            )
        self.replicas = list(replicas)
        self.strategy = strategy
        #: Submissions routed to each replica, by index.
        self.assignments: List[int] = [0] * len(self.replicas)
        self._cursor = 0
        self._forced_down: set = set()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_plan(
        cls,
        plan: PartitionPlan,
        thresholds: Thresholds,
        strategy: str = "round-robin",
        **kwargs,
    ) -> "LoadBalancer":
        """Stamp out ``plan.replicas`` identical fabrics and balance them.

        Each replica materialises its own deployment from the plan (shared
        model, private nodes/links/queues); keyword arguments are forwarded
        to every :meth:`DistributedServingFabric.from_plan` call.
        """
        fabrics = [
            DistributedServingFabric.from_plan(plan, thresholds, **kwargs)
            for _ in range(plan.replicas)
        ]
        return cls(fabrics, strategy=strategy)

    # ------------------------------------------------------------------ #
    def _depth(self, fabric: DistributedServingFabric) -> int:
        # Outstanding = everything submitted that has not been answered or
        # turned away.  Counting from the submission side (rather than the
        # tier queues) makes least-loaded meaningful in simulated time too,
        # where arrivals sit on scheduled events until the loop runs.
        stats = fabric.admission_stats
        return (
            fabric.offered
            - len(fabric.responses)
            - stats.rejected
            - stats.dropped
        )

    # -- health --------------------------------------------------------- #
    def mark_down(self, index: int) -> None:
        """Administratively exclude a replica from routing (idempotent)."""
        self._forced_down.add(self._check_index(index))

    def mark_up(self, index: int) -> None:
        """Lift an administrative exclusion (the fabric's own health still
        applies)."""
        self._forced_down.discard(self._check_index(index))

    def _check_index(self, index: int) -> int:
        if not 0 <= index < len(self.replicas):
            raise IndexError(
                f"replica index {index} out of range (have {len(self.replicas)})"
            )
        return int(index)

    def healthy_indices(self) -> List[int]:
        """Replicas currently eligible for routing, in index order."""
        return [
            index
            for index, fabric in enumerate(self.replicas)
            if index not in self._forced_down and getattr(fabric, "healthy", True)
        ]

    def pick(self) -> int:
        """The replica index the next submission will be routed to.

        Unhealthy replica stacks (a tier with zero online workers, or
        :meth:`mark_down`) are routed around; with every replica down this
        raises :class:`RuntimeError` rather than submitting into the void.
        """
        candidates = self.healthy_indices()
        if not candidates:
            raise RuntimeError(
                f"all {len(self.replicas)} replica stacks are unhealthy "
                "(each needs at least one online worker per tier and no "
                "mark_down); wait for a crash window to close or mark_up a "
                "replica before submitting"
            )
        if self.strategy == "round-robin":
            # The next healthy replica at or after the rotation cursor, so
            # healthy stacks still see strict rotation around the outage.
            for step in range(len(self.replicas)):
                index = (self._cursor + step) % len(self.replicas)
                if index in candidates:
                    return index
        depths = [self._depth(self.replicas[index]) for index in candidates]
        return candidates[int(np.argmin(depths))]  # lowest index on ties

    def submit(
        self,
        views: np.ndarray,
        client_id: str = "default",
        target: Optional[int] = None,
        at: Optional[float] = None,
    ) -> Tuple[int, int]:
        """Route one sample; returns ``(replica_index, request_id)``."""
        replica, ids = self.submit_many(
            [views], client_id=client_id, targets=[target], at=at
        )
        return replica, ids[0]

    def submit_many(
        self,
        views_list: Sequence[np.ndarray],
        client_id: str = "default",
        targets: Optional[Sequence[Optional[int]]] = None,
        at: Optional[float] = None,
    ) -> Tuple[int, List[int]]:
        """Route a co-arriving group to one replica; returns its index + ids."""
        index = self.pick()
        ids = self.replicas[index].submit_many(
            views_list, client_id=client_id, targets=targets, at=at
        )
        self.assignments[index] += len(ids)
        # Rotation resumes after the replica actually used (which pick() may
        # have skipped ahead to); with every replica healthy this is the
        # same strict rotation as before.
        self._cursor = index + 1
        return index, ids

    # ------------------------------------------------------------------ #
    def run_until_idle(self, drain: bool = False) -> List[FabricResponse]:
        """Drain every replica; responses merged in (replica, id) order."""
        responses: List[FabricResponse] = []
        for fabric in self.replicas:
            responses.extend(fabric.run_until_idle(drain=drain))
        return responses

    @property
    def responses(self) -> List[FabricResponse]:
        merged: List[FabricResponse] = []
        for fabric in self.replicas:
            merged.extend(fabric.responses)
        return merged

    def close(self) -> None:
        for fabric in self.replicas:
            fabric.close()

    def __enter__(self) -> "LoadBalancer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
