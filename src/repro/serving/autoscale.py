"""Watermark-driven worker autoscaling for the distributed serving fabric.

The elastic half of the tier plane: a
:class:`~repro.hierarchy.plan.PartitionPlan` carries per-tier
:class:`~repro.hierarchy.plan.AutoscalePolicy` watermarks, and the
:class:`Autoscaler` here turns them into live pool resizes on the fabric.

The scaler is deliberately *passive*: it never schedules its own events, it
only reacts inside the fabric's existing arrival/completion hooks
(:meth:`Autoscaler.observe_arrival` / :meth:`Autoscaler.observe`).  That
keeps ``run_until_idle`` semantics intact — an idle fabric stays idle
instead of being kept alive by a periodic evaluation timer — and it means
scaling decisions happen exactly when the evidence changes: a queue can
only cross the high watermark on an arrival, and only fall below the low
watermark on a completion.

Scale-up is immediate (backlog at the high watermark is evidence *now*);
scale-down is damped by the policy's cooldown since the last size change,
so the lull between two bursts does not flap the pool.  A
:class:`RateTracker` per tier additionally measures the windowed arrival
rate, which the optional ``target_rps_per_worker`` floor uses to keep
enough workers provisioned for the observed offered load even when the
queue momentarily drains.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Sequence, Tuple, Union

from ..hierarchy.plan import AutoscalePolicy

__all__ = ["RateTracker", "Autoscaler"]


class RateTracker:
    """Sliding-window arrival-rate estimator (event timestamps in a deque)."""

    def __init__(self, window_s: float) -> None:
        if not window_s > 0.0:
            raise ValueError(f"window_s must be > 0, got {window_s}")
        self.window_s = float(window_s)
        self._events: Deque[Tuple[float, int]] = deque()
        self._count = 0

    def observe(self, now: float, count: int = 1) -> None:
        self._events.append((now, count))
        self._count += count
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - self.window_s
        while self._events and self._events[0][0] <= horizon:
            _, count = self._events.popleft()
            self._count -= count

    def rate(self, now: float) -> float:
        """Arrivals per second over the trailing window."""
        self._prune(now)
        return self._count / self.window_s


class Autoscaler:
    """Per-tier watermark scaling driven by the fabric's own event hooks.

    Parameters
    ----------
    fabric:
        The :class:`~repro.serving.fabric.DistributedServingFabric` whose
        tiers to scale (the scaler calls its ``_resize_tier``).
    policies:
        One :class:`~repro.hierarchy.plan.AutoscalePolicy` per tier (a
        single policy broadcasts; ``None`` entries leave that tier's pool
        alone).
    """

    def __init__(
        self,
        fabric,
        policies: Union[AutoscalePolicy, Sequence[Optional[AutoscalePolicy]]],
    ) -> None:
        self.fabric = fabric
        self.policies: List[Optional[AutoscalePolicy]] = []
        self.trackers: List[Optional[RateTracker]] = []
        self._last_change: List[Optional[float]] = []
        #: Every size change as ``(time, tier_name, workers)`` — the worker
        #: trajectory the elastic experiment plots.
        self.trajectory: List[Tuple[float, str, int]] = []
        #: Peak pool size ever reached, per tier index.
        self.peak_workers: List[int] = [len(t.pool) for t in fabric.tiers]
        self.reconfigure(policies)

    # ------------------------------------------------------------------ #
    def reconfigure(
        self,
        policies: Union[AutoscalePolicy, Sequence[Optional[AutoscalePolicy]]],
    ) -> None:
        """Swap in a new per-tier policy set (used by ``apply_plan``).

        Rate trackers are rebuilt only where the window changed, so the
        observed-rate floor keeps its history across a re-partition.
        """
        num_tiers = len(self.fabric.tiers)
        if isinstance(policies, AutoscalePolicy) or policies is None:
            resolved: List[Optional[AutoscalePolicy]] = [policies] * num_tiers
        else:
            resolved = list(policies)
            if len(resolved) != num_tiers:
                raise ValueError(
                    f"policies must have {num_tiers} entries, got {len(resolved)}"
                )
        old_trackers = self.trackers if self.trackers else [None] * num_tiers
        trackers: List[Optional[RateTracker]] = []
        for index, policy in enumerate(resolved):
            if policy is None:
                trackers.append(None)
                continue
            previous = old_trackers[index] if index < len(old_trackers) else None
            if previous is not None and previous.window_s == policy.window_s:
                trackers.append(previous)
            else:
                trackers.append(RateTracker(policy.window_s))
        self.policies = resolved
        self.trackers = trackers
        if len(self._last_change) != num_tiers:
            self._last_change = [None] * num_tiers

    # ------------------------------------------------------------------ #
    def observe_arrival(self, tier_index: int, now: float, count: int = 1) -> None:
        """Hook: ``count`` requests just joined tier ``tier_index``'s queue."""
        tracker = self.trackers[tier_index]
        if tracker is not None:
            tracker.observe(now, count)
        self._evaluate(tier_index, now)

    def observe(self, fabric, now: float) -> None:
        """Hook: a batch completed somewhere — re-evaluate every tier."""
        for tier_index in range(len(fabric.tiers)):
            self._evaluate(tier_index, now)

    # ------------------------------------------------------------------ #
    def _rate_floor(self, tier_index: int, policy: AutoscalePolicy, now: float) -> int:
        if policy.target_rps_per_worker <= 0.0:
            return policy.min_workers
        tracker = self.trackers[tier_index]
        needed = math.ceil(tracker.rate(now) / policy.target_rps_per_worker)
        return int(min(max(needed, policy.min_workers), policy.max_workers))

    def _evaluate(self, tier_index: int, now: float) -> None:
        policy = self.policies[tier_index]
        if policy is None:
            return
        tier = self.fabric.tiers[tier_index]
        current = len(tier.pool)
        depth = len(tier.queue)
        floor = self._rate_floor(tier_index, policy, now)

        target = current
        if depth >= policy.high_watermark and current < policy.max_workers:
            target = min(current + policy.step, policy.max_workers)
        elif depth <= policy.low_watermark and current > max(policy.min_workers, floor):
            last = self._last_change[tier_index]
            if last is None or now - last >= policy.cooldown_s:
                target = max(current - policy.step, policy.min_workers, floor)
        target = max(target, floor)
        if target == current:
            return

        actual = self.fabric._resize_tier(tier_index, target, now)
        if actual != current:
            self._last_change[tier_index] = now
            self.trajectory.append((now, tier.name, actual))
            self.peak_workers[tier_index] = max(self.peak_workers[tier_index], actual)

    # ------------------------------------------------------------------ #
    def workers(self) -> List[int]:
        """Current pool size per tier."""
        return [len(tier.pool) for tier in self.fabric.tiers]
