"""Pluggable worker-pool backends for the serving layers.

The fabric's :class:`~repro.serving.fabric.TierServer` (and the single-tier
:class:`~repro.serving.server.DDNNServer`) describe *what* a worker does —
run a batch through a tier section or the cascade, then hand the result to a
completion callback.  *How* that work occupies time is the pool's job, and
there are two answers:

* :class:`SimulatedWorkerPool` — the deterministic discrete-event slots the
  paper-table replays use: the batch is computed inline at dispatch, the
  worker is marked busy for the *modelled* service time, and the completion
  fires as a simulated-time event.  Semantics (event order, timestamps,
  results) are byte-identical to the pre-pool fabric.
* :class:`ThreadPoolWorkerPool` — real concurrency: each worker slot owns a
  thread on a :class:`~concurrent.futures.ThreadPoolExecutor` plus its own
  compiled plan bundle (disjoint buffer arenas), the batch runs on the
  worker thread while the event loop keeps dispatching, and the completion
  is posted back to the loop when the forward *actually* finishes.  Against
  a :class:`~repro.serving.clock.WallClock` this turns the fabric's
  throughput into a wall-clock number — numpy's GEMM kernels release the
  GIL, so compiled forwards on separate threads genuinely overlap.

Both pools present the same four-method surface (:meth:`WorkerPool.acquire`
/ :meth:`~WorkerPool.execute` / :meth:`~WorkerPool.release` /
:meth:`~WorkerPool.shutdown`), so the fabric script that replays a paper
table is the same script that serves concurrently — only the clock/pool
pair changes.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from .clock import EventLoop

__all__ = [
    "WorkerHandle",
    "WorkerPool",
    "SimulatedWorkerPool",
    "ThreadPoolWorkerPool",
    "WORKER_POOL_BACKENDS",
    "make_worker_pool",
]

#: Task given to a worker: receives the worker's plan bundle, returns the
#: processed result (a section's ``TierResult`` or the cascade's routing).
WorkerTask = Callable[[object], object]
#: Maps a task's result to its modelled service time (simulated pools only).
ServiceFor = Callable[[object], float]
#: Completion callback: ``on_complete(result, fire_time)`` on the loop thread.
OnComplete = Callable[[object, float], None]


@dataclass
class WorkerHandle:
    """One worker slot: occupancy bookkeeping plus its private plan bundle."""

    index: int
    busy_until: float = 0.0
    plans: object = None  # per-worker CompiledDDNN bundle (compile=True only)
    #: Crashed by a chaos schedule: the slot exists but takes no work until
    #: its crash window closes (see :meth:`WorkerPool.apply_offline`).
    offline: bool = False


class WorkerPool:
    """Occupancy-tracked worker slots feeding completions to an event loop."""

    backend = "abstract"

    def __init__(
        self,
        events: EventLoop,
        num_workers: int,
        worker_plans: Optional[Sequence[object]] = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        plans = list(worker_plans) if worker_plans is not None else [None] * num_workers
        if len(plans) != num_workers:
            raise ValueError("worker_plans must provide one bundle per worker")
        self.events = events
        self.workers: List[WorkerHandle] = [
            WorkerHandle(index, plans=plan) for index, plan in enumerate(plans)
        ]

    def __len__(self) -> int:
        return len(self.workers)

    def acquire(self, now: float) -> Optional[WorkerHandle]:
        """The first online worker free at ``now``, or ``None`` (does not
        mark busy; :meth:`execute` does)."""
        for worker in self.workers:
            if not worker.offline and worker.busy_until <= now:
                return worker
        return None

    @property
    def online(self) -> int:
        """Worker slots not currently crashed by a chaos schedule."""
        return sum(1 for worker in self.workers if not worker.offline)

    def apply_offline(self, count: int, now: float) -> int:
        """Declaratively mark exactly ``count`` workers offline (chaos crashes).

        Idle workers crash first; a worker mid-batch finishes its in-flight
        work before going dark (batch-boundary crash semantics — the
        discrete-event simulator has no half-computed state to lose).
        Called at every crash-window boundary with the schedule's current
        offline count, so restarts are just ``count`` dropping.  Returns
        the number offline.
        """
        count = max(0, min(int(count), len(self.workers)))
        for worker in self.workers:
            worker.offline = False
        if count:
            ranked = sorted(
                self.workers, key=lambda worker: (worker.busy_until > now, worker.index)
            )
            for worker in ranked[:count]:
                worker.offline = True
        return count

    def execute(
        self,
        worker: WorkerHandle,
        task: WorkerTask,
        service_for: ServiceFor,
        on_complete: OnComplete,
    ) -> None:
        """Occupy ``worker`` with ``task(worker.plans)`` and arrange for
        ``on_complete(result, fire_time)`` to run on the loop when done."""
        raise NotImplementedError

    def release(self, worker: WorkerHandle, now: float) -> None:
        """Return ``worker`` to the free list as of ``now``."""
        worker.busy_until = now

    def resize(
        self,
        num_workers: int,
        now: float,
        worker_plans: Optional[Sequence[object]] = None,
    ) -> int:
        """Grow or shrink the pool to ``num_workers`` slots; returns the
        actual size.

        Growing appends fresh (immediately free) slots, one per entry of
        ``worker_plans`` when given.  Shrinking removes *free* slots from
        the tail — a worker mid-batch is never revoked, so a shrink under
        load lands partially and the caller sees the actual size; the next
        resize (or the autoscaler's next evaluation) finishes the job once
        the stragglers complete.
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        current = len(self.workers)
        if num_workers > current:
            added = num_workers - current
            plans = list(worker_plans) if worker_plans is not None else [None] * added
            if len(plans) != added:
                raise ValueError(
                    f"worker_plans must provide one bundle per added worker "
                    f"({added}), got {len(plans)}"
                )
            next_index = max(worker.index for worker in self.workers) + 1
            for offset, plan in enumerate(plans):
                self.workers.append(
                    WorkerHandle(next_index + offset, busy_until=now, plans=plan)
                )
        elif num_workers < current:
            removable = current - num_workers
            retained: List[WorkerHandle] = []
            for worker in reversed(self.workers):
                if removable > 0 and worker.busy_until <= now:
                    removable -= 1
                    continue
                retained.append(worker)
            self.workers = list(reversed(retained))
        return len(self.workers)

    def shutdown(self) -> None:
        """Release any OS resources (threads); idempotent."""


class SimulatedWorkerPool(WorkerPool):
    """Deterministic discrete-event slots — the paper-table default.

    The task runs inline at dispatch time (on the loop thread), the worker
    is busy for the *modelled* service time, and the completion fires as a
    simulated-time event — exactly the pre-pool fabric behaviour, event for
    event.
    """

    backend = "simulated"

    def execute(
        self,
        worker: WorkerHandle,
        task: WorkerTask,
        service_for: ServiceFor,
        on_complete: OnComplete,
    ) -> None:
        result = task(worker.plans)
        service = service_for(result)
        worker.busy_until = self.events.clock.now + service
        self.events.schedule(
            worker.busy_until,
            lambda fire_time, r=result: on_complete(r, fire_time),
        )


class ThreadPoolWorkerPool(WorkerPool):
    """Real thread-pool workers against a wall clock.

    Each worker slot maps to one executor thread running compiled forwards
    on its private plan bundle; the modelled service time is ignored — the
    completion is posted back to the event loop when the computation
    *actually* finishes, and the loop's in-flight accounting keeps ``run()``
    alive until it lands.  A task that raises on the worker thread re-raises
    on the loop thread (wrapped in :class:`RuntimeError`), so failures
    surface instead of deadlocking the drain.

    Chaos crash windows work here too: :meth:`WorkerPool.apply_offline`
    runs on the loop thread at each window boundary, a worker
    mid-batch finishes its real computation before going dark, and the
    loop's idle gates keep ``run()`` alive while queued work waits out a
    crash window for the restart boundary.
    """

    backend = "thread"

    def __init__(
        self,
        events: EventLoop,
        num_workers: int,
        worker_plans: Optional[Sequence[object]] = None,
        name: str = "worker",
    ) -> None:
        super().__init__(events, num_workers, worker_plans)
        self._name_prefix = f"repro-{name}"
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix=self._name_prefix
        )
        self._closed = False

    def execute(
        self,
        worker: WorkerHandle,
        task: WorkerTask,
        service_for: ServiceFor,
        on_complete: OnComplete,
    ) -> None:
        worker.busy_until = math.inf  # busy until the real completion lands
        self.events.begin_inflight()
        future = self._executor.submit(task, worker.plans)

        def _done(future) -> None:
            try:
                try:
                    result = future.result()
                except BaseException as exc:

                    def _reraise(fire_time: float, exc: BaseException = exc) -> None:
                        raise RuntimeError(
                            f"worker {worker.index} task failed: {exc!r}"
                        ) from exc

                    self.events.post(_reraise)
                else:
                    self.events.post(
                        lambda fire_time, r=result: on_complete(r, fire_time)
                    )
            finally:
                self.events.end_inflight()

        future.add_done_callback(_done)

    def resize(
        self,
        num_workers: int,
        now: float,
        worker_plans: Optional[Sequence[object]] = None,
    ) -> int:
        """Resize by executor re-creation (a live executor cannot shrink).

        The handle bookkeeping follows the base rule (busy slots survive a
        shrink); when the slot count actually changes, a new executor sized
        to it replaces the old one, which is shut down without waiting —
        futures already running on it still complete and post their
        results, they just become the old executor's last work.
        """
        if self._closed:
            raise RuntimeError("cannot resize a shut-down worker pool")
        before = len(self.workers)
        actual = super().resize(num_workers, now, worker_plans)
        if actual != before:
            previous = self._executor
            self._executor = ThreadPoolExecutor(
                max_workers=actual, thread_name_prefix=self._name_prefix
            )
            previous.shutdown(wait=False)
        return actual

    def shutdown(self) -> None:
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)


WORKER_POOL_BACKENDS = ("simulated", "thread")


def make_worker_pool(
    backend: str,
    events: EventLoop,
    num_workers: int,
    worker_plans: Optional[Sequence[object]] = None,
    name: str = "worker",
) -> WorkerPool:
    """Build the named pool backend over ``events``."""
    if backend == "simulated":
        return SimulatedWorkerPool(events, num_workers, worker_plans)
    if backend == "thread":
        return ThreadPoolWorkerPool(events, num_workers, worker_plans, name=name)
    raise ValueError(
        f"unknown worker-pool backend '{backend}' (choose from {WORKER_POOL_BACKENDS})"
    )
