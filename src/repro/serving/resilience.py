"""Offload resilience primitives: deadlines, retry backoff, circuit breaking.

When a :class:`~repro.hierarchy.faults.ChaosSchedule` can darken links or
lose messages, an offload to the next tier is no longer guaranteed to
arrive — so the fabric needs the standard tail-tolerant playbook (Dean &
Barroso's *The Tail at Scale*; gRPC-style deadline propagation):

* :class:`RetryPolicy` — every offload attempt carries a **deadline**; on
  timeout the origin tier retries with exponential backoff plus jitter, up
  to ``max_retries`` extra attempts, then **fails over** to its local exit
  (a degraded but honest answer, like ``shed-local``).
* :class:`CircuitBreaker` — a per-link closed → open → half-open state
  machine: after ``failure_threshold`` consecutive failures the link is
  declared dark and further offloads fail fast to the local exit instead of
  burning a full deadline + backoff ladder each; after ``reset_timeout_s``
  a single half-open probe is let through, and its outcome closes or
  re-opens the breaker.
* :class:`Deadline` — an absolute end-to-end expiry stamped at ingress
  from a per-request (or per-plan) ``slo_s`` budget. It rides the request
  through every tier: queued work that expires is retired before a worker
  burns compute on it, and the retry ladder is clipped to the remaining
  budget (no re-send that cannot possibly land in time).
* :class:`HedgePolicy` — speculative re-sends to a sibling replica stack:
  once an offload's first attempt has consumed ``trigger_fraction`` of its
  remaining budget, up to ``max_hedges`` copies race it through the
  balancer's other replicas; first arrival wins, losers are cancelled.
* :class:`ResilienceStats` — fabric-wide accounting of attempts, timeouts,
  retries, failovers, breaker fast-fails, expired-deadline retirements and
  hedges, so degraded service is always measured, never silent.

Everything here is clock-agnostic pure state; the fabric drives it from
the event loop, which keeps the whole recovery path deterministic under
seed on the simulated backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Optional

__all__ = [
    "Deadline",
    "HedgePolicy",
    "RetryPolicy",
    "BreakerState",
    "CircuitBreaker",
    "ResilienceStats",
]


@dataclass(frozen=True)
class Deadline:
    """Absolute end-to-end expiry for one request, stamped at ingress.

    ``expires_at`` is a point on the fabric's clock (simulated or wall);
    ``slo_s`` records the budget it was derived from so reports can state
    hit rates against the original objective. The deadline is advisory
    until it expires — after that the fabric answers the request from the
    deepest exit already cleared (marked ``deadline_exceeded``) rather
    than spending more compute or network on it.
    """

    slo_s: float
    expires_at: float

    def __post_init__(self) -> None:
        if not self.slo_s > 0.0:
            raise ValueError(f"slo_s must be > 0, got {self.slo_s}")

    @classmethod
    def from_slo(cls, slo_s: float, now: float) -> "Deadline":
        return cls(slo_s=float(slo_s), expires_at=now + float(slo_s))

    def remaining(self, now: float) -> float:
        return self.expires_at - now

    def expired(self, now: float) -> bool:
        return now >= self.expires_at


@dataclass(frozen=True)
class HedgePolicy:
    """Speculative offload re-sends to sibling replicas (tail hedging).

    Once an offload group's first attempt has been in flight for
    ``trigger_fraction`` of the budget that remained when it was sent, a
    copy is re-sent to the least-loaded healthy sibling replica; while the
    group stays unsettled further copies follow at the same fraction of
    the then-remaining budget, up to ``max_hedges`` total. The first
    arrival (original or hedge) wins and the losers' delivery events are
    cancelled. Hedging therefore needs requests to carry a
    :class:`Deadline` (the trigger is budget-relative) and a
    :class:`~repro.serving.balancer.LoadBalancer` with ``replicas > 1``
    sharing one event loop.
    """

    trigger_fraction: float = 0.5
    max_hedges: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.trigger_fraction < 1.0:
            raise ValueError(
                f"trigger_fraction must be in (0, 1), got {self.trigger_fraction}"
            )
        if self.max_hedges < 1:
            raise ValueError(f"max_hedges must be >= 1, got {self.max_hedges}")


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline + bounded exponential-backoff retry budget for offloads.

    An offload's first attempt plus ``max_retries`` re-sends each get
    ``deadline_s`` to produce an arrival at the next tier; attempt ``k``'s
    re-send waits ``min(backoff_base_s * backoff_multiplier**(k-1),
    backoff_max_s)`` plus a uniform jitter in ``[0, jitter_s)`` first.
    When the budget is exhausted (or a circuit breaker fast-fails the
    link), the origin tier answers from its own exit instead.
    """

    deadline_s: float = 0.25
    max_retries: int = 3
    backoff_base_s: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 1.0
    jitter_s: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.deadline_s > 0.0:
            raise ValueError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s < 0.0:
            raise ValueError(f"backoff_base_s must be >= 0, got {self.backoff_base_s}")
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.backoff_max_s < self.backoff_base_s:
            raise ValueError("backoff_max_s must be >= backoff_base_s")
        if self.jitter_s < 0.0:
            raise ValueError(f"jitter_s must be >= 0, got {self.jitter_s}")

    def backoff_s(self, failed_attempts: int, rng=None) -> float:
        """Wait before the re-send following ``failed_attempts`` timeouts (>= 1)."""
        if failed_attempts < 1:
            raise ValueError(f"failed_attempts must be >= 1, got {failed_attempts}")
        wait = min(
            self.backoff_base_s * self.backoff_multiplier ** (failed_attempts - 1),
            self.backoff_max_s,
        )
        if self.jitter_s > 0.0 and rng is not None:
            wait += float(rng.uniform(0.0, self.jitter_s))
        return wait

    def worst_case_delay_s(self) -> float:
        """Upper bound on the extra sojourn the recovery machinery can add.

        Every attempt burns its full deadline and every backoff draws its
        maximum jitter before the failover answer is produced — so any
        request's latency under link chaos is bounded by its no-chaos
        latency plus this number (the bound the chaos bench asserts).
        """
        total = (self.max_retries + 1) * self.deadline_s
        for failed in range(1, self.max_retries + 1):
            total += (
                min(
                    self.backoff_base_s * self.backoff_multiplier ** (failed - 1),
                    self.backoff_max_s,
                )
                + self.jitter_s
            )
        return total


class BreakerState(Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class CircuitBreaker:
    """Per-link closed → open → half-open failure detector.

    * **closed** — traffic flows; ``failure_threshold`` consecutive
      failures trip the breaker open (any success resets the count).
    * **open** — :meth:`allow` fast-fails everything until
      ``reset_timeout_s`` has elapsed since the trip.
    * **half-open** — exactly one probe attempt is admitted; its success
      closes the breaker, its failure re-opens it (restarting the timer).
    """

    failure_threshold: int = 3
    reset_timeout_s: float = 1.0
    state: BreakerState = BreakerState.CLOSED
    failures: int = 0
    opened_at: float = -math.inf
    #: State changes over the breaker's lifetime (closed→open, open→half-open,
    #: half-open→closed/open) — surfaced in ``FabricReport.metadata`` so flap
    #: behaviour is observable without reading per-request records.
    transitions: int = 0
    _probing: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if not self.reset_timeout_s > 0.0:
            raise ValueError(
                f"reset_timeout_s must be > 0, got {self.reset_timeout_s}"
            )

    def spawn(self) -> "CircuitBreaker":
        """A fresh breaker with this breaker's thresholds (per-link template)."""
        return CircuitBreaker(self.failure_threshold, self.reset_timeout_s)

    def allow(self, now: float) -> bool:
        """Whether an attempt may be sent at ``now`` (may transition state)."""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now >= self.opened_at + self.reset_timeout_s:
                self.state = BreakerState.HALF_OPEN
                self.transitions += 1
                self._probing = True
                return True
            return False
        # HALF_OPEN: a single outstanding probe at a time.
        if not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self, now: float) -> None:
        if self.state is not BreakerState.CLOSED:
            self.transitions += 1
        self.state = BreakerState.CLOSED
        self.failures = 0
        self._probing = False

    def record_failure(self, now: float) -> None:
        if self.state is BreakerState.OPEN:
            # A straggling timeout from before the trip: already dark.
            return
        if self.state is BreakerState.HALF_OPEN:
            self._trip(now)
            return
        self.failures += 1
        if self.failures >= self.failure_threshold:
            self._trip(now)

    def _trip(self, now: float) -> None:
        self.transitions += 1
        self.state = BreakerState.OPEN
        self.opened_at = now
        self.failures = 0
        self._probing = False


@dataclass
class ResilienceStats:
    """Fabric-wide accounting of the recovery machinery's work."""

    #: Offload send attempts (first sends + re-sends).
    attempts: int = 0
    #: Attempts whose deadline expired before the arrival landed.
    timeouts: int = 0
    #: Re-sends scheduled after a timeout (attempts - first-sends, minus
    #: budget-exhausted failovers).
    retries: int = 0
    #: Requests answered from the origin tier's local exit after the retry
    #: budget (or a breaker fast-fail) gave up on the uplink.
    failovers: int = 0
    #: Offload groups answered locally without a send because the link's
    #: breaker was open.
    breaker_fast_fails: int = 0
    #: Deliveries that arrived after their attempt had already been retired
    #: (deadline raced the transfer); suppressed to keep requests unique.
    late_deliveries: int = 0
    #: Requests retired because their end-to-end :class:`Deadline` expired
    #: (answered from the deepest exit already cleared, never dropped).
    deadline_expired: int = 0
    #: Re-sends skipped because backoff + transfer could not land inside the
    #: remaining budget (the ladder clipped to the deadline).
    clipped_retries: int = 0
    #: Hedge copies sent to sibling replicas, and how many of them won the
    #: race against the original attempt.
    hedges: int = 0
    hedge_wins: int = 0
    #: Already-expired requests that a remote tier worker computed anyway
    #: (retirement could not answer them locally); the SLO bench asserts 0.
    expired_compute: int = 0

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "failovers": self.failovers,
            "breaker_fast_fails": self.breaker_fast_fails,
            "late_deliveries": self.late_deliveries,
            "deadline_expired": self.deadline_expired,
            "clipped_retries": self.clipped_retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "expired_compute": self.expired_compute,
        }

    @classmethod
    def merged(cls, stats: "list[ResilienceStats] | tuple"):
        """Sum counters across replicas (the balancer's fleet-wide view)."""
        total = cls()
        for item in stats:
            for name in total.as_dict():
                setattr(total, name, getattr(total, name) + getattr(item, name))
        return total
