"""Rolling serving telemetry: throughput, latency and exit rates.

:class:`ServerStats` keeps bounded deques of the most recent responses so a
long-lived server can report a stable rolling picture of its behaviour —
requests per second, latency percentiles and the fraction of traffic each
exit absorbs — without unbounded memory growth.  Lifetime totals are kept
as plain counters.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional

import numpy as np

from .queue import InferenceResponse

__all__ = ["StatsSnapshot", "ServerStats"]


@dataclass
class StatsSnapshot:
    """One rolling-window reading of the server's health."""

    total_requests: int
    total_batches: int
    window_requests: int
    throughput_rps: float
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    max_latency_s: float
    mean_batch_size: float
    exit_fractions: Dict[str, float] = field(default_factory=dict)
    accuracy: Optional[float] = None


class ServerStats:
    """Accumulates per-response observations over a rolling window."""

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.total_requests = 0
        self.total_batches = 0
        self._latencies: Deque[float] = deque(maxlen=window)
        self._completions: Deque[float] = deque(maxlen=window)
        self._exit_names: Deque[str] = deque(maxlen=window)
        self._batch_sizes: Deque[int] = deque(maxlen=window)
        self._correct: Deque[bool] = deque(maxlen=window)

    def observe_batch(self, responses: Iterable[InferenceResponse]) -> None:
        """Fold one completed micro-batch into the rolling window."""
        responses = list(responses)
        if not responses:
            return
        self.total_batches += 1
        self._batch_sizes.append(len(responses))
        for response in responses:
            self.total_requests += 1
            self._latencies.append(response.latency_s)
            self._completions.append(response.completion_time)
            self._exit_names.append(response.exit_name)
            if response.correct is not None:
                self._correct.append(response.correct)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> StatsSnapshot:
        """Summarise the current rolling window."""
        if not self._latencies:
            return StatsSnapshot(
                total_requests=self.total_requests,
                total_batches=self.total_batches,
                window_requests=0,
                throughput_rps=0.0,
                mean_latency_s=0.0,
                p50_latency_s=0.0,
                p95_latency_s=0.0,
                max_latency_s=0.0,
                mean_batch_size=0.0,
            )
        latencies = np.asarray(self._latencies)
        completions = np.asarray(self._completions)
        span = float(completions.max() - completions.min())
        # A single completion instant (e.g. one batch so far) has no
        # measurable span; report the window count over the mean latency
        # as the best-effort rate instead of dividing by zero.
        if span > 0.0:
            throughput = (len(completions) - 1) / span
        elif latencies.mean() > 0.0:
            throughput = len(completions) / latencies.mean()
        else:
            throughput = 0.0
        counts = Counter(self._exit_names)
        fractions = {
            name: counts[name] / len(self._exit_names) for name in sorted(counts)
        }
        accuracy = float(np.mean(self._correct)) if self._correct else None
        return StatsSnapshot(
            total_requests=self.total_requests,
            total_batches=self.total_batches,
            window_requests=len(latencies),
            throughput_rps=float(throughput),
            mean_latency_s=float(latencies.mean()),
            p50_latency_s=float(np.percentile(latencies, 50)),
            p95_latency_s=float(np.percentile(latencies, 95)),
            max_latency_s=float(latencies.max()),
            mean_batch_size=float(np.mean(self._batch_sizes)),
            exit_fractions=fractions,
            accuracy=accuracy,
        )
