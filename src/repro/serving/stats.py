"""Rolling serving telemetry: throughput, latency and exit rates.

:class:`ServerStats` keeps bounded state about the most recent responses so
a long-lived server can report a stable rolling picture of its behaviour
without unbounded memory growth.  Lifetime totals are plain exact counters.

Window semantics (defined once, pinned by tests):

* The **request window** is the most recent ``window`` completed requests.
  Latency percentiles, exit fractions and accuracy are computed over
  exactly those requests.
* The **batch window** is the trailing sequence of completed micro-batches
  that covers the request window: the oldest batch is evicted only once the
  *remaining* batches still cover at least ``window`` requests.  Mean batch
  size is computed over those batches, so both windows describe the same
  trailing traffic instead of drifting apart (requests vs batches).
* **Throughput** is measured between batch-completion events: the number of
  requests completed strictly after the batch window's oldest event,
  divided by the elapsed time since it.  This counts whole batches against
  real elapsed time — the previous per-response formula
  ``(len(completions) - 1) / span`` overcounted batched completions (a
  32-deep batch contributed 31 "instantaneous" completions) and undercounted
  small windows.  At least two completion events are needed; otherwise the
  rate is reported as 0.0.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, Optional, Tuple

import numpy as np

from .queue import InferenceResponse

__all__ = ["StatsSnapshot", "ServerStats"]


@dataclass
class StatsSnapshot:
    """One rolling-window reading of the server's health."""

    total_requests: int
    total_batches: int
    window_requests: int
    throughput_rps: float
    mean_latency_s: float
    p50_latency_s: float
    p95_latency_s: float
    max_latency_s: float
    mean_batch_size: float
    window_batches: int = 0
    exit_fractions: Dict[str, float] = field(default_factory=dict)
    accuracy: Optional[float] = None


class ServerStats:
    """Accumulates per-response observations over a rolling window."""

    def __init__(self, window: int = 1024) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.window = window
        self.total_requests = 0
        self.total_batches = 0
        self._latencies: Deque[float] = deque(maxlen=window)
        self._exit_names: Deque[str] = deque(maxlen=window)
        self._correct: Deque[bool] = deque(maxlen=window)
        #: (completion_time, batch_size) per micro-batch; evicted manually so
        #: the retained batches always cover the request window (see module
        #: docstring).
        self._batch_events: Deque[Tuple[float, int]] = deque()
        self._batch_events_requests = 0  # running sum of retained batch sizes

    def observe_batch(self, responses: Iterable[InferenceResponse]) -> None:
        """Fold one completed micro-batch into the rolling window."""
        responses = list(responses)
        if not responses:
            return
        self.total_batches += 1
        self._batch_events.append((responses[-1].completion_time, len(responses)))
        self._batch_events_requests += len(responses)
        # Always retain at least two events: throughput is measured *between*
        # completion events, so a window no larger than one micro-batch must
        # still keep the previous event as the reference point.
        while (
            len(self._batch_events) > 2
            and self._batch_events_requests - self._batch_events[0][1] >= self.window
        ):
            _, evicted = self._batch_events.popleft()
            self._batch_events_requests -= evicted
        for response in responses:
            self.total_requests += 1
            self._latencies.append(response.latency_s)
            self._exit_names.append(response.exit_name)
            if response.correct is not None:
                self._correct.append(response.correct)

    # ------------------------------------------------------------------ #
    def _window_throughput(self) -> float:
        """Requests/second across the batch window's completion events."""
        if len(self._batch_events) < 2:
            return 0.0
        oldest_time, oldest_size = self._batch_events[0]
        newest_time, _ = self._batch_events[-1]
        span = newest_time - oldest_time
        if span <= 0.0:
            return 0.0
        completed_after_oldest = self._batch_events_requests - oldest_size
        return completed_after_oldest / span

    def snapshot(self) -> StatsSnapshot:
        """Summarise the current rolling window."""
        if not self._latencies:
            return StatsSnapshot(
                total_requests=self.total_requests,
                total_batches=self.total_batches,
                window_requests=0,
                throughput_rps=0.0,
                mean_latency_s=0.0,
                p50_latency_s=0.0,
                p95_latency_s=0.0,
                max_latency_s=0.0,
                mean_batch_size=0.0,
                window_batches=0,
            )
        latencies = np.asarray(self._latencies)
        counts = Counter(self._exit_names)
        fractions = {
            name: counts[name] / len(self._exit_names) for name in sorted(counts)
        }
        accuracy = float(np.mean(self._correct)) if self._correct else None
        return StatsSnapshot(
            total_requests=self.total_requests,
            total_batches=self.total_batches,
            window_requests=len(latencies),
            throughput_rps=self._window_throughput(),
            mean_latency_s=float(latencies.mean()),
            p50_latency_s=float(np.percentile(latencies, 50)),
            p95_latency_s=float(np.percentile(latencies, 95)),
            max_latency_s=float(latencies.max()),
            mean_batch_size=self._batch_events_requests / len(self._batch_events),
            window_batches=len(self._batch_events),
            exit_fractions=fractions,
            accuracy=accuracy,
        )
