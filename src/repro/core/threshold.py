"""Entropy-threshold selection (paper Section III-D and IV-D).

The paper picks the local-exit threshold ``T`` by sweeping candidate values
on a validation set and choosing the one with the best overall accuracy; when
several thresholds tie, the one that exits the most samples locally (i.e. the
cheapest in communication) is preferred.  A variant used in Section IV-F
instead chooses the threshold whose local-exit rate is closest to a target
fraction (about 75% in the paper's Figure 9 experiment).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..datasets.mvmc import MVMCDataset
from .ddnn import DDNN
from .inference import StagedInferenceEngine

__all__ = ["ThresholdCandidate", "ThresholdSearchResult", "search_threshold", "threshold_for_exit_rate"]

DEFAULT_GRID = tuple(np.round(np.arange(0.0, 1.0001, 0.05), 4))


@dataclass
class ThresholdCandidate:
    """Metrics observed for one candidate threshold."""

    threshold: float
    overall_accuracy: float
    local_exit_fraction: float
    communication_bytes: float


@dataclass
class ThresholdSearchResult:
    """Outcome of a threshold sweep."""

    best: ThresholdCandidate
    candidates: List[ThresholdCandidate]

    @property
    def best_threshold(self) -> float:
        return self.best.threshold


def _evaluate_candidates(
    model: DDNN,
    dataset: MVMCDataset,
    grid: Sequence[float],
    batch_size: int = 64,
) -> List[ThresholdCandidate]:
    candidates = []
    for threshold in grid:
        engine = StagedInferenceEngine(model, float(threshold), batch_size=batch_size)
        result = engine.run(dataset)
        candidates.append(
            ThresholdCandidate(
                threshold=float(threshold),
                overall_accuracy=result.overall_accuracy(dataset.labels),
                local_exit_fraction=result.local_exit_fraction,
                communication_bytes=engine.communication_bytes(result),
            )
        )
    return candidates


def search_threshold(
    model: DDNN,
    validation_set: MVMCDataset,
    grid: Optional[Sequence[float]] = None,
    batch_size: int = 64,
) -> ThresholdSearchResult:
    """Pick the threshold with the best overall accuracy on a validation set.

    Ties are resolved in favour of the largest local-exit fraction, which
    minimises communication at equal accuracy.
    """
    grid = DEFAULT_GRID if grid is None else grid
    candidates = _evaluate_candidates(model, validation_set, grid, batch_size=batch_size)
    best = max(candidates, key=lambda c: (c.overall_accuracy, c.local_exit_fraction))
    return ThresholdSearchResult(best=best, candidates=candidates)


def threshold_for_exit_rate(
    model: DDNN,
    validation_set: MVMCDataset,
    target_fraction: float,
    grid: Optional[Sequence[float]] = None,
    batch_size: int = 64,
) -> ThresholdSearchResult:
    """Pick the threshold whose local-exit rate is closest to ``target_fraction``."""
    if not 0.0 <= target_fraction <= 1.0:
        raise ValueError("target_fraction must be in [0, 1]")
    grid = DEFAULT_GRID if grid is None else grid
    candidates = _evaluate_candidates(model, validation_set, grid, batch_size=batch_size)
    best = min(
        candidates,
        key=lambda c: (abs(c.local_exit_fraction - target_fraction), -c.overall_accuracy),
    )
    return ThresholdSearchResult(best=best, candidates=candidates)
