"""Entropy-threshold selection (paper Section III-D and IV-D).

The paper picks the local-exit threshold ``T`` by sweeping candidate values
on a validation set and choosing the one with the best overall accuracy; when
several thresholds tie, the one that exits the most samples locally (i.e. the
cheapest in communication) is preferred.  A variant used in Section IV-F
instead chooses the threshold whose local-exit rate is closest to a target
fraction (about 75% in the paper's Figure 9 experiment).

Both searches run on the forward-once :class:`~repro.core.oracle.ExitOracle`:
the validation set is forwarded exactly once (compiled if requested) and the
whole candidate grid is answered by vectorized routing over the cached
per-exit entropies — a 21-point calibration that used to cost 21 full eager
forwards now costs one forward plus ``O(num_exits x N)`` numpy per point.
The local-exit rate itself never needs routing at all: it is the empirical
CDF of the local-exit entropies, so exit-rate calibration is a quantile
lookup (:meth:`~repro.core.oracle.ExitOracle.quantile_threshold` exposes the
exact, grid-free variant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..datasets.mvmc import MVMCDataset
from .ddnn import DDNN
from .oracle import ExitOracle

__all__ = [
    "ThresholdCandidate",
    "ThresholdSearchResult",
    "search_threshold",
    "threshold_for_exit_rate",
]

DEFAULT_GRID = tuple(np.round(np.arange(0.0, 1.0001, 0.05), 4))


@dataclass
class ThresholdCandidate:
    """Metrics observed for one candidate threshold."""

    threshold: float
    overall_accuracy: float
    local_exit_fraction: float
    communication_bytes: float


@dataclass
class ThresholdSearchResult:
    """Outcome of a threshold sweep."""

    best: ThresholdCandidate
    candidates: List[ThresholdCandidate]

    @property
    def best_threshold(self) -> float:
        return self.best.threshold


def _evaluate_candidates(
    model: DDNN,
    dataset: MVMCDataset,
    grid: Sequence[float],
    batch_size: int = 64,
    compile: bool = False,
    oracle: Optional[ExitOracle] = None,
) -> List[ThresholdCandidate]:
    oracle = ExitOracle.resolve(model, dataset, batch_size, compile, oracle)
    table = oracle.sweep(grid)
    return [
        ThresholdCandidate(
            threshold=point.threshold,
            overall_accuracy=point.overall_accuracy,
            local_exit_fraction=point.local_exit_fraction,
            communication_bytes=point.communication_bytes,
        )
        for point in table.points()
    ]


def search_threshold(
    model: DDNN,
    validation_set: MVMCDataset,
    grid: Optional[Sequence[float]] = None,
    batch_size: int = 64,
    compile: bool = False,
    oracle: Optional[ExitOracle] = None,
) -> ThresholdSearchResult:
    """Pick the threshold with the best overall accuracy on a validation set.

    Ties are resolved in favour of the largest local-exit fraction, which
    minimises communication at equal accuracy.  The grid is evaluated by one
    vectorized oracle sweep (one forward pass total; none if ``oracle`` is
    supplied).
    """
    grid = DEFAULT_GRID if grid is None else grid
    candidates = _evaluate_candidates(
        model, validation_set, grid, batch_size=batch_size, compile=compile, oracle=oracle
    )
    best = max(candidates, key=lambda c: (c.overall_accuracy, c.local_exit_fraction))
    return ThresholdSearchResult(best=best, candidates=candidates)


def threshold_for_exit_rate(
    model: DDNN,
    validation_set: MVMCDataset,
    target_fraction: float,
    grid: Optional[Sequence[float]] = None,
    batch_size: int = 64,
    compile: bool = False,
    oracle: Optional[ExitOracle] = None,
    exact: bool = False,
) -> ThresholdSearchResult:
    """Pick the threshold whose local-exit rate is closest to ``target_fraction``.

    The local-exit rate at any threshold is an exact quantile lookup on the
    validation set's local-entropy CDF, so the whole calibration needs one
    forward pass (zero if ``oracle`` is supplied).  With ``exact=True`` the
    grid is bypassed entirely and the returned threshold is the entropy
    value whose achievable exit rate is nearest the target
    (:meth:`~repro.core.oracle.ExitOracle.quantile_threshold`); otherwise the
    best grid point is selected with the same tie-breaking as the historical
    grid search (closest rate, then highest overall accuracy, then grid
    order).
    """
    if not 0.0 <= target_fraction <= 1.0:
        raise ValueError("target_fraction must be in [0, 1]")
    oracle = ExitOracle.resolve(model, validation_set, batch_size, compile, oracle)
    if exact:
        threshold = oracle.quantile_threshold(target_fraction)
        candidates = _evaluate_candidates(model, validation_set, [threshold], oracle=oracle)
        return ThresholdSearchResult(best=candidates[0], candidates=candidates)

    grid = DEFAULT_GRID if grid is None else grid
    candidates = _evaluate_candidates(model, validation_set, grid, oracle=oracle)
    best = min(
        candidates,
        key=lambda c: (abs(c.local_exit_fraction - target_fraction), -c.overall_accuracy),
    )
    return ThresholdSearchResult(best=best, candidates=candidates)
