"""Staged DDNN inference with entropy-threshold exits (paper Sections III-D/F).

Inference proceeds bottom-up through the hierarchy: the local exit evaluates
the aggregated device scores and exits every sample whose normalized entropy
is at or below the local threshold; remaining samples are (conceptually)
forwarded to the edge and finally to the cloud, whose exit always classifies.

:class:`StagedInferenceEngine` runs this procedure on an in-memory model and
produces an :class:`InferenceResult` with per-sample predictions, exit
assignments and the communication cost implied by the local exit rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

import numpy as np

from ..datasets.mvmc import MVMCDataset
from .cascade import ExitCascade, Thresholds
from .ddnn import DDNN
from .exits import ExitCriterion

__all__ = ["InferenceResult", "StagedInferenceEngine", "staged_inference"]


@dataclass
class InferenceResult:
    """Per-sample outcome of staged DDNN inference.

    Attributes
    ----------
    predictions:
        Final predicted class per sample (from whichever exit classified it).
    exit_indices:
        Index of the exit each sample used (0 = local, last = cloud).
    exit_names:
        Names of the exits, indexed by ``exit_indices`` values.
    entropies:
        Normalized entropy observed at the exit that classified each sample.
    exit_predictions:
        For reference, each exit's prediction for every sample (as if all
        samples were classified there).
    targets:
        Ground-truth labels if they were supplied.
    """

    predictions: np.ndarray
    exit_indices: np.ndarray
    exit_names: List[str]
    entropies: np.ndarray
    exit_predictions: Dict[str, np.ndarray] = field(default_factory=dict)
    targets: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    def exit_fraction(self, exit_name: str) -> float:
        """Fraction of samples classified at the named exit."""
        index = self.exit_names.index(exit_name)
        if self.exit_indices.size == 0:
            return 0.0
        return float(np.mean(self.exit_indices == index))

    @property
    def local_exit_fraction(self) -> float:
        """Fraction of samples exited at the first (local) exit."""
        return self.exit_fraction(self.exit_names[0])

    def overall_accuracy(self, targets: Optional[np.ndarray] = None) -> float:
        """Accuracy of the staged predictions against the targets."""
        targets = self._resolve_targets(targets)
        return float(np.mean(self.predictions == targets))

    def exit_accuracy(self, exit_name: str, targets: Optional[np.ndarray] = None) -> float:
        """Accuracy of one exit when classifying 100% of the samples."""
        targets = self._resolve_targets(targets)
        return float(np.mean(self.exit_predictions[exit_name] == targets))

    def accuracy_of_exited_samples(
        self, exit_name: str, targets: Optional[np.ndarray] = None
    ) -> float:
        """Accuracy restricted to the samples that actually used this exit."""
        targets = self._resolve_targets(targets)
        index = self.exit_names.index(exit_name)
        mask = self.exit_indices == index
        if not mask.any():
            return float("nan")
        return float(np.mean(self.predictions[mask] == targets[mask]))

    def _resolve_targets(self, targets: Optional[np.ndarray]) -> np.ndarray:
        if targets is not None:
            return np.asarray(targets)
        if self.targets is None:
            raise ValueError("targets were not recorded; pass them explicitly")
        return self.targets


class StagedInferenceEngine:
    """Runs threshold-based multi-exit inference for a trained DDNN.

    A thin adapter over the shared :class:`~repro.core.cascade.ExitCascade`
    engine, which owns threshold normalization, the per-exit decision rule
    and the per-sample routing loop.

    Parameters
    ----------
    model:
        A trained :class:`~repro.core.ddnn.DDNN`.
    thresholds:
        One entropy threshold per non-final exit, or per exit (the final
        exit's threshold is ignored because it always classifies).  A single
        float is broadcast to all non-final exits.
    compile:
        If ``True``, forwards run through the :mod:`repro.compile` fused
        inference plan instead of the eager autograd stack (same
        predictions and routing, ~3-6x faster at serving batch sizes).
    precision:
        Compute mode for the compiled path (``"float64"`` exact default,
        ``"float32"`` tolerance mode, ``"bitpacked"`` XNOR-popcount binary
        blocks).  Only meaningful with ``compile=True``.
    """

    def __init__(
        self,
        model: DDNN,
        thresholds: Thresholds,
        batch_size: int = 64,
        compile: bool = False,
        precision: str = "float64",
    ) -> None:
        self.model = model
        self.batch_size = batch_size
        self.cascade = ExitCascade.for_model(
            model, thresholds, compile=compile, precision=precision
        )
        self.communication = self.cascade.communication

    @property
    def criteria(self) -> List[ExitCriterion]:
        """The cascade's per-exit criteria (final threshold forced to 1.0)."""
        return self.cascade.criteria

    # ------------------------------------------------------------------ #
    def run(
        self, dataset: Union[MVMCDataset, np.ndarray], targets: Optional[np.ndarray] = None
    ) -> InferenceResult:
        """Run staged inference over a dataset or raw view array."""
        if isinstance(dataset, MVMCDataset):
            views = dataset.images
            targets = dataset.labels if targets is None else targets
        else:
            views = np.asarray(dataset)

        routed = self.cascade.run_model(self.model, views, batch_size=self.batch_size)
        return InferenceResult(
            predictions=routed.predictions,
            exit_indices=routed.exit_indices,
            exit_names=routed.exit_names,
            entropies=routed.entropies,
            exit_predictions=routed.exit_predictions,
            targets=None if targets is None else np.asarray(targets),
        )

    # ------------------------------------------------------------------ #
    def communication_bytes(self, result: InferenceResult) -> float:
        """Average per-device communication per sample implied by a result."""
        return self.communication.per_device_bytes(result.local_exit_fraction)

    def communication_reduction(self, result: InferenceResult) -> float:
        """Reduction factor versus offloading raw sensor input to the cloud."""
        return self.communication.reduction_factor(result.local_exit_fraction)


def staged_inference(
    model: DDNN,
    dataset: MVMCDataset,
    thresholds: Union[float, Sequence[float]],
    batch_size: int = 64,
    compile: bool = False,
    precision: str = "float64",
) -> InferenceResult:
    """One-call helper: build an engine, run it on the dataset, return the result."""
    engine = StagedInferenceEngine(
        model, thresholds, batch_size=batch_size, compile=compile, precision=precision
    )
    return engine.run(dataset)
