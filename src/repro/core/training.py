"""Joint training of DDNNs (paper Section III-C).

The whole network — every device branch, the aggregators, the optional edge
tier and the cloud — is trained as a single model: the softmax cross-entropy
loss is computed at every exit point, the per-exit losses are combined as a
weighted sum (equal weights by default, as in the paper), and Adam updates
all parameters jointly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..datasets.mvmc import MVMCDataset
from ..nn.losses import joint_exit_loss
from ..nn.metrics import accuracy
from ..nn.optim import Adam
from .config import TrainingConfig
from .ddnn import DDNN

__all__ = ["EpochStats", "TrainingHistory", "DDNNTrainer", "train_ddnn"]


@dataclass
class EpochStats:
    """Loss and per-exit training accuracy for one epoch."""

    epoch: int
    loss: float
    exit_accuracy: Dict[str, float]


@dataclass
class TrainingHistory:
    """Record of a full training run."""

    epochs: List[EpochStats] = field(default_factory=list)

    def append(self, stats: EpochStats) -> None:
        self.epochs.append(stats)

    @property
    def final_loss(self) -> float:
        if not self.epochs:
            raise ValueError("training history is empty")
        return self.epochs[-1].loss

    def losses(self) -> List[float]:
        return [stats.loss for stats in self.epochs]


class DDNNTrainer:
    """Trains a DDNN on a multi-view dataset with the joint multi-exit loss.

    Parameters
    ----------
    model:
        The DDNN to train.
    config:
        Training hyper-parameters (defaults follow the paper).
    """

    def __init__(self, model: DDNN, config: Optional[TrainingConfig] = None) -> None:
        self.model = model
        self.config = config if config is not None else TrainingConfig()
        self.optimizer = Adam(
            model.parameters(),
            lr=self.config.learning_rate,
            betas=(self.config.beta1, self.config.beta2),
            eps=self.config.eps,
        )
        self.history = TrainingHistory()
        self._rng = np.random.default_rng(self.config.seed)

    # ------------------------------------------------------------------ #
    def fit(self, dataset: MVMCDataset) -> TrainingHistory:
        """Run the configured number of epochs over the dataset."""
        for epoch in range(self.config.epochs):
            stats = self.train_epoch(dataset, epoch)
            self.history.append(stats)
            if self.config.verbose and (epoch % self.config.log_every == 0 or epoch == self.config.epochs - 1):
                exits = ", ".join(f"{k}={v:.3f}" for k, v in stats.exit_accuracy.items())
                print(f"epoch {epoch:3d}  loss={stats.loss:.4f}  {exits}")
        return self.history

    def train_epoch(self, dataset: MVMCDataset, epoch: int = 0) -> EpochStats:
        """One pass over the dataset in shuffled mini-batches."""
        self.model.train()
        indices = np.arange(len(dataset))
        if self.config.shuffle:
            self._rng.shuffle(indices)

        total_loss = 0.0
        total_samples = 0
        exit_correct: Dict[str, int] = {name: 0 for name in self.model.exit_names}

        for start in range(0, len(indices), self.config.batch_size):
            batch_indices = indices[start : start + self.config.batch_size]
            views = dataset.images[batch_indices]
            targets = dataset.labels[batch_indices]

            output = self.model(views)
            loss = joint_exit_loss(
                output.exit_logits, targets, exit_weights=self.config.exit_weights
            )
            self.optimizer.zero_grad()
            loss.backward()
            self.optimizer.step()

            batch_size = len(batch_indices)
            total_loss += loss.item() * batch_size
            total_samples += batch_size
            for name, logits in zip(output.exit_names, output.exit_logits):
                exit_correct[name] += int(
                    np.sum(logits.data.argmax(axis=1) == targets)
                )

        exit_accuracy = {
            name: exit_correct[name] / total_samples for name in self.model.exit_names
        }
        # The epoch mutated the weights in place: any compiled plan cached
        # for this model now serves a stale snapshot — evict it, and bump
        # the weights version so snapshot caches keyed on the model (e.g.
        # the experiment harness's oracle memo) can tell old from new.
        from ..compile.cache import invalidate_plan

        invalidate_plan(self.model)
        self.model._weights_version = getattr(self.model, "_weights_version", 0) + 1
        return EpochStats(epoch=epoch, loss=total_loss / total_samples, exit_accuracy=exit_accuracy)

    # ------------------------------------------------------------------ #
    def evaluate_exits(
        self,
        dataset: MVMCDataset,
        batch_size: Optional[int] = None,
        compile: bool = False,
    ) -> Dict[str, float]:
        """Accuracy of every exit when 100% of samples exit at that point.

        Delegates to :func:`repro.core.accuracy.evaluate_exit_accuracies`
        (one oracle forward pass) — this used to be a duplicated eager loop.
        """
        from .accuracy import evaluate_exit_accuracies

        return evaluate_exit_accuracies(
            self.model,
            dataset,
            batch_size=batch_size or self.config.batch_size,
            compile=compile,
        )


def train_ddnn(
    model: DDNN,
    train_set: MVMCDataset,
    config: Optional[TrainingConfig] = None,
) -> DDNNTrainer:
    """Convenience wrapper: build a trainer, fit it, and return it."""
    trainer = DDNNTrainer(model, config)
    trainer.fit(train_set)
    return trainer
