"""Forward-once evaluation plane: the per-exit logit cache (``ExitOracle``).

Every offline result of the paper — Table II's threshold sweep, Figure 9's
calibrated offloading points, Figure 10's fault-tolerance rows, all the exit
accuracy reports — is a function of a single quantity: the per-exit logits of
a fixed model on a fixed dataset.  The entropy-threshold cascade never looks
at the inputs again once the logits exist; routing is pure numpy over the
``(num_exits, N)`` entropy matrix.

:class:`ExitOracle` exploits that: :meth:`ExitOracle.capture` runs the
forward pass **once** (batched, compiled by default) and stores every exit's
logits, argmax predictions and normalized entropies.  From the cache,

* :meth:`route` reproduces :meth:`~repro.core.cascade.ExitCascade.run_model`
  routing *byte-identically* (first exit at-or-below threshold, final exit
  forced) without touching the model;
* :meth:`sweep` answers an entire threshold grid in ``O(num_exits x N)``
  numpy per grid point — a 21-point calibration costs one forward instead
  of 21;
* :meth:`exit_accuracies` / :meth:`accuracy_report` replace the
  double-forward ``evaluate_exit_accuracies`` + engine-run pattern;
* :meth:`exit_rate_cdf` / :meth:`quantile_threshold` read local-exit rates
  straight off the empirical entropy CDF, making exit-rate calibration an
  exact quantile lookup.

Byte-identity with the eager cascade holds because every per-sample quantity
(softmax, entropy, argmax) is computed row-wise by the same code paths on the
same logits: the oracle forwards the dataset in the same ``batch_size``
chunks the engine would, so even BLAS batch-blocking effects are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..datasets.mvmc import MVMCDataset
from ..nn.tensor import Tensor, no_grad
from .cascade import Thresholds, normalize_thresholds
from .communication import CommunicationModel
from .ddnn import DDNN
from .exits import normalized_entropy, softmax_probabilities
from .inference import InferenceResult

__all__ = ["ExitOracle", "SweepPoint", "SweepTable"]


@dataclass
class SweepPoint:
    """Cascade metrics at one (broadcast) threshold of a sweep grid."""

    threshold: float
    overall_accuracy: float
    local_exit_fraction: float
    communication_bytes: Optional[float]
    exit_fractions: Dict[str, float] = field(default_factory=dict)


@dataclass
class SweepTable:
    """Vectorized answers for a whole threshold grid (one row per point)."""

    thresholds: np.ndarray  # (G,)
    overall_accuracy: np.ndarray  # (G,)
    local_exit_fraction: np.ndarray  # (G,)
    exit_fractions: np.ndarray  # (G, num_exits)
    exit_names: List[str]
    communication_bytes: Optional[np.ndarray] = None  # (G,) if a comm model exists

    def __len__(self) -> int:
        return len(self.thresholds)

    def points(self) -> List[SweepPoint]:
        """The table as one :class:`SweepPoint` per grid threshold."""
        rows = []
        for i in range(len(self.thresholds)):
            rows.append(
                SweepPoint(
                    threshold=float(self.thresholds[i]),
                    overall_accuracy=float(self.overall_accuracy[i]),
                    local_exit_fraction=float(self.local_exit_fraction[i]),
                    communication_bytes=(
                        None
                        if self.communication_bytes is None
                        else float(self.communication_bytes[i])
                    ),
                    exit_fractions={
                        name: float(self.exit_fractions[i, j])
                        for j, name in enumerate(self.exit_names)
                    },
                )
            )
        return rows


class ExitOracle:
    """One forward pass, every offline evaluation answer.

    Attributes
    ----------
    logits:
        ``(num_exits, N, num_classes)`` float64 — every exit's logits for
        every sample.
    predictions:
        ``(num_exits, N)`` int64 — each exit's argmax prediction, computed
        from the softmax probabilities exactly as the cascade's
        :class:`~repro.core.exits.ExitCriterion` does.
    entropies:
        ``(num_exits, N)`` float64 — normalized entropies in ``[0, 1]``.
    targets:
        ``(N,)`` ground-truth labels if the capture source carried them.

    Use :meth:`capture` to build one; the constructor accepts pre-computed
    arrays so tests and simulators can synthesize oracles directly.
    """

    def __init__(
        self,
        logits: np.ndarray,
        exit_names: Sequence[str],
        targets: Optional[np.ndarray] = None,
        communication: Optional[CommunicationModel] = None,
    ) -> None:
        logits = np.asarray(logits, dtype=np.float64)
        if logits.ndim != 3:
            raise ValueError(
                f"expected logits of shape (num_exits, N, num_classes), got {logits.shape}"
            )
        if logits.shape[0] != len(exit_names):
            raise ValueError(
                f"{logits.shape[0]} logit blocks but {len(exit_names)} exit names"
            )
        self.logits = logits
        self.exit_names = list(exit_names)
        self.targets = None if targets is None else np.asarray(targets)
        self.communication = communication

        probabilities = softmax_probabilities(logits)
        self.predictions = probabilities.argmax(axis=-1).astype(np.int64)
        self.entropies = normalized_entropy(probabilities)
        # Local-exit entropies sorted once: exit-rate CDF lookups and quantile
        # calibration are O(log N) searchsorted calls from here on.
        self._sorted_local_entropies = np.sort(self.entropies[0])

    # ------------------------------------------------------------------ #
    @classmethod
    def capture(
        cls,
        model: DDNN,
        dataset: Union[MVMCDataset, np.ndarray],
        targets: Optional[np.ndarray] = None,
        batch_size: int = 64,
        compile: bool = True,
        precision: str = "float64",
    ) -> "ExitOracle":
        """Run the one batched forward pass and cache every exit's logits.

        ``compile=True`` (the default) runs the shared
        :mod:`repro.compile` plan from the process-wide plan cache; the
        forward happens in ``batch_size`` chunks — the same chunks
        :class:`~repro.core.inference.StagedInferenceEngine` would use — so
        captured logits are byte-identical to what the engine at the same
        ``compile`` setting would see.  ``precision`` selects the compiled
        compute mode (exact ``"float64"`` default, tolerance ``"float32"``,
        ``"bitpacked"``); the cached logit matrix is always stored as
        float64 regardless of the compute mode.
        """
        if isinstance(dataset, MVMCDataset):
            views = dataset.images
            if targets is None:
                targets = dataset.labels
        else:
            views = np.asarray(dataset)

        plan = None
        if compile:
            from ..compile.cache import compiled_plan_for

            plan = compiled_plan_for(model, precision)

        num_samples = len(views)
        exit_names = list(model.exit_names)
        logits: Optional[np.ndarray] = None

        model.eval()
        with no_grad():
            for start in range(0, num_samples, batch_size):
                stop = min(start + batch_size, num_samples)
                chunk = views[start:stop]
                output = plan(chunk) if plan is not None else model(chunk)
                for index, exit_logits in enumerate(output.exit_logits):
                    block = exit_logits.data if isinstance(exit_logits, Tensor) else exit_logits
                    if logits is None:
                        logits = np.empty(
                            (len(exit_names), num_samples, block.shape[-1]), dtype=np.float64
                        )
                    # Copy out of the plan's arena: compiled outputs are views
                    # that the next chunk's forward overwrites.
                    logits[index, start:stop] = block

        if logits is None:  # empty dataset
            logits = np.zeros((len(exit_names), 0, max(model.config.num_classes, 2)))
        return cls(
            logits,
            exit_names,
            targets=targets,
            communication=CommunicationModel(model.config),
        )

    @classmethod
    def resolve(
        cls,
        model: DDNN,
        dataset: Union[MVMCDataset, np.ndarray],
        batch_size: int = 64,
        compile: bool = False,
        oracle: Optional["ExitOracle"] = None,
        precision: str = "float64",
    ) -> "ExitOracle":
        """Return ``oracle`` unchanged if given, else capture a fresh one.

        The shared resolve-or-capture step behind every ``oracle=`` kwarg in
        :mod:`repro.core.accuracy` and :mod:`repro.core.threshold`.
        """
        if oracle is not None:
            return oracle
        return cls.capture(
            model, dataset, batch_size=batch_size, compile=compile, precision=precision
        )

    # ------------------------------------------------------------------ #
    @property
    def num_exits(self) -> int:
        return len(self.exit_names)

    @property
    def num_samples(self) -> int:
        return self.logits.shape[1]

    def _require_targets(self, targets: Optional[np.ndarray]) -> np.ndarray:
        if targets is not None:
            return np.asarray(targets)
        if self.targets is None:
            raise ValueError("targets were not captured; pass them explicitly")
        return self.targets

    def _normalized(self, thresholds: Thresholds) -> np.ndarray:
        """Per-exit thresholds with the engine's full validation.

        :func:`normalize_thresholds` rejects bool/NaN/negative; the engine
        additionally rejects non-final thresholds above 1.0 when it builds
        its :class:`~repro.core.exits.ExitCriterion` list.  Mirror that here
        so a typo'd threshold (80 instead of 0.80) fails loudly instead of
        producing a plausible everything-exits-locally table.
        """
        values = normalize_thresholds(thresholds, self.num_exits)
        for value in values:
            if value > 1.0:
                raise ValueError(f"threshold must lie in [0, 1], got {value}")
        return np.array(values)

    def _first_exits(self, threshold_matrix: np.ndarray) -> np.ndarray:
        """First confident exit per (grid row, sample); final exit forced.

        ``threshold_matrix`` has shape ``(G, num_exits)``; the result is
        ``(G, N)`` int64.  This is exactly the
        :class:`~repro.core.cascade.CascadeRouter` rule — a sample leaves at
        the earliest exit with ``entropy <= threshold`` and the last exit
        claims whatever remains — evaluated as an argmax over a boolean
        mask instead of a per-tier loop.
        """
        confident = self.entropies[None, :, :] <= threshold_matrix[:, :, None]
        confident[:, -1, :] = True
        return np.argmax(confident, axis=1).astype(np.int64)

    # ------------------------------------------------------------------ #
    def route(self, thresholds: Thresholds) -> InferenceResult:
        """Replay cascade routing for one threshold setting — no model call.

        Byte-identical to
        ``StagedInferenceEngine(model, thresholds, batch_size).run(dataset)``
        at the capture's ``compile`` setting: predictions, exit indices and
        entropies match element for element.
        """
        values = self._normalized(thresholds)
        exit_indices = self._first_exits(values[None, :])[0]
        sample_axis = np.arange(self.num_samples)
        return InferenceResult(
            predictions=self.predictions[exit_indices, sample_axis],
            exit_indices=exit_indices,
            exit_names=list(self.exit_names),
            entropies=self.entropies[exit_indices, sample_axis],
            # Copies, not views: the engine returned fresh arrays, and a
            # caller mutating its result must not corrupt this cache.
            exit_predictions={
                name: self.predictions[index].copy()
                for index, name in enumerate(self.exit_names)
            },
            targets=None if self.targets is None else self.targets.copy(),
        )

    def sweep(
        self, grid: Sequence[float], targets: Optional[np.ndarray] = None
    ) -> SweepTable:
        """Cascade metrics for every (broadcast) threshold of a grid at once.

        Each grid value is broadcast across the non-final exits exactly as a
        scalar threshold passed to the engine would be; per-point results are
        identical to running the engine per threshold, but the whole grid
        costs ``O(num_exits x N)`` numpy per point and zero forwards.
        """
        targets = self._require_targets(targets)
        grid_values = np.array([float(value) for value in grid], dtype=np.float64)
        matrix = np.stack([self._normalized(float(v)) for v in grid_values])
        first_exits = self._first_exits(matrix)  # (G, N)
        chosen = self.predictions[first_exits, np.arange(self.num_samples)[None, :]]
        overall = (chosen == targets[None, :]).mean(axis=1) if self.num_samples else np.zeros(len(grid_values))
        exit_fractions = np.stack(
            [(first_exits == index).mean(axis=1) if self.num_samples else np.zeros(len(grid_values))
             for index in range(self.num_exits)],
            axis=1,
        )
        communication = None
        if self.communication is not None:
            communication = np.array(
                [self.communication.per_device_bytes(fraction) for fraction in exit_fractions[:, 0]]
            )
        return SweepTable(
            thresholds=grid_values,
            overall_accuracy=overall,
            local_exit_fraction=exit_fractions[:, 0],
            exit_fractions=exit_fractions,
            exit_names=list(self.exit_names),
            communication_bytes=communication,
        )

    # ------------------------------------------------------------------ #
    def exit_accuracies(self, targets: Optional[np.ndarray] = None) -> Dict[str, float]:
        """Accuracy of each exit classifying 100% of the samples there.

        Matches the historical ``evaluate_exit_accuracies`` loop exactly: it
        compares raw-logit argmax (not softmax argmax) against the targets,
        preserving that code path's tie behaviour bit for bit.
        """
        targets = self._require_targets(targets)
        logit_argmax = self.logits.argmax(axis=-1)
        return {
            name: float(np.mean(logit_argmax[index] == targets))
            for index, name in enumerate(self.exit_names)
        }

    def overall_accuracy(self, thresholds: Thresholds, targets: Optional[np.ndarray] = None) -> float:
        """Staged-inference accuracy at one threshold setting."""
        targets = self._require_targets(targets)
        return self.route(thresholds).overall_accuracy(targets)

    def accuracy_report(
        self,
        thresholds: Thresholds,
        targets: Optional[np.ndarray] = None,
        individual_accuracy: Optional[Dict[int, float]] = None,
    ):
        """Every paper accuracy measure in one report, from the cache.

        The forward-once replacement for the ``evaluate_exit_accuracies`` +
        ``StagedInferenceEngine.run`` double-forward pattern.
        """
        from .accuracy import AccuracyReport

        targets = self._require_targets(targets)
        routed = self.route(thresholds)
        report = AccuracyReport(
            exit_accuracy={
                name: float(np.mean(routed.exit_predictions[name] == targets))
                for name in self.exit_names
            },
            overall_accuracy=routed.overall_accuracy(targets),
            local_exit_fraction=routed.local_exit_fraction,
            communication_bytes=(
                None
                if self.communication is None
                else self.communication.per_device_bytes(routed.local_exit_fraction)
            ),
        )
        if individual_accuracy is not None:
            report.individual_accuracy = dict(individual_accuracy)
        return report

    def communication_bytes(self, result: InferenceResult) -> float:
        """Average per-device communication per sample implied by a result.

        Mirrors :meth:`StagedInferenceEngine.communication_bytes` so oracle
        consumers keep the one-call Eq. 1 accounting.
        """
        if self.communication is None:
            raise ValueError("this oracle was built without a CommunicationModel")
        return self.communication.per_device_bytes(result.local_exit_fraction)

    # ------------------------------------------------------------------ #
    def exit_rate_cdf(self, thresholds: Union[float, Sequence[float]]) -> np.ndarray:
        """Local-exit fraction at each threshold, off the entropy CDF.

        ``P(entropy_local <= T)`` evaluated by binary search on the sorted
        local-exit entropies — exactly the local-exit fraction the cascade
        produces at threshold ``T``, without routing anything.
        """
        values = np.atleast_1d(np.asarray(thresholds, dtype=np.float64))
        if self.num_samples == 0:
            return np.zeros(values.shape)
        counts = np.searchsorted(self._sorted_local_entropies, values, side="right")
        return counts / self.num_samples

    def quantile_threshold(self, target_fraction: float) -> float:
        """The exact threshold whose local-exit rate is closest to a target.

        The achievable exit rates form a step function with jumps at the
        observed entropy values; this picks, among those achievable rates,
        the one nearest ``target_fraction`` (ties resolved toward the higher
        rate, i.e. the cheaper-communication side) and returns the smallest
        threshold realizing it.  This replaces grid search with an exact
        quantile lookup on the empirical local-entropy CDF.
        """
        if not 0.0 <= target_fraction <= 1.0:
            raise ValueError("target_fraction must be in [0, 1]")
        if self.num_samples == 0:
            return 0.0
        # Candidate thresholds: 0.0 (exit nothing) and each distinct entropy
        # value (exit everything at or below it).  Observed entropies can
        # overshoot 1.0 by a few ulps (near-uniform softmax, e.g. blanked
        # failed-device views), so clip into the valid threshold range —
        # the returned value must be routable.
        candidates = np.concatenate(
            ([0.0], np.unique(np.minimum(self._sorted_local_entropies, 1.0)))
        )
        fractions = self.exit_rate_cdf(candidates)
        distances = np.abs(fractions - target_fraction)
        best = np.flatnonzero(distances == distances.min())[-1]
        return float(candidates[best])
