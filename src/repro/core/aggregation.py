"""Aggregation schemes for combining output from multiple end devices.

The paper (Section III-B) defines three ways to fuse the per-device vectors
(or feature maps) before an exit point:

* **Max pooling (MP)** — component-wise maximum over devices.
* **Average pooling (AP)** — component-wise mean over devices.
* **Concatenation (CC)** — concatenate the device outputs; because this
  expands the dimensionality, a linear layer (for vectors) or the first
  convolution of the next stage (for feature maps) maps it back.

All aggregators operate on a list of same-shaped tensors, one per device, and
support both 2-D ``(N, F)`` vectors (local exit) and 4-D ``(N, C, H, W)``
feature maps (cloud/edge input).  They are :class:`~repro.nn.layers.Module`
instances so any projection parameters they own are trained jointly with the
rest of the DDNN.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.layers import Linear, Module
from ..nn.tensor import Tensor, concatenate, maximum, stack

__all__ = [
    "Aggregator",
    "MaxPoolAggregator",
    "AveragePoolAggregator",
    "ConcatAggregator",
    "make_aggregator",
    "AGGREGATION_SCHEMES",
]

#: Canonical two-letter scheme codes used in the paper's Table I.
AGGREGATION_SCHEMES = ("MP", "AP", "CC")


class Aggregator(Module):
    """Base class for device-output aggregation schemes."""

    #: Two-letter code used in scheme strings such as ``"MP-CC"``.
    code: str = ""

    def __init__(self, num_devices: int) -> None:
        super().__init__()
        if num_devices < 1:
            raise ValueError("an aggregator needs at least one device input")
        self.num_devices = num_devices

    def forward(self, device_outputs: Sequence[Tensor]) -> Tensor:
        raise NotImplementedError

    def _check_inputs(self, device_outputs: Sequence[Tensor]) -> List[Tensor]:
        outputs = list(device_outputs)
        if len(outputs) != self.num_devices:
            raise ValueError(
                f"{type(self).__name__} configured for {self.num_devices} devices "
                f"but received {len(outputs)} inputs"
            )
        shapes = {tuple(t.shape) for t in outputs}
        if len(shapes) != 1:
            raise ValueError(f"device outputs must share a shape, got {sorted(shapes)}")
        return outputs

    def output_channels(self, input_channels: int) -> int:
        """Number of channels/features produced for a given per-device width."""
        return input_channels


class MaxPoolAggregator(Aggregator):
    """Component-wise maximum over device outputs (scheme ``MP``)."""

    code = "MP"

    def forward(self, device_outputs: Sequence[Tensor]) -> Tensor:
        outputs = self._check_inputs(device_outputs)
        if len(outputs) == 1:
            return outputs[0]
        return maximum(outputs)


class AveragePoolAggregator(Aggregator):
    """Component-wise mean over device outputs (scheme ``AP``)."""

    code = "AP"

    def forward(self, device_outputs: Sequence[Tensor]) -> Tensor:
        outputs = self._check_inputs(device_outputs)
        if len(outputs) == 1:
            return outputs[0]
        total: Optional[Tensor] = None
        for output in outputs:
            total = output if total is None else total + output
        return total * (1.0 / len(outputs))


class ConcatAggregator(Aggregator):
    """Concatenation over device outputs (scheme ``CC``).

    Parameters
    ----------
    num_devices:
        Number of device inputs.
    feature_dim:
        Per-device feature dimension.  Required when ``project=True`` so the
        projection layer can be sized.
    project:
        If ``True`` (used at the local exit on class-probability vectors), a
        linear layer maps the concatenated vector back to ``feature_dim``
        dimensions, exactly as described in the paper.  If ``False`` (used at
        the cloud on conv feature maps), the concatenation is returned as-is
        and the following convolution absorbs the expanded channel count.
    """

    code = "CC"

    def __init__(
        self,
        num_devices: int,
        feature_dim: Optional[int] = None,
        project: bool = False,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__(num_devices)
        self.project = project
        self.feature_dim = feature_dim
        if project:
            if feature_dim is None:
                raise ValueError("feature_dim is required when project=True")
            self.projection = Linear(num_devices * feature_dim, feature_dim, rng=rng)
        else:
            self.projection = None

    def forward(self, device_outputs: Sequence[Tensor]) -> Tensor:
        outputs = self._check_inputs(device_outputs)
        combined = concatenate(outputs, axis=1)
        if self.projection is not None:
            if combined.ndim != 2:
                raise ValueError(
                    "projection is only supported for 2-D (N, F) device outputs; "
                    f"got a tensor with {combined.ndim} dimensions"
                )
            combined = self.projection(combined)
        return combined

    def output_channels(self, input_channels: int) -> int:
        if self.project:
            return self.feature_dim if self.feature_dim is not None else input_channels
        return input_channels * self.num_devices


def make_aggregator(
    scheme: str,
    num_devices: int,
    feature_dim: Optional[int] = None,
    project_concat: bool = False,
    rng: Optional[np.random.Generator] = None,
) -> Aggregator:
    """Build an aggregator from its two-letter scheme code (``MP``/``AP``/``CC``)."""
    scheme = scheme.upper()
    if scheme == "MP":
        return MaxPoolAggregator(num_devices)
    if scheme == "AP":
        return AveragePoolAggregator(num_devices)
    if scheme == "CC":
        return ConcatAggregator(
            num_devices, feature_dim=feature_dim, project=project_concat, rng=rng
        )
    raise ValueError(f"unknown aggregation scheme '{scheme}'; expected one of {AGGREGATION_SCHEMES}")
