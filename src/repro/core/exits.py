"""Exit points and the normalized-entropy confidence criterion (paper Sec. III-D).

A sample exits the DDNN at the earliest exit point whose prediction is
confident enough.  Confidence is measured by the *normalized entropy* of the
softmax probability vector,

    eta(x) = - sum_i x_i log(x_i) / log(|C|),

which lies in ``[0, 1]``: values near 0 mean the network is confident, values
near 1 mean it is not.  A sample exits at a point when ``eta <= T`` for that
point's threshold ``T``; the final exit always classifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..nn.tensor import Tensor

__all__ = [
    "normalized_entropy",
    "softmax_probabilities",
    "ExitDecision",
    "ExitCriterion",
]


def softmax_probabilities(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the last axis of a plain array."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exponentials = np.exp(shifted)
    return exponentials / exponentials.sum(axis=-1, keepdims=True)


def normalized_entropy(probabilities: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Normalized entropy of probability vectors, in ``[0, 1]``.

    Parameters
    ----------
    probabilities:
        Array of shape ``(..., num_classes)`` whose last axis sums to 1.
    eps:
        Numerical floor inside the logarithm so zero probabilities contribute
        zero entropy (the ``0 * log 0 = 0`` convention).
    """
    probabilities = np.asarray(probabilities, dtype=np.float64)
    num_classes = probabilities.shape[-1]
    if num_classes < 2:
        raise ValueError("normalized entropy requires at least two classes")
    clipped = np.clip(probabilities, eps, 1.0)
    entropy = -np.sum(probabilities * np.log(clipped), axis=-1)
    return entropy / np.log(num_classes)


@dataclass
class ExitDecision:
    """Outcome of applying an exit criterion to a batch of logits.

    Attributes
    ----------
    probabilities:
        Softmax probabilities, shape ``(N, num_classes)``.
    predictions:
        Arg-max class per sample, shape ``(N,)``.
    entropies:
        Normalized entropy per sample, shape ``(N,)``.
    exit_mask:
        Boolean mask of samples confident enough to exit here, shape ``(N,)``.
    """

    probabilities: np.ndarray
    predictions: np.ndarray
    entropies: np.ndarray
    exit_mask: np.ndarray

    @property
    def exit_fraction(self) -> float:
        """Fraction of the batch that exits at this point."""
        if self.exit_mask.size == 0:
            return 0.0
        return float(np.mean(self.exit_mask))


class ExitCriterion:
    """Normalized-entropy threshold rule applied at one exit point.

    Parameters
    ----------
    threshold:
        Threshold ``T`` in ``[0, 1]``.  ``T=0`` exits no samples, ``T=1``
        exits every sample.
    name:
        Optional label (e.g. ``"local"``, ``"edge"``, ``"cloud"``) used in
        reports and telemetry.
    """

    def __init__(self, threshold: float, name: Optional[str] = None) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must lie in [0, 1], got {threshold}")
        self.threshold = float(threshold)
        self.name = name or "exit"

    def __repr__(self) -> str:
        return f"ExitCriterion(name={self.name!r}, threshold={self.threshold})"

    def evaluate(self, logits) -> ExitDecision:
        """Apply the criterion to logits (``Tensor`` or ``ndarray``)."""
        if isinstance(logits, Tensor):
            logits = logits.data
        probabilities = softmax_probabilities(logits)
        entropies = normalized_entropy(probabilities)
        predictions = probabilities.argmax(axis=-1)
        exit_mask = entropies <= self.threshold
        return ExitDecision(
            probabilities=probabilities,
            predictions=predictions,
            entropies=entropies,
            exit_mask=exit_mask,
        )

    def with_threshold(self, threshold: float) -> "ExitCriterion":
        """Return a copy with a different threshold."""
        return ExitCriterion(threshold, name=self.name)


def exit_thresholds_from_sequence(
    thresholds: Sequence[float], names: Optional[Sequence[str]] = None
) -> list:
    """Build a list of :class:`ExitCriterion` from plain thresholds."""
    if names is None:
        names = [f"exit{i}" for i in range(len(thresholds))]
    if len(names) != len(thresholds):
        raise ValueError("names and thresholds must have the same length")
    return [ExitCriterion(t, name=n) for t, n in zip(thresholds, names)]
