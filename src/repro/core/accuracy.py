"""Accuracy measures defined by the paper (Section III-F).

* **Local / Edge / Cloud accuracy** — accuracy when 100% of samples are
  classified at that exit.
* **Overall accuracy** — accuracy of staged inference, where each sample is
  classified at the first exit whose normalized entropy is below its
  threshold.
* **Individual accuracy** — accuracy of a per-device model trained in
  isolation (see :mod:`repro.baselines.individual`); included here only as a
  result container so every measure lives in one report type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..datasets.mvmc import MVMCDataset
from ..nn.tensor import no_grad
from .ddnn import DDNN
from .inference import StagedInferenceEngine

__all__ = ["AccuracyReport", "evaluate_exit_accuracies", "evaluate_overall", "full_accuracy_report"]


@dataclass
class AccuracyReport:
    """All paper accuracy measures for one trained DDNN on one dataset."""

    exit_accuracy: Dict[str, float] = field(default_factory=dict)
    overall_accuracy: Optional[float] = None
    local_exit_fraction: Optional[float] = None
    communication_bytes: Optional[float] = None
    individual_accuracy: Dict[int, float] = field(default_factory=dict)

    @property
    def local_accuracy(self) -> Optional[float]:
        return self.exit_accuracy.get("local")

    @property
    def edge_accuracy(self) -> Optional[float]:
        return self.exit_accuracy.get("edge")

    @property
    def cloud_accuracy(self) -> Optional[float]:
        return self.exit_accuracy.get("cloud")

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary form used by the experiment result tables."""
        payload: Dict[str, object] = {
            f"{name}_accuracy": value for name, value in self.exit_accuracy.items()
        }
        if self.overall_accuracy is not None:
            payload["overall_accuracy"] = self.overall_accuracy
        if self.local_exit_fraction is not None:
            payload["local_exit_fraction"] = self.local_exit_fraction
        if self.communication_bytes is not None:
            payload["communication_bytes"] = self.communication_bytes
        if self.individual_accuracy:
            payload["individual_accuracy"] = dict(self.individual_accuracy)
        return payload


def evaluate_exit_accuracies(
    model: DDNN, dataset: MVMCDataset, batch_size: int = 64
) -> Dict[str, float]:
    """Accuracy of each exit when classifying 100% of the dataset there."""
    model.eval()
    correct = {name: 0 for name in model.exit_names}
    total = 0
    with no_grad():
        for start in range(0, len(dataset), batch_size):
            views = dataset.images[start : start + batch_size]
            targets = dataset.labels[start : start + batch_size]
            output = model(views)
            total += len(targets)
            for name, logits in zip(output.exit_names, output.exit_logits):
                correct[name] += int(np.sum(logits.data.argmax(axis=1) == targets))
    return {name: correct[name] / total for name in model.exit_names}


def evaluate_overall(
    model: DDNN,
    dataset: MVMCDataset,
    thresholds: Union[float, Sequence[float]],
    batch_size: int = 64,
) -> AccuracyReport:
    """Overall accuracy under staged inference plus the implied comm. cost."""
    engine = StagedInferenceEngine(model, thresholds, batch_size=batch_size)
    result = engine.run(dataset)
    report = AccuracyReport(
        exit_accuracy={
            name: float(np.mean(result.exit_predictions[name] == dataset.labels))
            for name in model.exit_names
        },
        overall_accuracy=result.overall_accuracy(dataset.labels),
        local_exit_fraction=result.local_exit_fraction,
        communication_bytes=engine.communication_bytes(result),
    )
    return report


def full_accuracy_report(
    model: DDNN,
    dataset: MVMCDataset,
    thresholds: Union[float, Sequence[float]],
    individual_accuracy: Optional[Dict[int, float]] = None,
    batch_size: int = 64,
) -> AccuracyReport:
    """Every paper accuracy measure in one report."""
    report = evaluate_overall(model, dataset, thresholds, batch_size=batch_size)
    if individual_accuracy is not None:
        report.individual_accuracy = dict(individual_accuracy)
    return report
