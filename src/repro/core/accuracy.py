"""Accuracy measures defined by the paper (Section III-F).

* **Local / Edge / Cloud accuracy** — accuracy when 100% of samples are
  classified at that exit.
* **Overall accuracy** — accuracy of staged inference, where each sample is
  classified at the first exit whose normalized entropy is below its
  threshold.
* **Individual accuracy** — accuracy of a per-device model trained in
  isolation (see :mod:`repro.baselines.individual`); included here only as a
  result container so every measure lives in one report type.

Every function here is a thin veneer over the forward-once
:class:`~repro.core.oracle.ExitOracle`: the model is forwarded exactly once
per (model, dataset) call, and all measures are vectorized numpy over the
cached per-exit logits.  Pass ``oracle=`` to reuse an existing capture and
skip the forward entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Union

from ..datasets.mvmc import MVMCDataset
from .ddnn import DDNN
from .oracle import ExitOracle

__all__ = ["AccuracyReport", "evaluate_exit_accuracies", "evaluate_overall", "full_accuracy_report"]


@dataclass
class AccuracyReport:
    """All paper accuracy measures for one trained DDNN on one dataset."""

    exit_accuracy: Dict[str, float] = field(default_factory=dict)
    overall_accuracy: Optional[float] = None
    local_exit_fraction: Optional[float] = None
    communication_bytes: Optional[float] = None
    individual_accuracy: Dict[int, float] = field(default_factory=dict)

    @property
    def local_accuracy(self) -> Optional[float]:
        return self.exit_accuracy.get("local")

    @property
    def edge_accuracy(self) -> Optional[float]:
        return self.exit_accuracy.get("edge")

    @property
    def cloud_accuracy(self) -> Optional[float]:
        return self.exit_accuracy.get("cloud")

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary form used by the experiment result tables."""
        payload: Dict[str, object] = {
            f"{name}_accuracy": value for name, value in self.exit_accuracy.items()
        }
        if self.overall_accuracy is not None:
            payload["overall_accuracy"] = self.overall_accuracy
        if self.local_exit_fraction is not None:
            payload["local_exit_fraction"] = self.local_exit_fraction
        if self.communication_bytes is not None:
            payload["communication_bytes"] = self.communication_bytes
        if self.individual_accuracy:
            payload["individual_accuracy"] = dict(self.individual_accuracy)
        return payload


def evaluate_exit_accuracies(
    model: DDNN,
    dataset: MVMCDataset,
    batch_size: int = 64,
    compile: bool = False,
    oracle: Optional[ExitOracle] = None,
) -> Dict[str, float]:
    """Accuracy of each exit when classifying 100% of the dataset there."""
    resolved = ExitOracle.resolve(model, dataset, batch_size, compile, oracle)
    return resolved.exit_accuracies()


def evaluate_overall(
    model: DDNN,
    dataset: MVMCDataset,
    thresholds: Union[float, Sequence[float]],
    batch_size: int = 64,
    compile: bool = False,
    oracle: Optional[ExitOracle] = None,
) -> AccuracyReport:
    """Overall accuracy under staged inference plus the implied comm. cost."""
    resolved = ExitOracle.resolve(model, dataset, batch_size, compile, oracle)
    return resolved.accuracy_report(thresholds, targets=dataset.labels)


def full_accuracy_report(
    model: DDNN,
    dataset: MVMCDataset,
    thresholds: Union[float, Sequence[float]],
    individual_accuracy: Optional[Dict[int, float]] = None,
    batch_size: int = 64,
    compile: bool = False,
    oracle: Optional[ExitOracle] = None,
) -> AccuracyReport:
    """Every paper accuracy measure in one report (one forward pass total)."""
    resolved = ExitOracle.resolve(model, dataset, batch_size, compile, oracle)
    return resolved.accuracy_report(
        thresholds, targets=dataset.labels, individual_accuracy=individual_accuracy
    )
