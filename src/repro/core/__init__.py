"""``repro.core`` — the DDNN framework (the paper's primary contribution).

Public surface:

* :class:`DDNNConfig`, :class:`TrainingConfig`, :class:`DDNNTopology` —
  architecture and training hyper-parameters;
* :func:`build_ddnn` / :class:`DDNN` — the multi-exit, multi-device model;
* aggregation schemes (MP / AP / CC);
* :class:`ExitCriterion` and :func:`normalized_entropy` — the confidence rule;
* :class:`DDNNTrainer` — joint multi-exit training;
* :class:`ExitCascade` — the shared staged exit-cascade engine;
* :class:`StagedInferenceEngine` — threshold-based distributed inference;
* :class:`ExitOracle` — forward-once logit cache: vectorized threshold
  sweeps, exit-rate quantile calibration and accuracy reports;
* :class:`CommunicationModel` — the paper's Eq. 1 byte accounting;
* threshold search and accuracy reporting helpers.
"""

from .accuracy import AccuracyReport, evaluate_exit_accuracies, evaluate_overall, full_accuracy_report
from .cascade import (
    CascadeResult,
    CascadeRouter,
    ExitCascade,
    StageOutcome,
    build_exit_criteria,
    normalize_thresholds,
)
from .aggregation import (
    AGGREGATION_SCHEMES,
    Aggregator,
    AveragePoolAggregator,
    ConcatAggregator,
    MaxPoolAggregator,
    make_aggregator,
)
from .communication import (
    CommunicationModel,
    ddnn_communication_bytes,
    raw_offload_bytes,
)
from .config import DDNNConfig, DDNNTopology, TrainingConfig
from .ddnn import DDNN, CloudModel, DDNNOutput, DeviceBranch, EdgeModel, build_ddnn
from .exits import ExitCriterion, ExitDecision, normalized_entropy, softmax_probabilities
from .inference import InferenceResult, StagedInferenceEngine, staged_inference
from .oracle import ExitOracle, SweepPoint, SweepTable
from .threshold import (
    ThresholdCandidate,
    ThresholdSearchResult,
    search_threshold,
    threshold_for_exit_rate,
)
from .training import DDNNTrainer, EpochStats, TrainingHistory, train_ddnn

__all__ = [
    "DDNNConfig",
    "DDNNTopology",
    "TrainingConfig",
    "DDNN",
    "DDNNOutput",
    "DeviceBranch",
    "EdgeModel",
    "CloudModel",
    "build_ddnn",
    "Aggregator",
    "MaxPoolAggregator",
    "AveragePoolAggregator",
    "ConcatAggregator",
    "make_aggregator",
    "AGGREGATION_SCHEMES",
    "ExitCriterion",
    "ExitDecision",
    "normalized_entropy",
    "softmax_probabilities",
    "ExitCascade",
    "CascadeRouter",
    "CascadeResult",
    "StageOutcome",
    "normalize_thresholds",
    "build_exit_criteria",
    "DDNNTrainer",
    "EpochStats",
    "TrainingHistory",
    "train_ddnn",
    "StagedInferenceEngine",
    "InferenceResult",
    "staged_inference",
    "ExitOracle",
    "SweepPoint",
    "SweepTable",
    "CommunicationModel",
    "ddnn_communication_bytes",
    "raw_offload_bytes",
    "ThresholdCandidate",
    "ThresholdSearchResult",
    "search_threshold",
    "threshold_for_exit_rate",
    "AccuracyReport",
    "evaluate_exit_accuracies",
    "evaluate_overall",
    "full_accuracy_report",
]
