"""Communication-cost model for DDNN inference (paper Section III-E).

The paper measures the average number of bytes an end device transmits per
sample.  Two messages are involved:

1. the class-score summary sent to the local aggregator for **every** sample
   (one 4-byte float per class), and
2. the binarized feature map sent to the cloud only for the ``1 - l``
   fraction of samples that are not exited locally (``f`` filters, ``o``
   binary output elements per filter, packed 8 per byte).

The total per-device cost is Eq. 1 of the paper:

    c = 4 * |C| + (1 - l) * f * o / 8

The standard baseline transmits the raw sensor input instead (a 32x32 RGB
image = 3072 bytes per sample).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .config import DDNNConfig

__all__ = [
    "FLOAT_BYTES",
    "BITS_PER_BYTE",
    "CommunicationModel",
    "ddnn_communication_bytes",
    "raw_offload_bytes",
]

#: Bytes used to represent one floating-point number in transit.
FLOAT_BYTES = 4
#: Bits per byte (binary feature maps are packed).
BITS_PER_BYTE = 8


def ddnn_communication_bytes(
    num_classes: int,
    local_exit_fraction: float,
    filters: int,
    filter_output_elements: int,
) -> float:
    """Average per-device communication per sample in bytes (paper Eq. 1).

    Parameters
    ----------
    num_classes:
        ``|C|``, the number of target classes.
    local_exit_fraction:
        ``l``, the fraction of samples exited at the local exit point.
    filters:
        ``f``, the number of filters of the device's final ConvP block.
    filter_output_elements:
        ``o``, the number of output elements of a single filter (e.g. 16x16 =
        256 for a 32x32 input after one ConvP block).
    """
    if not 0.0 <= local_exit_fraction <= 1.0:
        raise ValueError(f"local_exit_fraction must be in [0, 1], got {local_exit_fraction}")
    if num_classes < 1 or filters < 1 or filter_output_elements < 1:
        raise ValueError("num_classes, filters and filter_output_elements must be positive")
    summary = FLOAT_BYTES * num_classes
    offload = (1.0 - local_exit_fraction) * filters * filter_output_elements / BITS_PER_BYTE
    return summary + offload


def raw_offload_bytes(
    input_channels: int = 3, input_size: int = 32, bytes_per_value: int = 1
) -> float:
    """Bytes needed to ship the raw sensor input to the cloud (baseline).

    A 32x32 RGB image at one byte per pixel channel costs 3072 bytes, the
    figure used in the paper's Section IV-H comparison.
    """
    return float(input_channels * input_size * input_size * bytes_per_value)


@dataclass
class CommunicationModel:
    """Communication accounting bound to one DDNN architecture.

    The model exposes per-device and total costs for DDNN inference, and the
    raw-offload baseline for the same input geometry, so experiment code can
    report the communication reduction factor directly.
    """

    config: DDNNConfig

    def per_device_bytes(self, local_exit_fraction: float) -> float:
        """Average bytes transmitted per sample by a single end device (Eq. 1)."""
        return ddnn_communication_bytes(
            num_classes=self.config.num_classes,
            local_exit_fraction=local_exit_fraction,
            filters=self.config.device_filters,
            filter_output_elements=self.config.device_feature_map_elements,
        )

    def total_bytes(self, local_exit_fraction: float) -> float:
        """Average bytes transmitted per sample by all devices combined."""
        return self.config.num_devices * self.per_device_bytes(local_exit_fraction)

    def raw_offload_per_device_bytes(self) -> float:
        """Bytes per sample if a device offloads its raw sensor input."""
        return raw_offload_bytes(self.config.input_channels, self.config.input_size)

    def reduction_factor(self, local_exit_fraction: float) -> float:
        """Raw-offload cost divided by DDNN cost (the paper reports > 20x)."""
        ddnn_cost = self.per_device_bytes(local_exit_fraction)
        return self.raw_offload_per_device_bytes() / ddnn_cost
