"""The distributed deep neural network (DDNN) model.

This module implements the paper's evaluation architecture (Figure 4) and its
generalisations to the six hierarchy configurations of Figure 2:

* each **end device** runs one or more fused binary ConvP blocks followed by
  an FC block that emits a per-device class-score vector;
* a **local aggregator** fuses the per-device score vectors into the local
  exit's logits;
* the per-device ConvP feature maps are forwarded (conceptually, over the
  network) to the **edge** and/or the **cloud**, aggregated there, processed
  by further ConvP/FC blocks, and classified at that tier's exit.

The model itself is hierarchy-agnostic: it computes every exit's logits in a
single forward pass for training (joint multi-exit loss) and exposes the
per-device intermediate outputs so the staged inference engine and the
hierarchy simulator can reproduce the distributed behaviour faithfully.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..nn.blocks import ConvPBlock, FCBlock, block_memory_bytes
from ..nn.layers import Module, Sequential
from ..nn.tensor import Tensor
from .aggregation import Aggregator, make_aggregator
from .config import DDNNConfig, DDNNTopology

__all__ = ["DeviceBranch", "EdgeModel", "CloudModel", "DDNNOutput", "DDNN", "build_ddnn"]

ViewsLike = Union[np.ndarray, Sequence[Tensor]]


class DeviceBranch(Module):
    """The NN section mapped onto a single end device.

    It consists of ``device_conv_blocks`` ConvP blocks followed by an FC
    block producing a vector with one entry per class (the "exit output"
    sent to the local aggregator).  The final ConvP activation map is the
    intermediate output forwarded to the next tier when the local exit is
    not confident.
    """

    def __init__(
        self,
        in_channels: int,
        filters: int,
        input_size: int,
        num_classes: int,
        conv_blocks: int = 1,
        binary: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.in_channels = in_channels
        self.filters = filters
        self.input_size = input_size
        self.num_classes = num_classes

        blocks: List[Module] = []
        channels = in_channels
        size = input_size
        for _ in range(conv_blocks):
            block = ConvPBlock(channels, filters, binary=binary, rng=rng)
            blocks.append(block)
            size = block.output_spatial_size(size)
            channels = filters
        self.features = Sequential(*blocks)
        self.output_size = size
        self.output_channels = channels
        self.classifier = FCBlock(
            channels * size * size, num_classes, binary=binary, final=True, rng=rng
        )

    def forward(self, inputs: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(feature_map, class_scores)`` for a batch of views."""
        feature_map = self.features(inputs)
        scores = self.classifier(feature_map.flatten(start_dim=1))
        return feature_map, scores

    def memory_bytes(self) -> float:
        """Deployment footprint of this device's NN section in bytes."""
        return block_memory_bytes(self)


class _UpperTier(Module):
    """Shared implementation of the edge and cloud NN sections.

    A stack of ConvP blocks over the aggregated feature map, followed by an
    optional hidden FC block and a final FC block producing exit logits.
    """

    def __init__(
        self,
        in_channels: int,
        input_size: int,
        filters: int,
        conv_blocks: int,
        num_classes: int,
        hidden_units: int = 0,
        binary: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        blocks: List[Module] = []
        channels = in_channels
        size = input_size
        for _ in range(conv_blocks):
            if size < 2:
                break
            block = ConvPBlock(channels, filters, binary=binary, rng=rng)
            blocks.append(block)
            size = block.output_spatial_size(size)
            channels = filters
        self.features = Sequential(*blocks)
        self.output_channels = channels
        self.output_size = size
        flattened = channels * size * size
        if hidden_units > 0:
            self.hidden = FCBlock(flattened, hidden_units, binary=binary, rng=rng)
            classifier_in = hidden_units
        else:
            self.hidden = None
            classifier_in = flattened
        self.classifier = FCBlock(classifier_in, num_classes, binary=binary, final=True, rng=rng)

    def forward(self, inputs: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(feature_map, logits)`` for an aggregated input map."""
        feature_map = self.features(inputs)
        hidden = feature_map.flatten(start_dim=1)
        if self.hidden is not None:
            hidden = self.hidden(hidden)
        logits = self.classifier(hidden)
        return feature_map, logits


class EdgeModel(_UpperTier):
    """The NN section mapped onto an edge (fog) node."""


class CloudModel(_UpperTier):
    """The NN section mapped onto the cloud."""


@dataclass
class DDNNOutput:
    """All intermediate and exit outputs of one DDNN forward pass.

    Attributes
    ----------
    exit_logits:
        Logits at each exit, ordered local -> edge -> cloud (whichever exist).
    exit_names:
        Parallel list of exit names.
    device_scores:
        Per-device class-score tensors (inputs to the local aggregator).
    device_features:
        Per-device ConvP feature maps (payloads sent up the hierarchy).
    edge_features:
        Per-edge feature maps (present only for edge topologies).
    """

    exit_logits: List[Tensor]
    exit_names: List[str]
    device_scores: List[Tensor] = field(default_factory=list)
    device_features: List[Tensor] = field(default_factory=list)
    edge_features: List[Tensor] = field(default_factory=list)

    def logits_by_name(self, name: str) -> Tensor:
        """Look up an exit's logits by its name (``local``/``edge``/``cloud``)."""
        try:
            index = self.exit_names.index(name)
        except ValueError as error:
            raise KeyError(f"no exit named '{name}' (have {self.exit_names})") from error
        return self.exit_logits[index]

    @property
    def final_logits(self) -> Tensor:
        """Logits of the last (always-classifying) exit."""
        return self.exit_logits[-1]


class DDNN(Module):
    """A jointly trained DNN partitioned over devices, optional edges and cloud.

    The constructor takes a :class:`~repro.core.config.DDNNConfig`; use
    :func:`build_ddnn` for a convenient entry point.  The forward pass accepts
    a multi-view batch of shape ``(N, num_devices, C, H, W)`` (or a list of
    per-device tensors) and returns a :class:`DDNNOutput` containing every
    exit's logits, which is what the joint training loss consumes.
    """

    def __init__(self, config: DDNNConfig) -> None:
        super().__init__()
        self.config = config
        topology = config.topology
        rng = np.random.default_rng(config.seed)

        # ---------------- device tier ---------------- #
        self._device_branches: List[DeviceBranch] = []
        for device_index in range(config.num_devices):
            branch = DeviceBranch(
                config.input_channels,
                config.device_filters,
                config.input_size,
                config.num_classes,
                conv_blocks=config.device_conv_blocks,
                binary=config.binary_devices,
                rng=rng,
            )
            setattr(self, f"device{device_index}", branch)
            self._device_branches.append(branch)
        device_map_size = self._device_branches[0].output_size
        device_channels = self._device_branches[0].output_channels

        # ---------------- local exit ---------------- #
        self.has_local_exit = topology.has_local_exit
        if self.has_local_exit:
            self.local_aggregator = make_aggregator(
                config.local_aggregation,
                config.num_devices,
                feature_dim=config.num_classes,
                project_concat=True,
                rng=rng,
            )
        else:
            self.local_aggregator = None

        # ---------------- edge tier ---------------- #
        self.has_edge = topology.has_edge
        self.num_edges = topology.num_edges if topology.has_edge else 0
        self._edge_models: List[EdgeModel] = []
        self._edge_aggregators: List[Aggregator] = []
        self._edge_device_groups: List[List[int]] = []
        if self.has_edge:
            groups = _partition_devices(config.num_devices, self.num_edges)
            self._edge_device_groups = groups
            for edge_index, group in enumerate(groups):
                aggregator = make_aggregator(
                    config.edge_aggregation,
                    len(group),
                    feature_dim=device_channels,
                    project_concat=False,
                    rng=rng,
                )
                edge_in_channels = aggregator.output_channels(device_channels)
                edge = EdgeModel(
                    edge_in_channels,
                    device_map_size,
                    config.edge_filters,
                    config.edge_conv_blocks,
                    config.num_classes,
                    hidden_units=0,
                    binary=config.binary_edge,
                    rng=rng,
                )
                setattr(self, f"edge_aggregator{edge_index}", aggregator)
                setattr(self, f"edge{edge_index}", edge)
                self._edge_aggregators.append(aggregator)
                self._edge_models.append(edge)
            # Exit logits of multiple edges are fused with max pooling (same
            # class-score semantics as the local exit).
            self.edge_exit_aggregator = make_aggregator("MP", self.num_edges)
            cloud_input_channels_per_source = self._edge_models[0].output_channels
            cloud_sources = self.num_edges
            cloud_input_size = self._edge_models[0].output_size
        else:
            cloud_input_channels_per_source = device_channels
            cloud_sources = config.num_devices
            cloud_input_size = device_map_size

        # ---------------- cloud tier ---------------- #
        self.cloud_aggregator = make_aggregator(
            config.cloud_aggregation,
            cloud_sources,
            feature_dim=cloud_input_channels_per_source,
            project_concat=False,
            rng=rng,
        )
        cloud_in_channels = self.cloud_aggregator.output_channels(cloud_input_channels_per_source)
        self.cloud = CloudModel(
            cloud_in_channels,
            cloud_input_size,
            config.cloud_filters,
            config.cloud_conv_blocks,
            config.num_classes,
            hidden_units=config.cloud_hidden_units,
            binary=config.binary_cloud,
            rng=rng,
        )

        self.exit_names: List[str] = []
        if self.has_local_exit:
            self.exit_names.append("local")
        if self.has_edge:
            self.exit_names.append("edge")
        self.exit_names.append("cloud")

    # ------------------------------------------------------------------ #
    @property
    def device_branches(self) -> List[DeviceBranch]:
        """The per-device NN sections, in device order."""
        return self._device_branches

    @property
    def edge_models(self) -> List[EdgeModel]:
        """The per-edge NN sections (empty for topologies without an edge)."""
        return self._edge_models

    @property
    def edge_device_groups(self) -> List[List[int]]:
        """Device indices attached to each edge node."""
        return self._edge_device_groups

    @property
    def num_exits(self) -> int:
        return len(self.exit_names)

    # ------------------------------------------------------------------ #
    def _split_views(self, views: ViewsLike) -> List[Tensor]:
        if isinstance(views, (list, tuple)):
            tensors = [v if isinstance(v, Tensor) else Tensor(v) for v in views]
        else:
            array = np.asarray(views, dtype=np.float64)
            if array.ndim != 5:
                raise ValueError(
                    f"expected views of shape (N, D, C, H, W), got {array.shape}"
                )
            tensors = [Tensor(array[:, index]) for index in range(array.shape[1])]
        if len(tensors) != self.config.num_devices:
            raise ValueError(
                f"model has {self.config.num_devices} devices but received "
                f"{len(tensors)} view streams"
            )
        return tensors

    def forward(self, views: ViewsLike) -> DDNNOutput:
        """Compute every exit's logits for a multi-view batch."""
        device_inputs = self._split_views(views)

        device_features: List[Tensor] = []
        device_scores: List[Tensor] = []
        for branch, device_input in zip(self._device_branches, device_inputs):
            feature_map, scores = branch(device_input)
            device_features.append(feature_map)
            device_scores.append(scores)

        exit_logits: List[Tensor] = []
        exit_names: List[str] = []

        if self.has_local_exit:
            local_logits = self.local_aggregator(device_scores)
            exit_logits.append(local_logits)
            exit_names.append("local")

        edge_features: List[Tensor] = []
        if self.has_edge:
            edge_scores: List[Tensor] = []
            for aggregator, edge, group in zip(
                self._edge_aggregators, self._edge_models, self._edge_device_groups
            ):
                aggregated = aggregator([device_features[i] for i in group])
                feature_map, logits = edge(aggregated)
                edge_features.append(feature_map)
                edge_scores.append(logits)
            if len(edge_scores) == 1:
                edge_logits = edge_scores[0]
            else:
                edge_logits = self.edge_exit_aggregator(edge_scores)
            exit_logits.append(edge_logits)
            exit_names.append("edge")
            cloud_sources = edge_features
        else:
            cloud_sources = device_features

        aggregated = self.cloud_aggregator(cloud_sources)
        _, cloud_logits = self.cloud(aggregated)
        exit_logits.append(cloud_logits)
        exit_names.append("cloud")

        return DDNNOutput(
            exit_logits=exit_logits,
            exit_names=exit_names,
            device_scores=device_scores,
            device_features=device_features,
            edge_features=edge_features,
        )

    # ------------------------------------------------------------------ #
    def device_memory_bytes(self) -> List[float]:
        """Per-device deployment footprint in bytes (paper claims < 2 KB)."""
        return [branch.memory_bytes() for branch in self._device_branches]

    def summary(self) -> Dict[str, object]:
        """A small dictionary describing the instantiated architecture."""
        return {
            "topology": self.config.topology.name,
            "scheme": self.config.scheme,
            "num_devices": self.config.num_devices,
            "num_edges": self.num_edges,
            "device_filters": self.config.device_filters,
            "cloud_filters": self.config.cloud_filters,
            "exits": list(self.exit_names),
            "parameters": self.num_parameters(),
            "device_memory_bytes": self.device_memory_bytes(),
        }


def _partition_devices(num_devices: int, num_edges: int) -> List[List[int]]:
    """Assign devices to edges contiguously and as evenly as possible."""
    if num_edges < 1:
        raise ValueError("num_edges must be at least 1")
    if num_edges > num_devices:
        raise ValueError("cannot have more edges than devices")
    groups: List[List[int]] = [[] for _ in range(num_edges)]
    for device_index in range(num_devices):
        groups[device_index * num_edges // num_devices].append(device_index)
    return groups


def build_ddnn(config: Optional[DDNNConfig] = None, **overrides) -> DDNN:
    """Build a DDNN from a config, applying keyword overrides.

    Examples
    --------
    >>> model = build_ddnn(num_devices=4, device_filters=2, local_aggregation="MP")
    """
    if config is None:
        config = DDNNConfig(**overrides)
    elif overrides:
        values = {**config.__dict__, **overrides}
        config = DDNNConfig(**values)
    return DDNN(config)
