"""Configuration dataclasses for DDNN architectures and training runs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

__all__ = ["DDNNTopology", "DDNNConfig", "TrainingConfig"]


#: Named topologies matching the sub-figures of the paper's Figure 2.
DDNN_TOPOLOGIES = (
    "cloud_only",            # (a) standard DNN in the cloud
    "device_cloud",          # (b) single device + cloud with a local exit
    "devices_cloud",         # (c) multiple devices + cloud (paper's evaluation)
    "device_edge_cloud",     # (d) single device + edge + cloud
    "devices_edge_cloud",    # (e) multiple devices + edge + cloud
    "devices_edges_cloud",   # (f) multiple devices + multiple edges + cloud
)


@dataclass(frozen=True)
class DDNNTopology:
    """Which tiers exist in the distributed hierarchy and how they are wired.

    Attributes
    ----------
    name:
        One of the Figure 2 configuration names (see ``DDNN_TOPOLOGIES``).
    has_local_exit:
        Whether an exit point exists after the device tier.
    has_edge:
        Whether an edge tier sits between devices and cloud.
    num_edges:
        Number of edge nodes (only meaningful when ``has_edge``); devices are
        partitioned round-robin across edges.
    """

    name: str
    has_local_exit: bool
    has_edge: bool
    num_edges: int = 1

    @staticmethod
    def from_name(name: str, num_edges: int = 1) -> "DDNNTopology":
        if name not in DDNN_TOPOLOGIES:
            raise ValueError(f"unknown topology '{name}'; expected one of {DDNN_TOPOLOGIES}")
        has_local_exit = name != "cloud_only"
        has_edge = "edge" in name
        edges = num_edges if name == "devices_edges_cloud" else (1 if has_edge else 0)
        return DDNNTopology(name=name, has_local_exit=has_local_exit, has_edge=has_edge, num_edges=edges)


@dataclass
class DDNNConfig:
    """Architecture hyper-parameters of a DDNN (paper Fig. 4 defaults).

    Attributes
    ----------
    num_devices:
        Number of end devices (cameras).
    num_classes:
        Number of target classes (3 in the paper's evaluation).
    input_channels, input_size:
        Per-device input geometry (3 x 32 x 32 RGB in the paper).
    device_filters:
        Number of filters ``f`` in each device's ConvP block.
    device_conv_blocks:
        Number of ConvP blocks per device (1 in the evaluation architecture).
    cloud_filters:
        Number of filters in the cloud's ConvP blocks.
    cloud_conv_blocks:
        Number of ConvP blocks in the cloud section.
    cloud_hidden_units:
        Width of the hidden FC block before the cloud exit (0 disables it).
    edge_filters, edge_conv_blocks:
        Edge-tier geometry (used only when the topology has an edge).
    local_aggregation, cloud_aggregation, edge_aggregation:
        Two-letter scheme codes (``MP``/``AP``/``CC``); the paper's default is
        MP locally and CC in the cloud (``MP-CC``).
    binary_devices, binary_cloud, binary_edge:
        Whether each tier uses binary (BNN) blocks.  The paper's evaluation is
        fully binary; the mixed-precision extension sets ``binary_cloud=False``.
    topology:
        Hierarchy wiring, see :class:`DDNNTopology`.
    seed:
        Seed used for parameter initialisation.
    """

    num_devices: int = 6
    num_classes: int = 3
    input_channels: int = 3
    input_size: int = 32
    device_filters: int = 4
    device_conv_blocks: int = 1
    cloud_filters: int = 16
    cloud_conv_blocks: int = 2
    cloud_hidden_units: int = 64
    edge_filters: int = 8
    edge_conv_blocks: int = 1
    local_aggregation: str = "MP"
    cloud_aggregation: str = "CC"
    edge_aggregation: str = "CC"
    binary_devices: bool = True
    binary_cloud: bool = True
    binary_edge: bool = True
    topology: DDNNTopology = field(
        default_factory=lambda: DDNNTopology.from_name("devices_cloud")
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_devices < 1:
            raise ValueError("num_devices must be at least 1")
        if self.num_classes < 2:
            raise ValueError("num_classes must be at least 2")
        if self.device_filters < 1 or self.cloud_filters < 1:
            raise ValueError("filter counts must be positive")
        if self.device_conv_blocks < 1:
            raise ValueError("device_conv_blocks must be at least 1")
        for scheme in (self.local_aggregation, self.cloud_aggregation, self.edge_aggregation):
            if scheme.upper() not in ("MP", "AP", "CC"):
                raise ValueError(f"unknown aggregation scheme '{scheme}'")

    @property
    def scheme(self) -> str:
        """Scheme string in the paper's Table I notation, e.g. ``"MP-CC"``."""
        return f"{self.local_aggregation.upper()}-{self.cloud_aggregation.upper()}"

    @property
    def device_output_size(self) -> int:
        """Spatial size of a device's final ConvP output (16 for 32x32 input)."""
        size = self.input_size
        for _ in range(self.device_conv_blocks):
            size = _convp_output_size(size)
        return size

    @property
    def device_feature_map_elements(self) -> int:
        """``o`` in the paper's Eq. 1: output elements of a single filter."""
        return self.device_output_size ** 2


def _convp_output_size(size: int) -> int:
    """Spatial size after one ConvP block (3x3 s1 p1 conv, 3x3 s2 p1 pool)."""
    after_conv = (size + 2 * 1 - 3) // 1 + 1
    return (after_conv + 2 * 1 - 3) // 2 + 1


@dataclass
class TrainingConfig:
    """Hyper-parameters of a joint DDNN training run.

    Defaults follow the paper: Adam with ``alpha=0.001``, ``beta1=0.9``,
    ``beta2=0.999``, ``eps=1e-8``, equal exit weights, 100 epochs.  The epoch
    count is configurable because the reproduction's CI-scale runs use fewer.
    """

    epochs: int = 100
    batch_size: int = 32
    learning_rate: float = 0.001
    beta1: float = 0.9
    beta2: float = 0.999
    eps: float = 1e-8
    exit_weights: Optional[Sequence[float]] = None
    shuffle: bool = True
    seed: int = 0
    verbose: bool = False
    log_every: int = 10

    def __post_init__(self) -> None:
        if self.epochs < 1:
            raise ValueError("epochs must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
