"""Shared staged exit-cascade engine (paper Sections III-D/F).

The entropy-threshold cascade is the heart of DDNN inference: each sample
travels up the exit hierarchy (local -> edge -> cloud) and leaves at the
first exit whose normalized entropy is at or below that exit's threshold;
the final exit always classifies whatever reaches it.

Historically this logic was duplicated between the monolithic
:class:`~repro.core.inference.StagedInferenceEngine` and the distributed
:class:`~repro.hierarchy.runtime.HierarchyRuntime`.  This module is the
single source of truth both layers (and the online
:mod:`repro.serving` subsystem) now share:

* :func:`normalize_thresholds` — threshold broadcasting/validation rules;
* :func:`build_exit_criteria` — thresholds -> :class:`ExitCriterion` list;
* :class:`CascadeRouter` — stateful per-batch router that applies the
  criteria tier by tier and records which exit took each sample;
* :class:`ExitCascade` — criteria + optional communication accounting,
  with :meth:`ExitCascade.run_model` implementing the full batched loop
  over an in-memory :class:`~repro.core.ddnn.DDNN`.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..nn.tensor import no_grad
from .communication import CommunicationModel
from .exits import ExitCriterion, ExitDecision

__all__ = [
    "Thresholds",
    "normalize_thresholds",
    "build_exit_criteria",
    "StageOutcome",
    "CascadeRouter",
    "CascadeResult",
    "ExitCascade",
]

#: A single broadcast threshold or one value per (non-final) exit.
Thresholds = Union[float, Sequence[float]]


def _validate_threshold_value(value) -> float:
    """One threshold: a real, non-negative, non-NaN number (bools rejected)."""
    if isinstance(value, (bool, np.bool_)):
        raise ValueError(
            f"thresholds must be numbers, got bool {value!r} — "
            "True/False silently coercing to 1.0/0.0 is almost never intended"
        )
    value = float(value)
    if np.isnan(value):
        raise ValueError("thresholds must not be NaN")
    if value < 0.0:
        raise ValueError(f"thresholds must be >= 0 (normalized entropy scale), got {value}")
    return value


def normalize_thresholds(thresholds: Thresholds, num_exits: int) -> List[float]:
    """Normalize user-supplied thresholds to one value per exit.

    Rules (identical for every cascade consumer —
    :class:`~repro.core.inference.StagedInferenceEngine`,
    :class:`~repro.hierarchy.runtime.HierarchyRuntime` and
    :class:`~repro.serving.server.DDNNServer`):

    * a single float is broadcast to every exit;
    * a sequence may carry ``num_exits - 1`` values (one per non-final
      exit) or ``num_exits`` values; anything else is a :class:`ValueError`;
    * booleans, NaN and negative values are rejected with a
      :class:`ValueError` (a bool would silently coerce to 0.0/1.0, and a
      NaN threshold would make every exit comparison False);
    * the final exit's threshold is always forced to ``1.0`` because the
      last exit classifies every sample that reaches it.
    """
    if num_exits < 1:
        raise ValueError("a cascade needs at least one exit")
    if isinstance(thresholds, (bool, np.bool_)) or (
        isinstance(thresholds, (int, float, np.integer, np.floating))
    ):
        values = [_validate_threshold_value(thresholds)] * num_exits
    else:
        values = [_validate_threshold_value(t) for t in thresholds]
        if len(values) == num_exits - 1:
            values = values + [1.0]
        if len(values) != num_exits:
            raise ValueError(
                f"expected {num_exits - 1} or {num_exits} thresholds, got {len(values)}"
            )
    values[-1] = 1.0
    return values


def build_exit_criteria(thresholds: Thresholds, exit_names: Sequence[str]) -> List[ExitCriterion]:
    """Build one :class:`ExitCriterion` per exit from raw thresholds."""
    values = normalize_thresholds(thresholds, len(exit_names))
    return [ExitCriterion(value, name=name) for value, name in zip(values, exit_names)]


@dataclass
class StageOutcome:
    """What one exit of the cascade did to the current batch."""

    exit_index: int
    exit_name: str
    decision: ExitDecision
    newly_assigned: np.ndarray  # bool mask over the batch

    @property
    def assigned_rows(self) -> np.ndarray:
        """Batch row indices the exit claimed on this offer."""
        return np.flatnonzero(self.newly_assigned)


class CascadeRouter:
    """Stateful per-batch router applying the exit criteria tier by tier.

    Callers feed each exit's logits (in exit order) via :meth:`offer`; the
    router evaluates the criterion, claims the confident not-yet-assigned
    samples for that exit, and forces the final exit to claim everything
    still unassigned.  Tiers whose samples have all exited may simply not
    be offered — the per-sample result arrays are valid as soon as every
    sample is assigned.
    """

    def __init__(self, criteria: Sequence[ExitCriterion], batch_size: int) -> None:
        self.criteria = list(criteria)
        self.batch_size = batch_size
        self.predictions = np.zeros(batch_size, dtype=np.int64)
        self.exit_indices = np.zeros(batch_size, dtype=np.int64)
        self.entropies = np.zeros(batch_size, dtype=np.float64)
        self.assigned = np.zeros(batch_size, dtype=bool)
        self._next_exit = 0

    @property
    def remaining(self) -> np.ndarray:
        """Boolean mask of samples no exit has claimed yet."""
        return ~self.assigned

    def has_remaining(self) -> bool:
        return not self.assigned.all()

    def offer(self, logits, exit_index: Optional[int] = None) -> StageOutcome:
        """Apply the next (or an explicit) exit's criterion to its logits."""
        index = self._next_exit if exit_index is None else exit_index
        if not 0 <= index < len(self.criteria):
            raise IndexError(f"exit index {index} outside cascade of {len(self.criteria)} exits")
        criterion = self.criteria[index]
        decision = criterion.evaluate(logits)
        if decision.exit_mask.shape[0] != self.batch_size:
            raise ValueError(
                f"logits describe {decision.exit_mask.shape[0]} samples, "
                f"router was built for {self.batch_size}"
            )
        if index == len(self.criteria) - 1:
            take = ~self.assigned
        else:
            take = decision.exit_mask & ~self.assigned
        rows = np.flatnonzero(take)
        self.predictions[rows] = decision.predictions[take]
        self.exit_indices[rows] = index
        self.entropies[rows] = decision.entropies[take]
        self.assigned |= take
        self._next_exit = index + 1
        return StageOutcome(
            exit_index=index,
            exit_name=criterion.name,
            decision=decision,
            newly_assigned=take,
        )


@dataclass
class CascadeResult:
    """Per-sample routing produced by :meth:`ExitCascade.run_model`."""

    predictions: np.ndarray
    exit_indices: np.ndarray
    entropies: np.ndarray
    exit_names: List[str]
    exit_predictions: Dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def exit_names_per_sample(self) -> List[str]:
        """The exit name each sample used, in sample order."""
        return [self.exit_names[index] for index in self.exit_indices.tolist()]


class ExitCascade:
    """The staged entropy-threshold cascade shared by every inference layer.

    Parameters
    ----------
    thresholds:
        One threshold per (non-final) exit, or a single broadcast float —
        see :func:`normalize_thresholds`.
    exit_names:
        Exit names in cascade order (e.g. ``["local", "cloud"]``).
    communication:
        Optional :class:`CommunicationModel` so the cascade can also account
        the per-device bytes implied by a local exit rate (paper Eq. 1).
    precision:
        Compute mode for the compiled path (one of
        :data:`repro.compile.PRECISIONS`): exact ``"float64"`` (default),
        tolerance-mode ``"float32"``, or ``"bitpacked"``.  Ignored unless
        the compiled path is used.
    """

    def __init__(
        self,
        thresholds: Thresholds,
        exit_names: Sequence[str],
        communication: Optional[CommunicationModel] = None,
        compile: bool = False,
        precision: str = "float64",
    ) -> None:
        from ..compile.ops import PRECISIONS

        if precision not in PRECISIONS:
            raise ValueError(
                f"unknown precision {precision!r}; expected one of {PRECISIONS}"
            )
        self.exit_names = list(exit_names)
        self.criteria = build_exit_criteria(thresholds, self.exit_names)
        self.communication = communication
        self.compile_enabled = bool(compile)
        self.precision = precision
        # Models this cascade has served compiled plans for, so a no-arg
        # invalidate_compiled() evicts exactly those from the shared cache.
        self._compiled_models: "weakref.WeakSet" = weakref.WeakSet()

    @classmethod
    def for_model(
        cls,
        model,
        thresholds: Thresholds,
        compile: bool = False,
        precision: str = "float64",
    ) -> "ExitCascade":
        """Build a cascade matching a :class:`~repro.core.ddnn.DDNN`'s exits."""
        return cls(
            thresholds,
            model.exit_names,
            CommunicationModel(model.config),
            compile=compile,
            precision=precision,
        )

    @property
    def num_exits(self) -> int:
        return len(self.criteria)

    @property
    def thresholds(self) -> List[float]:
        """The normalized per-exit thresholds (final always 1.0)."""
        return [criterion.threshold for criterion in self.criteria]

    def router(self, batch_size: int) -> CascadeRouter:
        """A fresh per-batch router over this cascade's criteria."""
        return CascadeRouter(self.criteria, batch_size)

    # ------------------------------------------------------------------ #
    def compiled_for(self, model, precision: Optional[str] = None):
        """The compiled inference plan for a model, from the shared cache.

        Plans are memoized process-wide in :mod:`repro.compile.cache` keyed
        by ``(model, precision)``, so every cascade, engine and grid helper
        built over the same model at the same precision reuses one plan
        instead of recompiling.  ``precision`` defaults to the cascade's
        own mode.  The plan snapshots the model's weights; call
        :meth:`invalidate_compiled` after (re)training to force a rebuild.
        """
        from ..compile.cache import compiled_plan_for

        self._compiled_models.add(model)
        return compiled_plan_for(model, precision or self.precision)

    def invalidate_compiled(self, model=None) -> None:
        """Drop the cached plan(s) this cascade served (after retraining).

        With ``model`` the eviction targets that model; without, every model
        this cascade has served a plan for.  Eviction happens in the shared
        process-wide cache, so *all* consumers of an invalidated model get a
        fresh plan — the plan really is stale for everyone once the model
        retrained — but plans of unrelated models are untouched.
        """
        from ..compile.cache import invalidate_plan

        if model is not None:
            invalidate_plan(model)
            self._compiled_models.discard(model)
            return
        for served in list(self._compiled_models):
            invalidate_plan(served)
        self._compiled_models.clear()

    def run_model(
        self,
        model,
        views: np.ndarray,
        batch_size: int = 64,
        compile: Optional[bool] = None,
    ) -> CascadeResult:
        """Route every sample of ``views`` through the model's exit cascade.

        This is the monolithic staged-inference loop: the model computes all
        exits' logits in one forward pass per batch and the router assigns
        each sample to its earliest confident exit.  ``exit_predictions``
        records every exit's hypothetical prediction for every sample.

        ``compile`` overrides the cascade's ``compile_enabled`` default: the
        compiled path runs the :mod:`repro.compile` inference plan (no
        autograd graph, fused/folded ops) and produces the same predictions
        and routing as the eager path.
        """
        use_compiled = self.compile_enabled if compile is None else bool(compile)
        num_samples = len(views)
        predictions = np.zeros(num_samples, dtype=np.int64)
        exit_indices = np.zeros(num_samples, dtype=np.int64)
        entropies = np.zeros(num_samples, dtype=np.float64)
        exit_predictions: Dict[str, List[np.ndarray]] = {name: [] for name in self.exit_names}

        plan = self.compiled_for(model) if use_compiled else None
        model.eval()
        with no_grad():
            for start in range(0, num_samples, batch_size):
                stop = min(start + batch_size, num_samples)
                chunk = views[start:stop]
                output = plan(chunk) if plan is not None else model(chunk)
                router = self.router(stop - start)
                for name, logits in zip(output.exit_names, output.exit_logits):
                    outcome = router.offer(logits)
                    exit_predictions[name].append(outcome.decision.predictions)
                predictions[start:stop] = router.predictions
                exit_indices[start:stop] = router.exit_indices
                entropies[start:stop] = router.entropies

        return CascadeResult(
            predictions=predictions,
            exit_indices=exit_indices,
            entropies=entropies,
            exit_names=list(self.exit_names),
            exit_predictions={
                name: np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
                for name, chunks in exit_predictions.items()
            },
        )

    # ------------------------------------------------------------------ #
    def per_device_bytes(self, local_exit_fraction: float) -> float:
        """Average per-device bytes per sample implied by a local exit rate."""
        if self.communication is None:
            raise ValueError("this cascade was built without a CommunicationModel")
        return self.communication.per_device_bytes(local_exit_fraction)

    def communication_reduction(self, local_exit_fraction: float) -> float:
        """Reduction factor versus offloading the raw sensor input."""
        if self.communication is None:
            raise ValueError("this cascade was built without a CommunicationModel")
        return self.communication.reduction_factor(local_exit_fraction)
