"""Shared fixtures for the test suite.

Training even a tiny DDNN takes a couple of seconds, so the fixtures that
need a trained model are session-scoped and deliberately small: 4 devices,
2 filters, a handful of epochs.  They are good enough to exercise every code
path (multi-exit training, staged inference, the hierarchy runtime) without
making the suite slow.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DDNNConfig, DDNNTrainer, TrainingConfig, build_ddnn
from repro.datasets import DEFAULT_DEVICE_PROFILES, load_mvmc_splits


TINY_NUM_DEVICES = 4
TINY_FILTERS = 2


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_splits():
    """Small train/test MVMC splits shared across the suite."""
    profiles = DEFAULT_DEVICE_PROFILES[:TINY_NUM_DEVICES]
    return load_mvmc_splits(train_samples=64, test_samples=28, profiles=profiles, seed=11)


@pytest.fixture(scope="session")
def tiny_train(tiny_splits):
    return tiny_splits[0]


@pytest.fixture(scope="session")
def tiny_test(tiny_splits):
    return tiny_splits[1]


@pytest.fixture(scope="session")
def tiny_config():
    return DDNNConfig(
        num_devices=TINY_NUM_DEVICES,
        device_filters=TINY_FILTERS,
        cloud_filters=4,
        cloud_conv_blocks=2,
        cloud_hidden_units=16,
        seed=3,
    )


@pytest.fixture(scope="session")
def trained_ddnn(tiny_config, tiny_train):
    """A DDNN trained for a few epochs on the tiny dataset (session-scoped)."""
    model = build_ddnn(tiny_config)
    trainer = DDNNTrainer(model, TrainingConfig(epochs=4, batch_size=32, seed=0))
    trainer.fit(tiny_train)
    model.eval()
    return model


@pytest.fixture()
def untrained_ddnn(tiny_config):
    """A freshly initialised DDNN (function-scoped, mutable in tests)."""
    return build_ddnn(tiny_config)
