"""Tests for the elastic tier plane: live re-partitioning, autoscaling,
load balancing and the diurnal load generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DDNNConfig,
    DDNNTopology,
    DDNNTrainer,
    TrainingConfig,
    build_ddnn,
)
from repro.hierarchy import AutoscalePolicy, LinkSpec, PartitionPlan
from repro.serving import (
    Autoscaler,
    BatchingPolicy,
    DistributedServingFabric,
    DiurnalProcess,
    LoadBalancer,
    RateTracker,
    ServiceModel,
    admission_policy,
)

THRESHOLD = 0.8
SERVICE = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.004)
BATCHING = BatchingPolicy(max_batch_size=4, max_wait_s=0.004)
ONE_WORKER_RPS = SERVICE.capacity_rps(4)


def _routing(responses, after=float("-inf")):
    return sorted(
        (r.request_id, r.prediction, r.exit_index, r.exit_name)
        for r in responses
        if r.completion_time > after
    )


def _fabric(plan, **kwargs):
    kwargs.setdefault("batching", BATCHING)
    kwargs.setdefault("service_models", [SERVICE] * plan.num_tiers)
    return DistributedServingFabric.from_plan(plan, THRESHOLD, **kwargs)


def _paced_submit(fabric, views, targets=None, overload=3.0):
    gap = 1.0 / (overload * ONE_WORKER_RPS)
    for index, sample in enumerate(views):
        target = None if targets is None else targets[index]
        fabric.submit(sample, target=target, at=index * gap)
    return gap


class TestApplyPlan:
    def test_idle_apply_is_synchronous_and_equivalent_to_fresh(
        self, trained_ddnn, tiny_test
    ):
        plan_a = PartitionPlan(trained_ddnn)
        plan_b = plan_a.with_changes(local_exit=False)
        live = _fabric(plan_a, service_models=None)
        report = live.apply_plan(plan_b)
        assert report is not None and report.total_requeued == 0
        assert live.last_repartition is report
        assert live.sections[0].exit_index is None

        live.submit_many(list(tiny_test.images))
        live.run_until_idle(drain=True)

        fresh = _fabric(plan_b, service_models=None)
        fresh.submit_many(list(tiny_test.images))
        fresh.run_until_idle(drain=True)
        assert _routing(live.responses) == _routing(fresh.responses)

    def test_midrun_apply_defers_requeues_and_matches_fresh_fabric(
        self, trained_ddnn, tiny_test
    ):
        plan_a = PartitionPlan(trained_ddnn)
        plan_b = plan_a.with_changes(local_exit=False)
        views = list(tiny_test.images)
        live = _fabric(plan_a)
        gap = _paced_submit(live, views)
        switch_at = (len(views) // 2) * gap + gap / 3.0
        outcome = {}
        live.events.schedule(
            switch_at,
            lambda now: outcome.update(report=live.apply_plan(plan_b, now=now)),
        )
        live.run_until_idle(drain=True)

        handoff = live.last_repartition
        assert handoff is not None and handoff.time >= switch_at
        assert handoff.total_requeued > 0, "boundary moved without a backlog"
        # A busy worker at the switch defers the handoff to the drain barrier.
        assert outcome["report"] is None

        ids = [r.request_id for r in live.responses]
        assert len(ids) == len(views) and len(set(ids)) == len(views)

        fresh = _fabric(plan_b)
        _paced_submit(fresh, views)
        fresh.run_until_idle(drain=True)
        after = _routing(live.responses, after=handoff.time)
        assert after, "no requests completed under the new plan"
        after_ids = {row[0] for row in after}
        reference = [row for row in _routing(fresh.responses) if row[0] in after_ids]
        assert after == reference

    def test_midrun_edge_exit_toggle_three_tier(self, tiny_train, tiny_test):
        config = DDNNConfig(
            num_devices=4,
            device_filters=2,
            cloud_filters=4,
            edge_filters=3,
            cloud_hidden_units=8,
            topology=DDNNTopology.from_name("devices_edge_cloud"),
            seed=5,
        )
        model = build_ddnn(config)
        # A couple of epochs keeps the exit logits away from argmax ties.
        DDNNTrainer(model, TrainingConfig(epochs=2, batch_size=32, seed=0)).fit(
            tiny_train
        )
        views = list(tiny_test.images[:12])
        plan_a = PartitionPlan(model)
        plan_b = plan_a.with_changes(edge_exit=False)

        live = _fabric(plan_a)
        gap = _paced_submit(live, views)
        live.events.schedule(
            6 * gap + gap / 3.0, lambda now: live.apply_plan(plan_b, now=now)
        )
        live.run_until_idle(drain=True)
        handoff = live.last_repartition
        assert handoff is not None
        assert live.tier_names == ["devices", "edge", "cloud"]
        assert [s.exit_index for s in live.sections] == [0, None, 2]

        fresh = _fabric(plan_b)
        _paced_submit(fresh, views)
        fresh.run_until_idle(drain=True)
        after = _routing(live.responses, after=handoff.time)
        after_ids = {row[0] for row in after}
        reference = [row for row in _routing(fresh.responses) if row[0] in after_ids]
        assert after == reference

    def test_apply_plan_rejects_other_model(self, trained_ddnn, untrained_ddnn):
        live = _fabric(PartitionPlan(trained_ddnn), service_models=None)
        with pytest.raises(ValueError, match="model"):
            live.apply_plan(PartitionPlan(untrained_ddnn))

    def test_shed_without_first_exit_is_a_loud_error(self, trained_ddnn, tiny_test):
        plan = PartitionPlan(trained_ddnn, local_exit=False)
        live = _fabric(
            plan, capacity=2, admission=admission_policy("shed-local")
        )
        _paced_submit(live, list(tiny_test.images), overload=6.0)
        with pytest.raises(RuntimeError, match="disables the device tier's exit"):
            live.run_until_idle(drain=True)


class TestDrainAccounting:
    """Satellite: repartition mid-burst with bounded queues + admission."""

    def _run_midburst(self, model, views, plan_b, admission_name, capacity=4):
        plan_a = PartitionPlan(model)
        live = _fabric(
            plan_a, capacity=capacity, admission=admission_policy(admission_name)
        )
        gap = _paced_submit(live, views, overload=4.0)
        live.events.schedule(
            (len(views) // 2) * gap + gap / 3.0,
            lambda now: live.apply_plan(plan_b, now=now),
        )
        live.run_until_idle(drain=True)
        assert live.last_repartition is not None
        return live

    def test_shed_local_accounting_is_exact(self, trained_ddnn, tiny_test):
        # Keep the device exit on both sides of the handoff (shedding needs
        # it); the boundary move here is a worker + uplink retune.
        plan_b = PartitionPlan(
            trained_ddnn,
            workers_per_tier=2,
            uplink=LinkSpec(bandwidth_bytes_per_s=5e6, latency_s=0.01),
        )
        live = self._run_midburst(
            trained_ddnn, list(tiny_test.images), plan_b, "shed-local"
        )
        stats = live.admission_stats
        shed = [r for r in live.responses if r.shed]
        served = [r for r in live.responses if not r.shed]
        assert stats.shed > 0, "overload never triggered shedding"
        assert live.offered == stats.accepted + stats.rejected + stats.shed
        assert len(shed) == stats.shed
        assert len(served) == stats.accepted - stats.dropped
        ids = [r.request_id for r in live.responses]
        assert len(ids) == len(set(ids)), "duplicate responses"
        # The handoff actually took effect.
        assert len(live.tiers[0].pool) == 2
        assert live.last_repartition.workers_per_tier == {"devices": 2, "cloud": 2}

    @pytest.mark.parametrize("admission_name", ["reject", "drop-oldest"])
    def test_exit_toggle_accounting_is_exact(
        self, trained_ddnn, tiny_test, admission_name
    ):
        plan_b = PartitionPlan(trained_ddnn, local_exit=False)
        live = self._run_midburst(
            trained_ddnn, list(tiny_test.images), plan_b, admission_name
        )
        stats = live.admission_stats
        assert stats.shed == 0
        assert stats.rejected + stats.dropped > 0, "overload never turned work away"
        assert live.offered == stats.accepted + stats.rejected
        assert len(live.responses) == stats.accepted - stats.dropped
        ids = [r.request_id for r in live.responses]
        assert len(ids) == len(set(ids)), "duplicate responses"
        # Everything queued at the handoff was served exactly once.
        requeued = {
            rid
            for tier_ids in live.last_repartition.requeued_ids.values()
            for rid in tier_ids
        }
        assert requeued <= set(ids)


class TestAutoscaler:
    def test_scale_up_down_over_a_burst(self, trained_ddnn, tiny_test):
        policy = AutoscalePolicy(
            min_workers=1,
            max_workers=3,
            high_watermark=1,
            low_watermark=0,
            cooldown_s=0.001,
            step=2,
        )
        plan = PartitionPlan(trained_ddnn, workers_per_tier=1, autoscale=policy)
        fabric = _fabric(plan)
        scaler = fabric.autoscaler
        assert scaler is not None
        _paced_submit(fabric, list(tiny_test.images), overload=3.0)
        fabric.run_until_idle(drain=True)

        assert scaler.peak_workers[0] == 3
        device_sizes = [n for _, tier, n in scaler.trajectory if tier == "devices"]
        assert 3 in device_sizes  # scaled up to the budget...
        assert device_sizes[-1] == 1  # ...and released it after the burst
        assert scaler.workers()[0] == 1
        assert len(fabric.responses) == len(tiny_test.images)

    def test_rate_floor_keeps_workers_provisioned(self, trained_ddnn, tiny_test):
        policy = AutoscalePolicy(
            min_workers=1,
            max_workers=3,
            high_watermark=100,  # never triggers on depth
            low_watermark=0,
            cooldown_s=0.001,
            window_s=0.01,
            target_rps_per_worker=ONE_WORKER_RPS / 2.0,
        )
        plan = PartitionPlan(trained_ddnn, workers_per_tier=1, autoscale=policy)
        fabric = _fabric(plan)
        _paced_submit(fabric, list(tiny_test.images), overload=3.0)
        fabric.run_until_idle(drain=True)
        # 3x one worker's rate against a 0.5x-per-worker target floors at max.
        assert fabric.autoscaler.peak_workers[0] == 3

    def test_reconfigure_validates_length(self, trained_ddnn):
        fabric = _fabric(PartitionPlan(trained_ddnn), service_models=None)
        scaler = Autoscaler(fabric, AutoscalePolicy())
        with pytest.raises(ValueError, match="entries"):
            scaler.reconfigure([AutoscalePolicy()])

    def test_rate_tracker_window_pruning(self):
        tracker = RateTracker(window_s=1.0)
        tracker.observe(0.0, count=2)
        tracker.observe(0.5, count=2)
        assert tracker.rate(0.5) == pytest.approx(4.0)
        assert tracker.rate(1.25) == pytest.approx(2.0)  # t=0 fell out
        assert tracker.rate(5.0) == 0.0
        with pytest.raises(ValueError, match="window_s"):
            RateTracker(0.0)


class TestLoadBalancer:
    def test_round_robin_rotates(self, trained_ddnn, tiny_test):
        plan = PartitionPlan(trained_ddnn, replicas=2)
        with LoadBalancer.from_plan(plan, THRESHOLD) as balancer:
            picks = []
            for sample in tiny_test.images[:4]:
                index, _ = balancer.submit(sample)
                picks.append(index)
            assert picks == [0, 1, 0, 1]
            assert balancer.assignments == [2, 2]
            responses = balancer.run_until_idle(drain=True)
            assert len(responses) == 4

    def test_least_loaded_prefers_emptier_replica(self, trained_ddnn, tiny_test):
        plan = PartitionPlan(trained_ddnn, replicas=2)
        with LoadBalancer.from_plan(plan, THRESHOLD, strategy="least-loaded") as lb:
            lb.submit_many(list(tiny_test.images[:3]))  # replica 0 takes 3
            index, _ = lb.submit(tiny_test.images[3])
            assert index == 1
            assert lb.assignments == [3, 1]

    def test_balanced_replicas_agree_with_a_single_fabric(
        self, trained_ddnn, tiny_test
    ):
        plan = PartitionPlan(trained_ddnn, replicas=2)
        with LoadBalancer.from_plan(plan, THRESHOLD) as balancer:
            for sample in tiny_test.images:
                balancer.submit(sample)
            responses = balancer.run_until_idle(drain=True)
        single = _fabric(PartitionPlan(trained_ddnn), service_models=None)
        single.submit_many(list(tiny_test.images))
        single.run_until_idle(drain=True)
        # Replicas renumber requests, so compare the decision multiset.
        balanced = sorted((r.prediction, r.exit_index) for r in responses)
        reference = sorted((r.prediction, r.exit_index) for r in single.responses)
        assert balanced == reference

    def test_validation(self, trained_ddnn):
        with pytest.raises(ValueError, match="at least one replica"):
            LoadBalancer([])
        fabric = _fabric(PartitionPlan(trained_ddnn), service_models=None)
        with pytest.raises(ValueError, match="unknown strategy"):
            LoadBalancer([fabric], strategy="random")


class TestDiurnalProcess:
    def test_rate_endpoints_and_mean(self):
        process = DiurnalProcess(10.0, 30.0, period_s=60.0)
        assert process.rate_at(0.0) == pytest.approx(10.0)  # starts at trough
        assert process.rate_at(30.0) == pytest.approx(30.0)  # crest at half period
        assert process.rate_at(60.0) == pytest.approx(10.0)
        assert process.mean_rate_rps() == pytest.approx(20.0)

    def test_times_deterministic_and_monotone(self):
        def take(seed):
            times = DiurnalProcess(10.0, 30.0, period_s=60.0, seed=seed).times()
            return [next(times) for _ in range(50)]

        a, b, c = take(3), take(3), take(4)
        assert a == b
        assert a != c
        assert len(a) == 50
        assert all(later >= earlier for earlier, later in zip(a, a[1:]))

    def test_validation(self):
        with pytest.raises(ValueError, match="base_rate_rps"):
            DiurnalProcess(0.0, 10.0)
        with pytest.raises(ValueError, match="peak_rate_rps"):
            DiurnalProcess(10.0, 5.0)
        with pytest.raises(ValueError, match="period_s"):
            DiurnalProcess(10.0, 20.0, period_s=0.0)
