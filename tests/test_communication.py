"""Tests for the communication cost model (paper Eq. 1 and Section IV-H)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CommunicationModel, DDNNConfig, ddnn_communication_bytes, raw_offload_bytes


class TestEquationOne:
    def test_matches_paper_table2_extremes(self):
        """Table II: 4 filters, o=256, |C|=3 → 140 B at l=0 and 12 B at l=1."""
        assert ddnn_communication_bytes(3, 0.0, 4, 256) == pytest.approx(140.0)
        assert ddnn_communication_bytes(3, 1.0, 4, 256) == pytest.approx(12.0)

    def test_matches_paper_intermediate_row(self):
        """Table II row T=0.8: 60.82% local exit → ≈ 62 B."""
        value = ddnn_communication_bytes(3, 0.6082, 4, 256)
        assert value == pytest.approx(62.0, abs=1.0)

    def test_summary_term_always_paid(self):
        assert ddnn_communication_bytes(10, 1.0, 4, 256) == 40.0

    def test_monotonically_decreasing_in_local_exit_fraction(self):
        values = [ddnn_communication_bytes(3, l, 4, 256) for l in np.linspace(0, 1, 11)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_increases_with_filters_and_output_elements(self):
        assert ddnn_communication_bytes(3, 0.5, 8, 256) > ddnn_communication_bytes(3, 0.5, 4, 256)
        assert ddnn_communication_bytes(3, 0.5, 4, 512) > ddnn_communication_bytes(3, 0.5, 4, 256)

    def test_validation(self):
        with pytest.raises(ValueError):
            ddnn_communication_bytes(3, 1.5, 4, 256)
        with pytest.raises(ValueError):
            ddnn_communication_bytes(0, 0.5, 4, 256)


class TestRawOffload:
    def test_paper_value_3072_bytes(self):
        assert raw_offload_bytes(3, 32) == 3072.0

    def test_scales_with_geometry(self):
        assert raw_offload_bytes(3, 64) == 4 * 3072.0
        assert raw_offload_bytes(1, 32, bytes_per_value=2) == 2048.0


class TestCommunicationModel:
    @pytest.fixture()
    def model(self):
        return CommunicationModel(DDNNConfig(num_devices=6, device_filters=4))

    def test_per_device_uses_config_geometry(self, model):
        assert model.per_device_bytes(0.0) == pytest.approx(140.0)
        assert model.per_device_bytes(1.0) == pytest.approx(12.0)

    def test_total_scales_with_devices(self, model):
        assert model.total_bytes(0.5) == pytest.approx(6 * model.per_device_bytes(0.5))

    def test_reduction_factor_over_20x_at_paper_operating_point(self, model):
        """Section IV-H: >20x reduction vs 3072-byte raw offload at T=0.8."""
        assert model.reduction_factor(0.6082) > 20.0

    def test_raw_offload_reference(self, model):
        assert model.raw_offload_per_device_bytes() == 3072.0
