"""Tests for the end-to-end SLO plane: deadline propagation across tiers,
budget-clipped retry ladders, earliest-deadline-first batching, hedged
offloads to sibling replicas, and the same machinery on the thread
backend under a real wall clock."""

from __future__ import annotations

import math

import pytest

from repro.hierarchy import (
    ChaosSchedule,
    LinkOutage,
    PartitionPlan,
    WorkerCrash,
)
from repro.serving import (
    BatchingPolicy,
    Deadline,
    DistributedServingFabric,
    HedgePolicy,
    LoadBalancer,
    PoissonProcess,
    RetryPolicy,
    ServiceModel,
)

THRESHOLD = 0.5  # low threshold => most requests offload, exercising the uplink
SERVICE = ServiceModel(batch_overhead_s=0.002, per_sample_s=0.004)
BATCHING = BatchingPolicy(max_batch_size=4, max_wait_s=0.004)
POLICY = RetryPolicy(
    deadline_s=0.1,
    max_retries=2,
    backoff_base_s=0.02,
    backoff_multiplier=2.0,
    backoff_max_s=0.08,
    jitter_s=0.005,
    seed=0,
)


def _fabric(model, **kwargs):
    plan = PartitionPlan(model)
    kwargs.setdefault("batching", BATCHING)
    kwargs.setdefault("service_models", [SERVICE] * plan.num_tiers)
    return DistributedServingFabric.from_plan(plan, THRESHOLD, **kwargs)


def _transfer_estimate(model) -> float:
    """Worst single-offload transfer time of the tiny model's uplink."""
    return _fabric(model).sections[0].transfer_estimate_s()


def _submit_trace(fabric, tiny_test, num_requests=16, rate=40.0, seed=0):
    arrivals = PoissonProcess(rate_rps=rate, seed=seed)
    for count, when in zip(range(num_requests), arrivals):
        index = count % len(tiny_test.images)
        fabric.submit(
            tiny_test.images[index], target=int(tiny_test.labels[index]), at=when
        )


def _accounting(responses):
    return sorted(
        (
            r.request_id,
            r.prediction,
            r.exit_index,
            r.exit_name,
            r.degraded,
            r.retries,
            r.hedged,
            r.deadline_exceeded,
            r.completion_time,
            r.bytes_transferred,
        )
        for r in responses
    )


# --------------------------------------------------------------------------- #
class TestDeadlinePrimitives:
    def test_deadline_from_slo_and_expiry(self):
        deadline = Deadline.from_slo(0.5, now=2.0)
        assert deadline.slo_s == 0.5
        assert deadline.expires_at == pytest.approx(2.5)
        assert deadline.remaining(2.1) == pytest.approx(0.4)
        assert not deadline.expired(2.4999)
        assert deadline.expired(2.5)  # at the boundary counts as expired

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            Deadline(slo_s=0.0, expires_at=1.0)
        with pytest.raises(ValueError):
            Deadline.from_slo(-1.0, now=0.0)

    def test_hedge_policy_validation(self):
        with pytest.raises(ValueError):
            HedgePolicy(trigger_fraction=0.0)
        with pytest.raises(ValueError):
            HedgePolicy(trigger_fraction=1.0)
        with pytest.raises(ValueError):
            HedgePolicy(max_hedges=0)

    def test_plan_validation(self, untrained_ddnn):
        with pytest.raises(ValueError):
            PartitionPlan(untrained_ddnn, slo_s=0.0)
        with pytest.raises(ValueError, match="replicas"):
            PartitionPlan(untrained_ddnn, hedge=HedgePolicy())
        plan = PartitionPlan(untrained_ddnn, replicas=2, slo_s=1.0, hedge=HedgePolicy())
        assert plan.slo_s == 1.0


# --------------------------------------------------------------------------- #
class TestDeadlinePropagation:
    def test_blackout_retires_queued_requests_at_their_deadline(
        self, trained_ddnn, tiny_test
    ):
        """Requests queued at a dark remote tier are answered from the
        deepest exit already cleared the instant their budget runs out —
        never dropped, never left to wait out the blackout."""
        fabric = _fabric(
            trained_ddnn,
            offload=POLICY,
            slo_s=0.3,
            chaos=ChaosSchedule(
                crashes=[WorkerCrash(tier="cloud", start=0.0, end=30.0)], seed=0
            ),
        )
        _submit_trace(fabric, tiny_test)
        fabric.run_until_idle(drain=True)
        responses = fabric.responses
        assert len(responses) == 16
        assert len({r.request_id for r in responses}) == 16
        stats = fabric.resilience_stats
        retired = [r for r in responses if r.deadline_exceeded]
        assert retired, "the blackout never pushed a queued request past its budget"
        assert stats.deadline_expired == len(retired)
        assert stats.expired_compute == 0
        first_exit = fabric.sections[0].exit_name
        for r in retired:
            assert r.degraded and r.exit_name == first_exit
            # Retirement fires the expiry timer: answered at the budget, not after.
            assert r.latency_s == pytest.approx(0.3)

    def test_retry_ladder_clips_to_the_remaining_budget(self, trained_ddnn, tiny_test):
        """A re-send that cannot land before the group's deadline is never
        sent: the ladder fails over early and counts the clip."""
        estimate = _transfer_estimate(trained_ddnn)
        # Budget covers the first attempt's deadline but not a backoff plus
        # another transfer, so every timeout clips instead of retrying.
        fabric = _fabric(
            trained_ddnn,
            offload=POLICY,
            slo_s=POLICY.deadline_s + estimate + 0.01,
            chaos=ChaosSchedule(outages=[LinkOutage(destination="cloud")], seed=0),
        )
        _submit_trace(fabric, tiny_test)
        fabric.run_until_idle(drain=True)
        responses = fabric.responses
        assert len(responses) == 16
        assert len({r.request_id for r in responses}) == 16
        stats = fabric.resilience_stats
        assert stats.clipped_retries > 0
        assert stats.retries == 0, "a clipped ladder must not also re-send"
        degraded = [r for r in responses if r.degraded]
        assert degraded, "the outage never forced a failover"
        first_exit = fabric.sections[0].exit_name
        assert all(r.exit_name == first_exit for r in degraded)

    def test_budget_shorter_than_one_transfer_never_offloads(
        self, trained_ddnn, tiny_test
    ):
        """An SLO that cannot cover even one uplink transfer answers locally
        before any bytes hit the wire."""
        estimate = _transfer_estimate(trained_ddnn)
        fabric = _fabric(trained_ddnn, offload=POLICY, slo_s=0.5 * estimate)
        _submit_trace(fabric, tiny_test, rate=20.0)
        fabric.run_until_idle(drain=True)
        assert len(fabric.responses) == 16
        stats = fabric.resilience_stats
        assert stats.attempts == 0, "an offload was sent into a hopeless budget"
        assert fabric.report().offload_fraction == 0.0
        assert fabric.deployment.fabric.lost_messages == 0
        assert stats.deadline_expired > 0  # the unconfident tail retired locally
        # Control: the same trace under a generous budget does offload.
        control = _fabric(trained_ddnn, offload=POLICY, slo_s=10.0)
        _submit_trace(control, tiny_test, rate=20.0)
        control.run_until_idle(drain=True)
        assert control.resilience_stats.attempts > 0

    def test_edf_forms_batches_earliest_deadline_first(self, trained_ddnn, tiny_test):
        """With ``edf=True`` a queued request with the tighter budget jumps
        ahead; without it the queue stays FIFO."""

        def completions(edf: bool):
            plan = PartitionPlan(trained_ddnn)  # one worker per tier
            fabric = DistributedServingFabric.from_plan(
                plan,
                1.0,  # everything exits at the device tier: pure queue order
                batching=BatchingPolicy(max_batch_size=1, max_wait_s=0.001),
                service_models=[SERVICE] * plan.num_tiers,
                edf=edf,
            )
            # A filler occupies the single worker while two requests with
            # opposite budget order pile up behind it.
            fabric.submit(tiny_test.images[0], at=0.0)
            loose = fabric.submit(tiny_test.images[1], at=0.001, slo_s=10.0)
            tight = fabric.submit(tiny_test.images[2], at=0.002, slo_s=0.5)
            fabric.run_until_idle(drain=True)
            when = {r.request_id: r.completion_time for r in fabric.responses}
            assert len(when) == 3
            return when[tight], when[loose]

        tight_first, loose_second = completions(edf=True)
        assert tight_first < loose_second
        tight_fifo, loose_fifo = completions(edf=False)
        assert loose_fifo < tight_fifo


# --------------------------------------------------------------------------- #
class TestHedgedOffloads:
    def _balancer(self, model, slo_s, trigger, chaos=None):
        plan = PartitionPlan(
            model,
            replicas=2,
            slo_s=slo_s,
            hedge=HedgePolicy(trigger_fraction=trigger, max_hedges=1),
        )
        balancer = LoadBalancer.from_plan(
            plan,
            THRESHOLD,
            strategy="round-robin",
            batching=BATCHING,
            service_models=[SERVICE] * plan.num_tiers,
            offload=POLICY,
        )
        if chaos is not None:
            balancer.replicas[0].attach_chaos(chaos)
        return balancer

    def _drive(self, balancer, tiny_test, num_requests=12, rate=30.0, seed=1):
        # All traffic enters replica 0 (where chaos strikes, if any);
        # replica 1 only ever sees hedge copies.
        origin = balancer.replicas[0]
        _submit_trace(origin, tiny_test, num_requests=num_requests, rate=rate, seed=seed)
        balancer.run_until_idle(drain=True)
        return balancer.report(duration_s=origin.clock.now)

    def test_hedge_wins_when_the_origin_uplink_is_partitioned(
        self, trained_ddnn, tiny_test
    ):
        balancer = self._balancer(
            trained_ddnn,
            slo_s=1.0,
            trigger=0.1,
            chaos=ChaosSchedule(outages=[LinkOutage(destination="cloud")], seed=0),
        )
        report = self._drive(balancer, tiny_test)
        assert report.served == 12
        assert len({r.request_id for r in report.responses}) == 12
        resilience = report.metadata["resilience"]
        assert report.hedge_total > 0
        assert resilience["hedge_wins"] > 0
        assert report.hedge_bytes > 0.0
        winners = [r for r in report.responses if r.hedged]
        assert len(winners) > 0
        # A winning hedge is a full-fidelity remote answer, not a failover.
        cloud_exit = balancer.replicas[1].sections[-1].exit_name
        assert all(not r.degraded and r.exit_name == cloud_exit for r in winners)
        assert report.hedge_win_fraction == pytest.approx(
            resilience["hedge_wins"] / report.hedge_total
        )

    def test_original_delivery_beats_the_slower_hedge(self, trained_ddnn, tiny_test):
        """A hedge fired while the healthy original is in flight loses the
        race: its delivery is cancelled, nothing is answered twice, and the
        losing copy's bytes are still charged."""
        estimate = _transfer_estimate(trained_ddnn)
        # Trigger at ~0.4 of one transfer: the hedge departs mid-flight of
        # the original and, over an identical sibling link, lands after it.
        balancer = self._balancer(trained_ddnn, slo_s=4.0 * estimate, trigger=0.1)
        report = self._drive(balancer, tiny_test)
        assert report.served == 12
        assert len({r.request_id for r in report.responses}) == 12
        resilience = report.metadata["resilience"]
        assert report.hedge_total > 0, "the trigger never fired mid-flight"
        assert resilience["hedge_wins"] == 0
        assert report.hedge_win_fraction == 0.0
        assert not any(r.hedged for r in report.responses)
        assert report.degraded_fraction == 0.0
        assert report.hedge_bytes > 0.0  # the losing copies are not free

    def test_fault_free_run_sends_no_hedges(self, trained_ddnn, tiny_test):
        """With the trigger past one healthy delivery, a clean run never
        speculates: zero hedges, zero hedge bytes, zero degradation."""
        balancer = self._balancer(trained_ddnn, slo_s=1.0, trigger=0.9)
        report = self._drive(balancer, tiny_test)
        assert report.served == 12
        assert report.hedge_total == 0
        assert report.hedge_bytes == 0.0
        assert report.degraded_fraction == 0.0
        assert report.metadata["resilience"]["deadline_expired"] == 0

    def test_hedged_chaos_replays_byte_identical(self, trained_ddnn, tiny_test):
        """Two fresh seeded runs agree on every per-request tuple including
        hedge decisions and deadline flags."""

        def run():
            balancer = self._balancer(
                trained_ddnn,
                slo_s=1.0,
                trigger=0.1,
                chaos=ChaosSchedule(
                    outages=[LinkOutage(destination="cloud", start=0.1, end=0.4)],
                    seed=4,
                ),
            )
            report = self._drive(balancer, tiny_test)
            return _accounting(report.responses), report.metadata["resilience"]

        first_acc, first_stats = run()
        second_acc, second_stats = run()
        assert first_acc == second_acc
        assert first_stats == second_stats
        assert first_stats["hedges"] > 0  # the replayed decisions include hedges

    def test_enable_hedging_rejects_unwired_replicas(self, trained_ddnn):
        single = LoadBalancer.from_plan(PartitionPlan(trained_ddnn), THRESHOLD)
        with pytest.raises(ValueError, match="replicas"):
            single.enable_hedging(HedgePolicy())
        plan = PartitionPlan(trained_ddnn, replicas=2)
        unshared = LoadBalancer.from_plan(plan, THRESHOLD)
        with pytest.raises(ValueError):
            unshared.enable_hedging(HedgePolicy())  # separate loops / no policy


# --------------------------------------------------------------------------- #
class TestBalancerCapacityTieBreak:
    def test_least_loaded_prefers_the_stack_with_more_online_workers(
        self, trained_ddnn
    ):
        plan = PartitionPlan(trained_ddnn, replicas=2, workers_per_tier=2)
        balancer = LoadBalancer.from_plan(plan, THRESHOLD, strategy="least-loaded")
        balancer.replicas[0].attach_chaos(
            ChaosSchedule(
                crashes=[WorkerCrash(tier="cloud", start=0.0, end=1.0, workers=1)]
            )
        )
        # Probe mid-window: replica 0 stays healthy but one cloud worker is
        # dark, so the depth tie breaks toward the fuller stack.
        probes = {}
        balancer.replicas[0].events.schedule(
            0.5,
            lambda now: probes.update(
                healthy=balancer.healthy_indices(), pick=balancer.pick()
            ),
        )
        balancer.replicas[0].run_until_idle(drain=True)
        assert probes["healthy"] == [0, 1]
        assert probes["pick"] == 1
        # After the restart boundary capacity is equal again and the tie
        # falls back to the lowest index.
        assert balancer.replicas[0].clock.now >= 1.0
        assert balancer.pick() == 0


# --------------------------------------------------------------------------- #
class TestReportMetadataUniformity:
    def test_fabric_report_carries_the_observability_block(
        self, trained_ddnn, tiny_test
    ):
        fabric = _fabric(trained_ddnn, offload=POLICY, slo_s=1.0)
        _submit_trace(fabric, tiny_test, num_requests=8)
        fabric.run_until_idle(drain=True)
        metadata = fabric.report().metadata
        assert set(metadata) >= {"resilience", "admission", "breakers"}
        assert set(metadata["resilience"]) == set(
            fabric.resilience_stats.as_dict()
        )
        for block in metadata["breakers"].values():
            assert set(block) == {"state", "transitions"}

    def test_balancer_report_prefixes_breakers_per_replica(
        self, trained_ddnn, tiny_test
    ):
        plan = PartitionPlan(trained_ddnn, replicas=2)
        balancer = LoadBalancer.from_plan(
            plan,
            THRESHOLD,
            batching=BATCHING,
            service_models=[SERVICE] * plan.num_tiers,
            offload=POLICY,
        )
        for index in range(4):
            balancer.submit(tiny_test.images[index], at=0.01 * index)
        balancer.run_until_idle(drain=True)
        metadata = balancer.report().metadata
        assert all(
            key.startswith(("r0:", "r1:")) for key in metadata["breakers"]
        )
        assert set(metadata["resilience"]) == set(
            balancer.replicas[0].resilience_stats.as_dict()
        )


# --------------------------------------------------------------------------- #
class TestWallClockSLO:
    def test_thread_backend_retires_expired_requests_on_the_wall_clock(
        self, trained_ddnn, tiny_test
    ):
        """The same deadline machinery on ``backend="thread"``: a real
        blackout outlasts the budget, so expiry timers must retire queued
        requests in real time.  Bounds are tolerance-based (scheduling
        jitters); exactly-once and flag honesty are exact."""
        slo_s = 0.15
        crash = (0.05, 0.4)
        fabric = _fabric(
            trained_ddnn,
            offload=POLICY,
            slo_s=slo_s,
            edf=True,
            backend="thread",
            compile=True,
        )
        try:
            fabric.attach_chaos(
                ChaosSchedule(
                    crashes=[
                        WorkerCrash(tier="cloud", start=crash[0], end=crash[1])
                    ],
                    seed=0,
                )
            )
            started = fabric.clock.now
            for count in range(10):
                index = count % len(tiny_test.images)
                fabric.submit(
                    tiny_test.images[index],
                    target=int(tiny_test.labels[index]),
                    at=started + 0.01 * count,
                )
            responses = fabric.run_until_idle(drain=True)
            elapsed = fabric.clock.now - started
        finally:
            fabric.close()
        assert len(responses) == 10
        assert len({r.request_id for r in responses}) == 10
        stats = fabric.resilience_stats
        assert stats.expired_compute == 0
        assert stats.deadline_expired > 0, (
            "a 0.35s blackout must expire some 0.15s budgets"
        )
        # Honest flags on a real clock: any answer at/past the budget is
        # marked, and only those (up to float slivers at the boundary).
        for r in responses:
            late = r.latency_s >= slo_s - 1e-9
            if r.deadline_exceeded != late:
                assert abs(r.latency_s - slo_s) <= 1e-6
        # The restart boundary fires on the wall clock (sleep-until may
        # undershoot by a sliver).
        assert elapsed >= crash[1] - 0.05
        assert max(r.latency_s for r in responses) <= slo_s + (
            crash[1] - crash[0]
        ) + 2.0
